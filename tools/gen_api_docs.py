#!/usr/bin/env python3
"""Generate the Markdown API reference under ``docs/api/``.

Prefers `pdoc <https://pdoc.dev>`_ when it is importable (the CI docs job
installs it); otherwise falls back to a self-contained ``inspect``-based
generator so the reference can be rebuilt in a bare environment with no
extra dependencies. Both paths document the same package set — the
public API surface this repo commits to: ``repro.core`` (the paper's
algorithms), ``repro.obs`` (observability), ``repro.parallel`` (sharded
construction), ``repro.serve`` (the query service), ``repro.storage``
(persistence) and ``repro.loadgen`` (the HTTP load generator).

Output is deterministic (no timestamps, sorted member order) so the
generated pages are committed and diffs stay reviewable::

    python tools/gen_api_docs.py            # writes docs/api/*.md
    python tools/gen_api_docs.py --check    # fail if pages are stale
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

PACKAGES = (
    "repro.core",
    "repro.obs",
    "repro.parallel",
    "repro.serve",
    "repro.storage",
    "repro.ingest",
    "repro.loadgen",
)
OUT_DIR = ROOT / "docs" / "api"


def iter_modules(package_name: str):
    """Yield (name, module) for the package and its direct submodules.

    Single-module entries (no ``__path__``, e.g. ``repro.loadgen``) yield
    just themselves.
    """
    package = importlib.import_module(package_name)
    yield package_name, package
    if not hasattr(package, "__path__"):
        return
    for info in sorted(pkgutil.iter_modules(package.__path__), key=lambda i: i.name):
        if info.name.startswith("_"):
            continue
        name = f"{package_name}.{info.name}"
        yield name, importlib.import_module(name)


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def first_paragraph(doc: str) -> str:
    return doc.split("\n\n", 1)[0].strip()


def public_members(module):
    """Classes and functions defined in (not imported into) the module."""
    members = []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((name, obj))
    return members


def render_class(name: str, cls) -> list[str]:
    lines = [f"### class `{name}{signature_of(cls)}`", ""]
    doc = inspect.getdoc(cls)
    if doc:
        lines += [doc, ""]
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            prop_doc = inspect.getdoc(attr) or ""
            lines += [
                f"- **`{attr_name}`** *(property)* — {first_paragraph(prop_doc)}"
            ]
        elif inspect.isfunction(attr) or isinstance(
            attr, (classmethod, staticmethod)
        ):
            fn = attr.__func__ if isinstance(attr, (classmethod, staticmethod)) else attr
            fn_doc = inspect.getdoc(fn) or ""
            lines += [
                f"- **`{attr_name}{signature_of(fn)}`** — {first_paragraph(fn_doc)}"
            ]
    lines.append("")
    return lines


def render_module(name: str, module) -> str:
    lines = [f"# `{name}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [doc, ""]
    functions = [(n, o) for n, o in public_members(module) if inspect.isfunction(o)]
    classes = [(n, o) for n, o in public_members(module) if inspect.isclass(o)]
    if classes:
        lines += ["## Classes", ""]
        for member_name, cls in classes:
            lines += render_class(member_name, cls)
    if functions:
        lines += ["## Functions", ""]
        for member_name, fn in functions:
            lines += [f"### `{member_name}{signature_of(fn)}`", ""]
            fn_doc = inspect.getdoc(fn)
            if fn_doc:
                lines += [fn_doc, ""]
    return "\n".join(lines).rstrip() + "\n"


def generate_with_pdoc(out_dir: Path) -> bool:
    """Use pdoc when present; returns False to request the fallback."""
    try:
        import pdoc  # noqa: F401
        import pdoc.render
    except ImportError:
        return False
    import pdoc.doc

    pdoc.render.configure(docformat="restructuredtext")
    modules = [name for pkg in PACKAGES for name, _ in iter_modules(pkg)]
    for name in modules:
        doc_module = pdoc.doc.Module(importlib.import_module(name))
        html = pdoc.render.html_module(module=doc_module, all_modules={})
        (out_dir / f"{name}.html").write_text(html)
    return True


def build_pages() -> dict[str, str]:
    pages: dict[str, str] = {}
    index = [
        "# API reference",
        "",
        "Generated by `tools/gen_api_docs.py` — regenerate after changing",
        "any public signature or docstring (CI's docs job checks this).",
        "",
    ]
    for pkg in PACKAGES:
        index.append(f"## {pkg}")
        index.append("")
        for name, module in iter_modules(pkg):
            pages[f"{name}.md"] = render_module(name, module)
            summary = first_paragraph(inspect.getdoc(module) or "").replace("\n", " ")
            index.append(f"- [`{name}`]({name}.md) — {summary}")
        index.append("")
    pages["index.md"] = "\n".join(index).rstrip() + "\n"
    return pages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify committed pages match, write nothing")
    parser.add_argument("--pdoc", action="store_true",
                        help="also emit pdoc HTML next to the Markdown")
    args = parser.parse_args(argv)

    pages = build_pages()
    if args.check:
        stale = []
        for filename, content in pages.items():
            path = OUT_DIR / filename
            if not path.exists() or path.read_text() != content:
                stale.append(filename)
        committed = {p.name for p in OUT_DIR.glob("*.md")}
        stray = committed - set(pages)
        for name in sorted(stray):
            stale.append(f"{name} (no longer generated)")
        if stale:
            print("stale API docs — rerun tools/gen_api_docs.py:", file=sys.stderr)
            for name in stale:
                print(f"  docs/api/{name}", file=sys.stderr)
            return 1
        print(f"OK: {len(pages)} pages up to date", file=sys.stderr)
        return 0

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    for filename, content in pages.items():
        (OUT_DIR / filename).write_text(content)
    used_pdoc = generate_with_pdoc(OUT_DIR) if args.pdoc else False
    print(
        f"wrote {len(pages)} Markdown pages to {OUT_DIR}"
        + (" (+ pdoc HTML)" if used_pdoc else ""),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
