#!/usr/bin/env bash
# End-to-end smoke for the query service: build a tiny forest, start
# `repro serve` in the background, poke every endpoint over real HTTP,
# assert the request counter moved, and check SIGTERM drains cleanly.
# CI runs this as the serve-smoke job; it works locally too:
#
#   tools/serve_smoke.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
export PYTHONPATH="$ROOT/src"

DATA="$WORK/data"
MODEL="$WORK/model"
LOG="$WORK/serve.log"

echo "== build a tiny model (1 month of trace, 7 days of forest)"
python -m repro generate --out "$DATA" --months 1
python -m repro build --data "$DATA" --model "$MODEL" --days 7

echo "== start repro serve on an ephemeral port"
python -m repro serve --data "$DATA" --model "$MODEL" --port 0 >"$LOG" 2>&1 &
SERVE_PID=$!

# the startup banner ("serving <dir> on http://... (digest ...") carries
# the resolved port; wait for it
BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's|.* on \(http://[^ ]*\) .*|\1|p' "$LOG" | head -n 1)"
    [ -n "$BASE" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "server exited during startup"; cat "$LOG"; exit 1
    fi
    sleep 0.2
done
[ -n "$BASE" ] || { echo "server never printed its URL"; cat "$LOG"; exit 1; }
echo "   serving at $BASE"

echo "== GET /healthz"
curl -fsS "$BASE/healthz" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["status"] == "ok", doc
assert doc["model"]["built_days"] == 7, doc
'

echo "== POST /query"
curl -fsS -X POST --data '{"first_day": 0, "days": 7}' "$BASE/query" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["request_id"], doc
assert doc["returned"] >= 1, doc
'

echo "== GET /metrics has a non-zero request counter"
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -E '^repro_serve_requests_total [1-9]' >/dev/null || {
    echo "expected non-zero repro_serve_requests_total"
    echo "$METRICS" | grep repro_serve | head -20
    exit 1
}

echo "== repro top renders one frame from the live endpoint"
python -m repro top --url "$BASE/metrics" --iterations 1 --no-clear \
    | grep -q "repro top" || { echo "repro top produced no frame"; exit 1; }

echo "== SIGTERM drains and exits 0"
kill -TERM "$SERVE_PID"
CODE=0
wait "$SERVE_PID" || CODE=$?
SERVE_PID=""
[ "$CODE" -eq 0 ] || { echo "serve exited $CODE"; cat "$LOG"; exit 1; }
grep -q "drained, bye" "$LOG" || { echo "missing drain banner"; cat "$LOG"; exit 1; }

echo "serve smoke OK"
