#!/usr/bin/env python3
"""Docstring lint for the documented-API packages.

Stand-in for ``pydocstyle`` / ``ruff --select D`` (neither is a runtime
dependency of this repo): walks the AST of every module in the packages
whose API we commit to documenting — ``repro.core``, ``repro.obs`` and
``repro.parallel`` — and fails if any public module, class, function or
method lacks a docstring (D100-D103) or starts it with a blank line
(D210-ish sanity check).

Public means: name does not start with ``_``, or is ``__init__`` on a
public class whose constructor takes documented arguments (we exempt
``__init__`` — the class docstring carries the contract) and dunders in
general. Nested (function-local) definitions are private by construction.

Usage::

    python tools/check_docstrings.py [--root src/repro] [pkg ...]

Exit status 0 when clean, 1 with a per-symbol report otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Package directories or single modules (``name`` → ``name/`` or ``name.py``).
DEFAULT_PACKAGES = (
    "core", "obs", "parallel", "serve", "storage", "ingest", "loadgen"
)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_definitions(tree: ast.Module):
    """Yield (node, kind, qualname) for module-level defs and class bodies."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, "function", node.name
        elif isinstance(node, ast.ClassDef):
            yield node, "class", node.name
            if not is_public(node.name):
                continue  # a private class's methods are private too
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, "method", f"{node.name}.{child.name}"


def check_module(path: Path, rel: Path) -> list[str]:
    problems: list[str] = []
    tree = ast.parse(path.read_text(), filename=str(path))

    def report(lineno: int, message: str) -> None:
        problems.append(f"{rel}:{lineno}: {message}")

    if ast.get_docstring(tree) is None:
        report(1, "D100 missing module docstring")

    for node, kind, qualname in iter_definitions(tree):
        simple_name = qualname.rsplit(".", 1)[-1]
        if not is_public(simple_name):
            continue
        doc = ast.get_docstring(node)
        if doc is None:
            code = {"class": "D101", "function": "D103", "method": "D102"}[kind]
            report(node.lineno, f"{code} missing docstring on {kind} {qualname}")
        elif not doc.strip():
            report(node.lineno, f"D419 empty docstring on {kind} {qualname}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default="src/repro", type=Path)
    parser.add_argument("packages", nargs="*", default=list(DEFAULT_PACKAGES))
    args = parser.parse_args(argv)

    problems: list[str] = []
    checked = 0
    for package in args.packages:
        base = args.root / package
        if base.is_dir():
            paths = sorted(base.rglob("*.py"))
        elif base.with_suffix(".py").is_file():
            paths = [base.with_suffix(".py")]  # single-module API (loadgen)
        else:
            print(
                f"error: no such package directory or module: {base}",
                file=sys.stderr,
            )
            return 2
        for path in paths:
            checked += 1
            problems.extend(check_module(path, path.relative_to(args.root.parent)))

    for line in problems:
        print(line)
    summary = f"{checked} modules checked, {len(problems)} problem(s)"
    print(("FAIL: " if problems else "OK: ") + summary, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
