#!/usr/bin/env bash
# End-to-end smoke for the load generator, the SLO engine, the
# tail-sampled trace store, and the streaming ingest path: build a tiny
# forest, start `repro serve` with SLOs, telemetry persistence, trace
# persistence, and live ingest enabled, run a short closed-loop
# `repro loadgen` against it, stream one day of events through
# `POST /ingest` (loadgen event mode) and check `/query` reflects it,
# gate on `repro slo check` — live (`/slo`), then offline against the
# tsdb segments the sampler persisted — verify the tail sampler kept
# traces that `repro trace show` resolves both live and from the
# persisted segments, and finally drain a spool directory offline with
# `repro ingest --once`, resuming from the published snapshot. The serve
# process also runs the continuous profiler (`--prof`): the smoke asserts
# `GET /profile` is non-empty after load, replays the persisted
# prof segments offline with `repro prof`, and finally forces an SLO PAGE
# against a strict config to check the alert's exemplar_profile_id
# resolves to a non-empty flamegraph through `repro prof show`. CI runs
# this as the load-smoke job and uploads the BENCH_load.json,
# BENCH_ingest_load.json, trace segments, prof segments, ingest
# checkpoint and snapshot it produces; it works locally too:
#
#   tools/load_smoke.sh [out-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="${1:-$ROOT}"
mkdir -p "$OUT_DIR"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
export PYTHONPATH="$ROOT/src"

DATA="$WORK/data"
MODEL="$WORK/model"
TSDB="$WORK/tsdb"
SNAPS="$WORK/snaps"
SPOOL="$WORK/spool"
TRACES="$OUT_DIR/trace-segments"
PROF="$OUT_DIR/prof-segments"
LOG="$WORK/serve.log"
REPORT="$OUT_DIR/BENCH_load.json"
INGEST_REPORT="$OUT_DIR/BENCH_ingest_load.json"
rm -rf "$TRACES" "$PROF"

echo "== build a tiny model (1 month of trace, 7 days of forest)"
python -m repro generate --out "$DATA" --months 1
python -m repro build --data "$DATA" --model "$MODEL" --days 7

echo "== start repro serve with SLOs + tsdb + traces + profiler + ingest"
python -m repro serve --data "$DATA" --model "$MODEL" --port 0 \
    --slo "$ROOT/examples/slo.yaml" --tsdb-dir "$TSDB" \
    --sample-interval 0.5 --trace-dir "$TRACES" \
    --trace-threshold 0 --prof --prof-dir "$PROF" \
    --ingest --ingest-snapshot-dir "$SNAPS" \
    >"$LOG" 2>&1 &
SERVE_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's|.* on \(http://[^ ]*\) .*|\1|p' "$LOG" | head -n 1)"
    [ -n "$BASE" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "server exited during startup"; cat "$LOG"; exit 1
    fi
    sleep 0.2
done
[ -n "$BASE" ] || { echo "server never printed its URL"; cat "$LOG"; exit 1; }
echo "   serving at $BASE"

echo "== closed-loop loadgen for 5s"
python -m repro loadgen "$BASE" --mode closed --duration 5 \
    --concurrency 2 --limit 5 --out "$REPORT"

echo "== BENCH_load.json carries rates and quantiles"
python - "$REPORT" <<'PY'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["requests"] > 0, doc
assert doc["error_rate"] == 0.0, doc
assert doc["achieved_rate"] > 0, doc
for q in ("p50", "p95", "p99", "max"):
    assert doc["latency_seconds"][q] > 0, (q, doc)
print(f"   {doc['requests']} requests at {doc['achieved_rate']}/s, "
      f"p99 {doc['latency_seconds']['p99']*1e3:.1f}ms")
PY

echo "== stream one day of events through POST /ingest (loadgen event mode)"
python -m repro loadgen "$BASE" --mode ingest --data "$DATA" \
    --days 1 --first-day 7 --out "$INGEST_REPORT"

echo "== BENCH_ingest_load.json carries throughput and the closed day"
python - "$INGEST_REPORT" <<'PY'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["mode"] == "ingest", doc
assert doc["accepted"] > 0, doc
assert doc["errors"] == 0, doc
assert doc["closed_days"] == 1, doc
assert doc["events_per_second"] > 0, doc
print(f"   {doc['accepted']} events in {doc['batches']} batches at "
      f"{doc['events_per_second']:.0f}/s, 1 day closed")
PY

echo "== /query reflects the streamed day (flushed, so staleness is 0)"
curl -fsS -X POST "$BASE/query" -d '{"first_day": 7, "days": 1}' | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["returned"] >= 1, doc
print("   day 7 serves " + str(doc["returned"]) + " clusters")
'

echo "== /healthz reports every subsystem in the uniform shape"
curl -fsS "$BASE/healthz" | python -c '
import json, sys
doc = json.load(sys.stdin)
subsystems = doc["subsystems"]
assert set(subsystems) == {"tsdb", "traces", "profiler", "ingest"}, subsystems
for name, block in subsystems.items():
    assert block["enabled"] is True, (name, block)
    assert "segments" in block and "last_flush_age_seconds" in block, block
ingest = subsystems["ingest"]
assert ingest["open_day"] == 8, ingest
assert ingest["pending_rows"] == 0, ingest
assert ingest["staleness_seconds"] == 0.0, ingest
assert ingest["snapshots"] >= 1, ingest
assert subsystems["profiler"]["running"] is True, subsystems
print("   open day " + str(ingest["open_day"]) + ", "
      + str(ingest["accepted"]) + " accepted, snapshot published")
'

echo "== GET /profile is non-empty after the load"
curl -fsS "$BASE/profile" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["enabled"] is True, doc
assert doc["samples"] > 0, doc
assert doc["total"] > 0, doc
assert doc["top"], doc
print("   " + str(doc["total"]) + " thread samples, hottest: "
      + doc["top"][0]["frame"])
'
curl -fsS "$BASE/profile?format=collapsed" | grep -q ";" \
    || { echo "collapsed export is empty"; exit 1; }
curl -fsS "$BASE/profile?format=speedscope" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["$schema"].endswith("file-format-schema.json"), doc
assert doc["profiles"][0]["weights"], doc
print("   speedscope export has " + str(len(doc["shared"]["frames"]))
      + " frames")
'

echo "== the day close published an atomic snapshot"
[ -L "$SNAPS/current" ] || { echo "no current symlink"; exit 1; }
ls "$SNAPS/current/forest.bin" "$SNAPS/current/cube.bin" \
    "$SNAPS/current/engine.json" >/dev/null

echo "== GET /slo reports a state"
curl -fsS "$BASE/slo" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["state"] in ("OK", "WARN", "PAGE"), doc
assert len(doc["slos"]) == 3, doc
print("   overall: " + doc["state"])
'

echo "== GET /traces is non-empty after the load"
TRACE_ID="$(curl -fsS "$BASE/traces" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["count"] > 0, doc
assert doc["kept"] > 0, doc
first = doc["traces"][0]
assert first["spans"] > 0, first
print(first["request_id"])
')"
[ -n "$TRACE_ID" ] || { echo "no trace id captured"; exit 1; }
echo "   kept traces include $TRACE_ID"

echo "== repro trace show resolves the live-captured id"
python -m repro trace show "$TRACE_ID" --trace-dir "$TRACES" \
    | grep -q "trace $TRACE_ID" || { echo "trace show failed"; exit 1; }

echo "== repro slo check (live) gates green"
python -m repro slo check "$BASE"

echo "== repro top renders the alerts, ingest, and hottest-frames panels"
TOP_OUT="$(python -m repro top --url "$BASE/metrics" --iterations 1 --no-clear)"
echo "$TOP_OUT" | grep -q "alerts (SLO)" || { echo "missing alerts panel"; exit 1; }
echo "$TOP_OUT" | grep -q "live ingest" || { echo "missing ingest panel"; exit 1; }
echo "$TOP_OUT" | grep -q "hottest frames" || { echo "missing profile panel"; exit 1; }

echo "== misuse exits 2 with one error line"
set +e
python -m repro slo check "$WORK/nope.json" --config "$WORK/nope.yaml" \
    2>"$WORK/err.txt"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected exit 2, got $CODE"; exit 1; }
[ "$(wc -l < "$WORK/err.txt")" -eq 1 ] || { cat "$WORK/err.txt"; exit 1; }
grep -q "^error:" "$WORK/err.txt"

echo "== SIGTERM drains and exits 0"
kill -TERM "$SERVE_PID"
CODE=0
wait "$SERVE_PID" || CODE=$?
SERVE_PID=""
[ "$CODE" -eq 0 ] || { echo "serve exited $CODE"; cat "$LOG"; exit 1; }

echo "== repro slo check replays the persisted tsdb segments"
ls "$TSDB"/tsdb-*.ndjson >/dev/null
python -m repro slo check "$TSDB" --config "$ROOT/examples/slo.yaml"

echo "== repro trace ls replays the persisted trace segments offline"
ls "$TRACES"/trace-*.ndjson >/dev/null
python -m repro trace ls --trace-dir "$TRACES" \
    | grep -q "$TRACE_ID" || { echo "persisted trace missing"; exit 1; }

echo "== repro prof replays the persisted profile segments offline"
ls "$PROF"/prof-*.ndjson >/dev/null
python -m repro prof ls --prof-dir "$PROF" | grep -q "pw-" \
    || { echo "no persisted profile windows"; exit 1; }
python -m repro prof show --prof-dir "$PROF" | grep -q ";" \
    || { echo "offline merged flamegraph is empty"; exit 1; }

echo "== a forced SLO PAGE carries a resolvable profile exemplar"
STRICT_SLO="$WORK/strict-slo.yaml"
cat > "$STRICT_SLO" <<'YAML'
slos:
  - name: availability-strict
    kind: availability
    objective: 0.999
min_requests: 1
YAML
PROF2="$WORK/prof-page"
LOG2="$WORK/serve-page.log"
python -m repro serve --data "$DATA" --model "$MODEL" --port 0 \
    --slo "$STRICT_SLO" --sample-interval 0.5 \
    --prof --prof-dir "$PROF2" >"$LOG2" 2>&1 &
SERVE_PID=$!
BASE2=""
for _ in $(seq 1 100); do
    BASE2="$(sed -n 's|.* on \(http://[^ ]*\) .*|\1|p' "$LOG2" | head -n 1)"
    [ -n "$BASE2" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "page-scenario server exited during startup"; cat "$LOG2"; exit 1
    fi
    sleep 0.2
done
[ -n "$BASE2" ] || { echo "page-scenario server never printed its URL"; cat "$LOG2"; exit 1; }
# burn the availability budget: a batch of malformed queries 400s
for _ in $(seq 1 10); do
    curl -sS -o /dev/null -X POST "$BASE2/query" -d '{not json' || true
done
curl -fsS -o /dev/null "$BASE2/healthz"
sleep 2  # two sampler ticks so the tsdb sees the burned budget
EXEMPLAR="$(curl -fsS "$BASE2/slo" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["state"] == "PAGE", doc
entry = doc["slos"][0]
assert entry["state"] == "PAGE", entry
assert entry["exemplar_profile_id"], entry
print(entry["exemplar_profile_id"])
')"
echo "   paged with profile exemplar $EXEMPLAR"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "page-scenario serve failed"; cat "$LOG2"; exit 1; }
SERVE_PID=""

echo "== repro prof show resolves the exemplar to a non-empty flamegraph"
SHOW_OUT="$(python -m repro prof show "$EXEMPLAR" --prof-dir "$PROF2")"
echo "$SHOW_OUT" | grep -q "profile window $EXEMPLAR" \
    || { echo "exemplar window missing offline"; exit 1; }
echo "$SHOW_OUT" | grep -q "\[pinned\]" \
    || { echo "exemplar window not pinned"; exit 1; }
echo "$SHOW_OUT" | grep -q ";" \
    || { echo "exemplar flamegraph is empty"; exit 1; }
echo "   exemplar $EXEMPLAR resolves offline"

echo "== spool one more day and drain it with repro ingest --once"
python - "$DATA" "$SPOOL" <<'PY'
import sys
from pathlib import Path

import numpy as np

from repro.ingest.spool import write_spool_file
from repro.storage.catalog import DatasetCatalog

data, spool = Path(sys.argv[1]), Path(sys.argv[2])
for dataset in DatasetCatalog(data):
    if 8 in dataset.days:
        batch = dataset.atypical_day(8)
        order = np.lexsort((batch.sensor_ids, batch.windows))
        rows = [
            (int(batch.sensor_ids[i]), int(batch.windows[i]),
             float(batch.severities[i]))
            for i in order
        ]
        write_spool_file(spool, "000008.ndjson", rows)
        print(f"   spooled {len(rows)} events for day 8")
        break
else:
    sys.exit("day 8 not in the catalog")
PY
python -m repro ingest --data "$DATA" --spool "$SPOOL" \
    --model "$SNAPS/current" --snapshot-dir "$SNAPS" --once --flush

echo "== the checkpoint covers the drained spool file"
grep -q "000008.ndjson" "$SNAPS/checkpoint.json"

echo "== the spooled day is queryable from the new snapshot"
QUERY_OUT="$(python -m repro query --data "$DATA" --model "$SNAPS/current" \
    --first-day 8 --days 1)"
echo "   $QUERY_OUT"
echo "$QUERY_OUT" | grep -Eq "via gui: [1-9][0-9]* inputs" \
    || { echo "spooled day not queryable"; exit 1; }

echo "== export ingest artifacts (checkpoint + snapshot) for CI upload"
cp "$SNAPS/checkpoint.json" "$OUT_DIR/ingest-checkpoint.json"
rm -rf "$OUT_DIR/ingest-snapshot"
cp -rL "$SNAPS/current" "$OUT_DIR/ingest-snapshot"

echo "load smoke OK"
