#!/usr/bin/env bash
# End-to-end smoke for the load generator, the SLO engine, and the
# tail-sampled trace store: build a tiny forest, start `repro serve`
# with SLOs, telemetry persistence, and trace persistence enabled, run
# a short closed-loop `repro loadgen` against it, gate on
# `repro slo check` — live (`/slo`), then offline against the tsdb
# segments the sampler persisted — and verify the tail sampler kept
# traces that `repro trace show` resolves both live and from the
# persisted segments. CI runs this as the load-smoke job and uploads
# the BENCH_load.json and trace segments it produces; it works locally
# too:
#
#   tools/load_smoke.sh [out-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="${1:-$ROOT}"
mkdir -p "$OUT_DIR"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
export PYTHONPATH="$ROOT/src"

DATA="$WORK/data"
MODEL="$WORK/model"
TSDB="$WORK/tsdb"
TRACES="$OUT_DIR/trace-segments"
LOG="$WORK/serve.log"
REPORT="$OUT_DIR/BENCH_load.json"
rm -rf "$TRACES"

echo "== build a tiny model (1 month of trace, 7 days of forest)"
python -m repro generate --out "$DATA" --months 1
python -m repro build --data "$DATA" --model "$MODEL" --days 7

echo "== start repro serve with SLOs + tsdb + trace persistence"
python -m repro serve --data "$DATA" --model "$MODEL" --port 0 \
    --slo "$ROOT/examples/slo.yaml" --tsdb-dir "$TSDB" \
    --sample-interval 0.5 --trace-dir "$TRACES" \
    --trace-threshold 0 >"$LOG" 2>&1 &
SERVE_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's|.* on \(http://[^ ]*\) .*|\1|p' "$LOG" | head -n 1)"
    [ -n "$BASE" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "server exited during startup"; cat "$LOG"; exit 1
    fi
    sleep 0.2
done
[ -n "$BASE" ] || { echo "server never printed its URL"; cat "$LOG"; exit 1; }
echo "   serving at $BASE"

echo "== closed-loop loadgen for 5s"
python -m repro loadgen "$BASE" --mode closed --duration 5 \
    --concurrency 2 --limit 5 --out "$REPORT"

echo "== BENCH_load.json carries rates and quantiles"
python - "$REPORT" <<'PY'
import json, sys
doc = json.loads(open(sys.argv[1]).read())
assert doc["requests"] > 0, doc
assert doc["error_rate"] == 0.0, doc
assert doc["achieved_rate"] > 0, doc
for q in ("p50", "p95", "p99", "max"):
    assert doc["latency_seconds"][q] > 0, (q, doc)
print(f"   {doc['requests']} requests at {doc['achieved_rate']}/s, "
      f"p99 {doc['latency_seconds']['p99']*1e3:.1f}ms")
PY

echo "== GET /slo reports a state"
curl -fsS "$BASE/slo" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["state"] in ("OK", "WARN", "PAGE"), doc
assert len(doc["slos"]) == 3, doc
print("   overall: " + doc["state"])
'

echo "== GET /traces is non-empty after the load"
TRACE_ID="$(curl -fsS "$BASE/traces" | python -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["count"] > 0, doc
assert doc["kept"] > 0, doc
first = doc["traces"][0]
assert first["spans"] > 0, first
print(first["request_id"])
')"
[ -n "$TRACE_ID" ] || { echo "no trace id captured"; exit 1; }
echo "   kept traces include $TRACE_ID"

echo "== repro trace show resolves the live-captured id"
python -m repro trace show "$TRACE_ID" --trace-dir "$TRACES" \
    | grep -q "trace $TRACE_ID" || { echo "trace show failed"; exit 1; }

echo "== repro slo check (live) gates green"
python -m repro slo check "$BASE"

echo "== repro top renders the alerts panel"
python -m repro top --url "$BASE/metrics" --iterations 1 --no-clear \
    | grep -q "alerts (SLO)" || { echo "missing alerts panel"; exit 1; }

echo "== misuse exits 2 with one error line"
set +e
python -m repro slo check "$WORK/nope.json" --config "$WORK/nope.yaml" \
    2>"$WORK/err.txt"
CODE=$?
set -e
[ "$CODE" -eq 2 ] || { echo "expected exit 2, got $CODE"; exit 1; }
[ "$(wc -l < "$WORK/err.txt")" -eq 1 ] || { cat "$WORK/err.txt"; exit 1; }
grep -q "^error:" "$WORK/err.txt"

echo "== SIGTERM drains and exits 0"
kill -TERM "$SERVE_PID"
CODE=0
wait "$SERVE_PID" || CODE=$?
SERVE_PID=""
[ "$CODE" -eq 0 ] || { echo "serve exited $CODE"; cat "$LOG"; exit 1; }

echo "== repro slo check replays the persisted tsdb segments"
ls "$TSDB"/tsdb-*.ndjson >/dev/null
python -m repro slo check "$TSDB" --config "$ROOT/examples/slo.yaml"

echo "== repro trace ls replays the persisted trace segments offline"
ls "$TRACES"/trace-*.ndjson >/dev/null
python -m repro trace ls --trace-dir "$TRACES" \
    | grep -q "$TRACE_ID" || { echo "persisted trace missing"; exit 1; }

echo "load smoke OK"
