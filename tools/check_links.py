#!/usr/bin/env python3
"""Check that relative Markdown links in the repo docs resolve.

Offline stand-in for ``lychee``/``markdown-link-check`` (not baked into
the runtime image): scans the top-level docs and everything under
``docs/`` for ``[text](target)`` links and verifies that every relative
target exists on disk (anchors are stripped; ``http(s)``/``mailto``
targets are skipped — CI has no network guarantee and the external
links are few and stable).

Usage::

    python tools/check_links.py [file-or-dir ...]   # default: repo docs

Exit status 0 when every relative link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "docs")

# [text](target) — ignores images' leading "!" by matching the core form,
# and tolerates titles: [text](target "title")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_files(targets: list[Path]):
    for target in targets:
        if target.is_dir():
            yield from sorted(target.rglob("*.md"))
        elif target.suffix == ".md":
            yield target


def check_file(path: Path) -> list[str]:
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                rel = path.relative_to(ROOT)
                problems.append(f"{rel}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_TARGETS)
    targets = [ROOT / name for name in names]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for t in missing:
            print(f"error: no such file: {t}", file=sys.stderr)
        return 2

    problems: list[str] = []
    checked = 0
    for path in iter_files(targets):
        checked += 1
        problems.extend(check_file(path))
    for line in problems:
        print(line)
    status = "FAIL" if problems else "OK"
    print(f"{status}: {checked} files, {len(problems)} broken link(s)",
          file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
