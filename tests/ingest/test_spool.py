"""Tests for spool tailing: resume, torn checkpoints, and no double-counting."""

from __future__ import annotations

import json

import pytest

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.ingest.engine import IngestEngine
from repro.ingest.spool import (
    SPOOL_SUFFIX,
    SpoolTailer,
    load_checkpoint,
    write_checkpoint,
    write_spool_file,
)

from .conftest import day_rows


@pytest.fixture()
def spooled(small_sim, live_engine, tmp_path):
    """Two spool files (one per day) plus the dirs a tailer needs."""
    spool = tmp_path / "spool"
    batches = {
        day: day_rows(_atypical_day(small_sim, day)) for day in (0, 1)
    }
    write_spool_file(spool, "000000.ndjson", batches[0])
    write_spool_file(spool, "000001.ndjson", batches[1])
    return {
        "spool": spool,
        "snaps": tmp_path / "snaps",
        "checkpoint": tmp_path / "snaps" / "checkpoint.json",
        "rows": batches,
    }


def _atypical_day(sim, day):
    from repro.core.records import RecordBatch

    chunk = sim.simulate_day(day)
    mask = chunk.atypical_mask()
    return RecordBatch(
        chunk.sensor_ids[mask],
        chunk.windows[mask],
        chunk.congested[mask].astype(float),
    )


def make_tailer(spool, ingest, snaps, checkpoint):
    return SpoolTailer(
        spool,
        ingest,
        checkpoint_path=checkpoint,
        snapshot_dir=snaps,
        snapshot_every_days=1,
        poll_seconds=0.01,
    )


class TestProducerHelper:
    def test_rename_into_place_leaves_no_temp(self, tmp_path):
        target = write_spool_file(tmp_path, "000000.ndjson", [(1, 2, 3.0)])
        assert target.is_file()
        assert [p.name for p in tmp_path.iterdir()] == ["000000.ndjson"]

    def test_suffix_enforced(self, tmp_path):
        with pytest.raises(ValueError):
            write_spool_file(tmp_path, "000000.json", [(1, 2, 3.0)])
        assert SPOOL_SUFFIX == ".ndjson"


class TestDrain:
    def test_once_drains_and_checkpoints(self, live_engine, live_ingest, spooled):
        tailer = make_tailer(
            spooled["spool"], live_ingest, spooled["snaps"], spooled["checkpoint"]
        )
        files, days_closed = tailer.run(once=True, flush_at_exit=True)
        assert files == 2
        assert days_closed == 2
        assert live_engine.built_days == {0, 1}
        # after the exit flush both days precede the open day, so both
        # files are checkpointable
        done = load_checkpoint(spooled["checkpoint"])
        assert done == {"000000.ndjson", "000001.ndjson"}
        doc = json.loads(spooled["checkpoint"].read_text())
        assert doc["snapshot"].endswith("model-000002")
        assert (spooled["snaps"] / "current").exists()

    def test_file_straddling_open_day_stays_pending(
        self, live_ingest, spooled
    ):
        tailer = make_tailer(
            spooled["spool"], live_ingest, spooled["snaps"], spooled["checkpoint"]
        )
        # no exit flush: day 1 is still open, so 000001.ndjson must not be
        # checkpointed (its events would be lost with the process)
        tailer.run(once=True, flush_at_exit=False)
        assert load_checkpoint(spooled["checkpoint"]) == {"000000.ndjson"}
        assert tailer.pending_files() == ["000001.ndjson"]


class TestResume:
    def test_checkpointed_files_are_skipped(self, live_ingest, spooled):
        tailer = make_tailer(
            spooled["spool"], live_ingest, spooled["snaps"], spooled["checkpoint"]
        )
        tailer.run(once=True, flush_at_exit=True)
        resumed = make_tailer(
            spooled["spool"], live_ingest, spooled["snaps"], spooled["checkpoint"]
        )
        assert resumed.scan_once() == 0

    def test_torn_checkpoint_degrades_to_full_replay(
        self, small_sim, live_ingest, spooled
    ):
        tailer = make_tailer(
            spooled["spool"], live_ingest, spooled["snaps"], spooled["checkpoint"]
        )
        tailer.run(once=True, flush_at_exit=True)
        accepted = live_ingest.accepted_total

        # simulate a crash that tore the checkpoint mid-write, then a
        # restart from the published snapshot
        spooled["checkpoint"].write_text('{"processed": ["000')
        engine = AnalysisEngine.load(
            spooled["snaps"] / "current",
            small_sim.network,
            small_sim.districts(),
            config=EngineConfig(),
        )
        ingest = IngestEngine(engine)
        assert ingest.open_day == 2
        resumed = make_tailer(
            spooled["spool"], ingest, spooled["snaps"], spooled["checkpoint"]
        )
        files, days_closed = resumed.run(once=True, flush_at_exit=False)
        # the whole spool replays, but every event belongs to a built day:
        # all rejected as closed-day, nothing double-counted
        assert files == 2
        assert days_closed == 0
        assert ingest.accepted_total == 0
        assert resumed.rejected_totals["closed-day"] == accepted
        assert engine.built_days == {0, 1}

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.json") == set()

    @pytest.mark.parametrize(
        "content", ["[]", '{"processed": "000000.ndjson"}', "{}"]
    )
    def test_structurally_invalid_checkpoint_is_empty(self, tmp_path, content):
        path = tmp_path / "checkpoint.json"
        path.write_text(content)
        assert load_checkpoint(path) == set()

    def test_write_checkpoint_atomic_and_sorted(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        write_checkpoint(path, {"b.ndjson", "a.ndjson"}, "snap/model-000001")
        doc = json.loads(path.read_text())
        assert doc["processed"] == ["a.ndjson", "b.ndjson"]
        assert doc["snapshot"] == "snap/model-000001"
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]
