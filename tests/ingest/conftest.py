"""Fixtures for the streaming-ingest tests.

Everything runs against the small simulation profile from the root
conftest; ``live_ingest`` wraps a fresh (no built days) analysis engine,
so each test controls the open day and the roll-up state from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.ingest.engine import IngestEngine


@pytest.fixture()
def live_engine(small_sim):
    """A fresh analysis engine over the small simulator (no built days)."""
    return AnalysisEngine.from_simulator(small_sim, EngineConfig())


@pytest.fixture()
def live_ingest(live_engine):
    """An ingest engine over ``live_engine``, opening at day 0."""
    return IngestEngine(live_engine)


def day_rows(batch):
    """A day's :class:`RecordBatch` as stream-ordered (window-major) rows."""
    order = np.lexsort((batch.sensor_ids, batch.windows))
    return [
        (
            int(batch.sensor_ids[i]),
            int(batch.windows[i]),
            float(batch.severities[i]),
        )
        for i in order
    ]
