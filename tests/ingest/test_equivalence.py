"""Live-vs-batch equivalence: the PR's central invariant.

A day streamed through :class:`IngestEngine` — in any batch chunking —
must leave the forest, cube and snapshot files exactly as a batch build
over the same records would. The byte-level check here is the same one
the ``ingest_throughput`` benchmark gates on every run.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.ingest.engine import IngestEngine

from .conftest import day_rows

STREAM_DAYS = 2


def _file_digests(model_dir):
    return {
        name: hashlib.sha256((model_dir / name).read_bytes()).hexdigest()
        for name in ("forest.bin", "cube.bin", "engine.json")
    }


def _forest_signature(engine):
    forest = engine.forest
    return [
        (
            day,
            [
                (
                    c.cluster_id,
                    tuple(sorted(c.spatial.items())),
                    tuple(sorted(c.temporal.items())),
                )
                for c in forest.day_clusters(day)
            ],
        )
        for day in sorted(engine.built_days)
    ]


class TestByteParity:
    def test_snapshot_is_byte_identical_to_batch_build(
        self, small_sim, tmp_path
    ):
        data = tmp_path / "data"
        small_sim.materialize_catalog(data, months=[0])
        from repro.storage.catalog import DatasetCatalog

        catalog = DatasetCatalog(data)

        live = AnalysisEngine.from_simulator(small_sim, EngineConfig())
        ingest = IngestEngine(live)
        for dataset in catalog:
            for day in dataset.days:
                if day >= STREAM_DAYS:
                    continue
                rows = day_rows(dataset.atypical_day(day))
                # stream in small uneven batches, the way a producer would
                for start in range(0, len(rows), 257):
                    ingest.add_events(rows[start : start + 257])
        ingest.flush()
        snapshot = ingest.snapshot(tmp_path / "snaps")

        batch = AnalysisEngine.from_simulator(small_sim, EngineConfig())
        for dataset in catalog:
            for day in dataset.days:
                if day < STREAM_DAYS:
                    batch.add_day_records(day, dataset.atypical_day(day))
        batch_dir = tmp_path / "batch"
        batch.save(batch_dir, forest_format="columnar")

        assert _file_digests(snapshot) == _file_digests(batch_dir)


class TestChunkingInvariance:
    """The model must not depend on how the stream was batched."""

    @settings(max_examples=15, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.integers(0, 30),
                st.integers(0, 60),
                st.floats(0.5, 20.0),
            ),
            min_size=1,
            max_size=60,
        ),
        cut=st.integers(0, 59),
    )
    def test_any_chunking_matches_one_shot(self, small_sim, records, cut):
        sensors = sorted(s.sensor_id for s in small_sim.network)
        rows = [
            (sensors[s % len(sensors)], w, round(sev, 3))
            for s, w, sev in records
        ]
        # the watermark contract only requires window-monotone arrival;
        # within-window order is free and must not matter
        rows.sort(key=lambda r: r[1])

        def build(chunks):
            engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
            ingest = IngestEngine(engine)
            for chunk in chunks:
                if chunk:
                    ingest.add_events(chunk)
            ingest.flush()
            return engine

        split = min(cut, len(rows))
        one_shot = build([rows])
        chunked = build([rows[:split], rows[split:]])
        assert _forest_signature(one_shot) == _forest_signature(chunked)

    def test_per_window_feed_matches_one_shot(self, small_sim):
        sensors = sorted(s.sensor_id for s in small_sim.network)
        rng = np.random.default_rng(11)
        rows = sorted(
            (
                int(rng.choice(sensors[:40])),
                int(rng.integers(0, 80)),
                float(rng.uniform(0.5, 10.0)),
            )
            for _ in range(120)
        )
        rows.sort(key=lambda r: r[1])

        def build(chunker):
            engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
            ingest = IngestEngine(engine)
            for chunk in chunker(rows):
                ingest.add_events(chunk)
            ingest.flush()
            return engine

        one_shot = build(lambda r: [r])

        def per_window(r):
            for window in sorted({row[1] for row in r}):
                yield [row for row in r if row[1] == window]

        assert _forest_signature(one_shot) == _forest_signature(
            build(per_window)
        )
