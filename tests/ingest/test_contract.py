"""Tests for the frozen event contract (wire formats and rejection slugs)."""

import json
import math

import pytest

from repro.ingest.contract import (
    CONTRACT_VERSION,
    ContractError,
    parse_body,
    parse_json,
    parse_ndjson,
    render_ndjson,
    validate_event,
)


def event(**overrides):
    doc = {"sensor": 3, "window": 120, "severity": 2.5}
    doc.update(overrides)
    return doc


class TestValidateEvent:
    def test_valid_event(self):
        row, reason = validate_event(event())
        assert reason == ""
        assert row == (3, 120, 2.5)

    def test_explicit_version_accepted(self):
        _, reason = validate_event(event(v=CONTRACT_VERSION))
        assert reason == ""

    @pytest.mark.parametrize(
        "obj, reason",
        [
            ([1, 2, 3], "not-object"),
            ("text", "not-object"),
            (event(extra=1), "unknown-field"),
            (event(v=2), "bad-version"),
            (event(v="1"), "bad-version"),
            ({"sensor": 1, "window": 2}, "missing-field"),
            (event(sensor=-1), "bad-sensor"),
            (event(sensor=1.0), "bad-sensor"),
            (event(sensor=True), "bad-sensor"),
            (event(window=-1), "bad-window"),
            (event(window="12"), "bad-window"),
            (event(severity=0.0), "bad-severity"),
            (event(severity=-2.0), "bad-severity"),
            (event(severity=math.inf), "bad-severity"),
            (event(severity=math.nan), "bad-severity"),
            (event(severity="2.5"), "bad-severity"),
            (event(severity=True), "bad-severity"),
        ],
    )
    def test_rejection_slugs(self, obj, reason):
        row, got = validate_event(obj)
        assert got == reason
        assert row == (0, 0, 0.0)

    def test_integer_severity_accepted(self):
        row, reason = validate_event(event(severity=3))
        assert reason == ""
        assert row == (3, 120, 3.0)


class TestNdjson:
    def test_roundtrip_preserves_floats(self):
        rows = [(0, 5, 0.1), (7, 2041, 12.5), (3, 9, 1 / 3)]
        parsed, rejected = parse_ndjson(render_ndjson(rows))
        assert parsed == rows
        assert not rejected

    def test_blank_lines_skipped(self):
        data = b"\n" + render_ndjson([(1, 2, 3.0)]) + b"\n\n"
        rows, rejected = parse_ndjson(data)
        assert rows == [(1, 2, 3.0)]
        assert not rejected

    def test_partial_acceptance(self):
        data = b"\n".join(
            [
                json.dumps(event()).encode(),
                b"{not json",
                json.dumps(event(sensor=-5)).encode(),
                json.dumps(event(window=9)).encode(),
            ]
        )
        rows, rejected = parse_ndjson(data)
        assert len(rows) == 2
        assert rejected == {"parse": 1, "bad-sensor": 1}

    def test_render_empty_is_empty(self):
        assert render_ndjson([]) == b""
        assert parse_ndjson(b"") == ([], {})


class TestJsonDocument:
    def test_array_form(self):
        rows, rejected = parse_json(json.dumps([event(), event(sensor=9)]).encode())
        assert [r[0] for r in rows] == [3, 9]
        assert not rejected

    def test_envelope_form(self):
        rows, _ = parse_json(json.dumps({"events": [event()]}).encode())
        assert rows == [(3, 120, 2.5)]

    @pytest.mark.parametrize(
        "body",
        [
            b"{not json",
            json.dumps({"rows": []}).encode(),
            json.dumps({"events": [], "extra": 1}).encode(),
            json.dumps({"events": "nope"}).encode(),
            json.dumps(42).encode(),
        ],
    )
    def test_unusable_envelope_raises(self, body):
        with pytest.raises(ContractError):
            parse_json(body)

    def test_per_event_violations_do_not_raise(self):
        rows, rejected = parse_json(json.dumps([event(), event(v=9)]).encode())
        assert len(rows) == 1
        assert rejected == {"bad-version": 1}


class TestParseBody:
    def test_json_content_type_selects_document_form(self):
        body = json.dumps([event()]).encode()
        rows, _ = parse_body(body, "application/json; charset=utf-8")
        assert rows == [(3, 120, 2.5)]

    def test_default_is_ndjson(self):
        rows, _ = parse_body(render_ndjson([(1, 2, 3.0)]), "")
        assert rows == [(1, 2, 3.0)]
        rows, _ = parse_body(render_ndjson([(1, 2, 3.0)]), "application/x-ndjson")
        assert rows == [(1, 2, 3.0)]
