"""Tests for the live ingest engine: admission, day close, roll-ups,
staleness, overload, and snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.ingest.engine import MACRO_ID_BASE, IngestEngine, IngestOverload


def sensors_of(engine):
    return sorted(s.sensor_id for s in engine.network)


class TestAdmission:
    def test_valid_rows_accepted(self, live_engine, live_ingest):
        sensor = sensors_of(live_engine)[0]
        result = live_ingest.add_events([(sensor, 0, 2.0), (sensor, 1, 1.0)])
        assert result.accepted == 2
        assert result.rejected_total() == 0
        assert result.open_day == 0
        assert live_ingest.pending_rows() == 2

    def test_unknown_sensor_rejected(self, live_ingest):
        result = live_ingest.add_events([(10**6, 0, 2.0)])
        assert result.accepted == 0
        assert result.rejected == {"unknown-sensor": 1}

    def test_beyond_calendar_rejected(self, live_engine, live_ingest):
        spec = live_engine.window_spec
        last = live_engine.calendar.num_days * spec.windows_per_day - 1
        sensor = sensors_of(live_engine)[0]
        assert live_ingest.add_events([(sensor, last + 1, 1.0)]).rejected == {
            "beyond-calendar": 1
        }

    def test_stale_window_rejected(self, live_engine, live_ingest):
        sensor = sensors_of(live_engine)[0]
        live_ingest.add_events([(sensor, 10, 1.0)])
        result = live_ingest.add_events([(sensor, 9, 1.0)])
        assert result.rejected == {"stale-window": 1}

    def test_closed_day_rejected(self, live_engine, live_ingest):
        sensor = sensors_of(live_engine)[0]
        live_ingest.add_events([(sensor, 5, 1.0)])
        live_ingest.flush()
        result = live_ingest.add_events([(sensor, 6, 1.0)])
        assert result.rejected == {"closed-day": 1}
        assert result.open_day == 1

    def test_note_rejections_folds_into_totals(self, live_ingest):
        from collections import Counter

        live_ingest.note_rejections(Counter({"parse": 2, "bad-sensor": 1}))
        stats = live_ingest.stats()
        assert stats["rejected"] == 3
        assert stats["rejections"] == {"bad-sensor": 1, "parse": 2}


class TestDayLifecycle:
    def test_watermark_crossing_closes_day(self, live_engine, live_ingest):
        spec = live_engine.window_spec
        sensor = sensors_of(live_engine)[0]
        live_ingest.add_events([(sensor, 3, 2.0)])
        result = live_ingest.add_events(
            [(sensor, spec.windows_per_day + 1, 1.0)]
        )
        assert result.closed_days == [0]
        assert result.open_day == 1
        assert live_engine.built_days == {0}
        assert len(live_engine.forest.day_clusters(0)) == 1

    def test_gap_days_installed_empty(self, live_engine, live_ingest):
        spec = live_engine.window_spec
        sensor = sensors_of(live_engine)[0]
        live_ingest.add_events([(sensor, 0, 2.0)])
        result = live_ingest.add_events(
            [(sensor, 3 * spec.windows_per_day, 1.0)]
        )
        assert result.closed_days == [0, 1, 2]
        assert live_engine.built_days == {0, 1, 2}
        assert live_engine.forest.day_clusters(1) == []
        assert live_engine.forest.day_clusters(2) == []

    def test_flush_closes_even_an_empty_day(self, live_engine, live_ingest):
        assert live_ingest.flush() == [0]
        assert live_engine.built_days == {0}
        assert live_ingest.open_day == 1
        assert live_ingest.stats()["days_closed"] == 1

    def test_resume_opens_after_last_built_day(self, small_sim):
        engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
        ingest = IngestEngine(engine)
        ingest.flush()
        ingest.flush()
        resumed = IngestEngine(engine, start_day=0)
        assert resumed.open_day == 2

    def test_staleness_tracks_pending_and_clears_on_close(
        self, live_engine, live_ingest
    ):
        sensor = sensors_of(live_engine)[0]
        assert live_ingest.staleness_seconds() == 0.0
        live_ingest.add_events([(sensor, 0, 1.0)])
        assert live_ingest.staleness_seconds() >= 0.0
        assert live_ingest.pending_rows() == 1
        live_ingest.flush()
        assert live_ingest.staleness_seconds() == 0.0
        assert live_ingest.pending_rows() == 0


class TestRollups:
    def test_day_close_materializes_week_and_month(
        self, live_engine, live_ingest
    ):
        spec = live_engine.window_spec
        sensor = sensors_of(live_engine)[0]
        # the same sensor at the same time of day on two consecutive days:
        # two day-level micros that merge when the week re-materializes
        live_ingest.add_events([(sensor, 0, 5.0)])
        live_ingest.add_events([(sensor, spec.windows_per_day, 5.0)])
        live_ingest.flush()
        cal = live_engine.calendar
        forest = live_engine.forest
        week = forest.week_clusters(cal.week_of_day(0))
        month = forest.month_clusters(cal.month_of_day(0))
        assert len(week) == 1
        assert len(month) == 1
        # merged live macros mint in the high id-space so a later batch
        # build's micro ids can never collide with them
        assert week[0].cluster_id >= MACRO_ID_BASE
        assert week[0].severity() == pytest.approx(10.0)

    def test_week_boundary_starts_a_new_tree(self, live_engine):
        spec = live_engine.window_spec
        cal = live_engine.calendar
        ingest = IngestEngine(live_engine)
        sensor = sensors_of(live_engine)[0]
        # one event on the last day of week 0 and one on the first day of
        # week 1; each lands in its own weekly tree
        last_of_week0 = cal.week_day_range(0)[-1]
        for day in (last_of_week0, last_of_week0 + 1):
            ingest.add_events([(sensor, day * spec.windows_per_day, 3.0)])
            ingest.flush()
        forest = live_engine.forest
        assert len(forest.week_clusters(0)) == 1
        assert len(forest.week_clusters(1)) == 1

    def test_rollup_disabled_leaves_caches_empty(self, live_engine):
        ingest = IngestEngine(live_engine, rollup=False)
        sensor = sensors_of(live_engine)[0]
        ingest.add_events([(sensor, 0, 5.0)])
        ingest.flush()
        cal = live_engine.calendar
        assert live_engine.forest.stats().num_week_macro == 0
        assert live_engine.forest.stats().num_month_macro == 0
        assert cal.week_of_day(0) == 0


class TestOverload:
    def test_oversized_batch_rejected_before_application(self, live_engine):
        ingest = IngestEngine(live_engine, max_batch_rows=2)
        sensor = sensors_of(live_engine)[0]
        with pytest.raises(IngestOverload):
            ingest.add_events([(sensor, w, 1.0) for w in range(3)])
        assert ingest.accepted_total == 0
        assert ingest.pending_rows() == 0

    def test_queue_full_sheds_waiters(self, live_engine):
        ingest = IngestEngine(live_engine, max_waiters=0)
        sensor = sensors_of(live_engine)[0]
        release = threading.Event()
        entered = threading.Event()

        original = ingest._apply

        def slow_apply(rows, flush):
            entered.set()
            release.wait(timeout=10)
            return original(rows, flush)

        ingest._apply = slow_apply
        worker = threading.Thread(
            target=lambda: ingest.add_events([(sensor, 0, 1.0)])
        )
        worker.start()
        try:
            assert entered.wait(timeout=10)
            with pytest.raises(IngestOverload):
                ingest.add_events([(sensor, 1, 1.0)])
        finally:
            release.set()
            worker.join(timeout=10)
        assert ingest.accepted_total == 1


class TestSnapshots:
    def test_snapshot_publishes_current_symlink(
        self, live_engine, live_ingest, tmp_path
    ):
        sensor = sensors_of(live_engine)[0]
        live_ingest.add_events([(sensor, 0, 2.0)])
        live_ingest.flush()
        target = live_ingest.snapshot(tmp_path)
        assert target == tmp_path / "model-000001"
        for name in ("forest.bin", "cube.bin", "engine.json"):
            assert (target / name).is_file()
        assert (tmp_path / "current").resolve() == target.resolve()

    def test_versions_derive_from_directory(self, live_engine, tmp_path):
        # a tailer resumed after a crash must not collide with versions
        # its predecessor published
        ingest = IngestEngine(live_engine)
        ingest.flush()
        ingest.snapshot(tmp_path)
        successor = IngestEngine(live_engine)
        assert successor.snapshot(tmp_path).name == "model-000002"

    def test_old_versions_pruned(self, live_engine, tmp_path):
        ingest = IngestEngine(live_engine, snapshot_keep=2)
        ingest.flush()
        for _ in range(4):
            ingest.snapshot(tmp_path)
        versions = sorted(p.name for p in tmp_path.glob("model-*"))
        assert versions == ["model-000003", "model-000004"]
        assert (tmp_path / "current").resolve().name == "model-000004"

    def test_snapshot_loads_as_a_model(self, small_sim, live_engine, tmp_path):
        ingest = IngestEngine(live_engine)
        sensor = sensors_of(live_engine)[0]
        ingest.add_events([(sensor, 0, 2.0)])
        ingest.flush()
        ingest.snapshot(tmp_path)
        loaded = AnalysisEngine.load(
            tmp_path / "current",
            small_sim.network,
            small_sim.districts(),
            config=EngineConfig(),
        )
        assert loaded.built_days == {0}
        assert len(loaded.forest.day_clusters(0)) == 1
