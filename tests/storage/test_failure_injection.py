"""Failure-injection tests for the storage layer.

A 50 GB trace will eventually hit torn writes, truncated files and
bit rot; the storage substrate must fail loudly rather than feed corrupt
severities into the analysis.
"""

import numpy as np
import pytest

from repro.storage.catalog import DatasetCatalog
from repro.storage.codec import CodecError, ReadingChunk
from repro.storage.dataset import CPSDataset, CPSDatasetWriter, DatasetMeta
from repro.storage.forest_io import load_cube, load_forest


def tiny_chunk(day, wpd=4):
    return ReadingChunk(
        np.repeat(np.arange(2, dtype=np.int32), wpd),
        np.tile(np.arange(day * wpd, (day + 1) * wpd, dtype=np.int32), 2),
        np.full(2 * wpd, 60.0, dtype=np.float32),
        np.zeros(2 * wpd, dtype=np.float32),
    )


def write_dataset(path, days=2):
    meta = DatasetMeta("D", 2, 0, days, 5)
    with CPSDatasetWriter(path, meta) as writer:
        for day in range(days):
            writer.append_day(tiny_chunk(day))
    return path


class TestTornDatasets:
    def test_truncated_file_detected_at_open(self, tmp_path):
        path = write_dataset(tmp_path / "d.cps")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises((CodecError, Exception)):
            ds = CPSDataset(path)
            ds.read_day(1)

    def test_flipped_bit_detected_at_read(self, tmp_path):
        path = write_dataset(tmp_path / "d.cps")
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # corrupt the last chunk's payload
        path.write_bytes(bytes(data))
        ds = CPSDataset(path)
        with pytest.raises(CodecError):
            ds.read_day(1)

    def test_day_count_mismatch_detected(self, tmp_path):
        path = write_dataset(tmp_path / "d.cps", days=2)
        # claim three days in the metadata of a two-day file
        data = path.read_bytes()
        patched = data.replace(b'"num_days": 2', b'"num_days": 3', 1)
        path.write_bytes(patched)
        with pytest.raises(CodecError):
            CPSDataset(path)

    def test_writer_exception_does_not_mask_error(self, tmp_path):
        meta = DatasetMeta("D", 2, 0, 5, 5)
        with pytest.raises(RuntimeError, match="boom"):
            with CPSDatasetWriter(tmp_path / "d.cps", meta) as writer:
                writer.append_day(tiny_chunk(0))
                raise RuntimeError("boom")


class TestCatalogFailures:
    def test_missing_dataset_file(self, tmp_path):
        write_dataset(tmp_path / "D1.cps")
        catalog = DatasetCatalog.build(tmp_path, ["D1.cps", "D2.cps"])
        catalog.dataset(0)  # present
        with pytest.raises(FileNotFoundError):
            catalog.dataset(1)

    def test_corrupt_index(self, tmp_path):
        (tmp_path / "catalog.json").write_text("{not json")
        with pytest.raises(Exception):
            DatasetCatalog(tmp_path)


class TestModelFileFailures:
    def test_forest_on_empty_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"")
        with pytest.raises(CodecError):
            load_forest(path)

    def test_cube_on_garbage(self, tmp_path):
        from repro.spatial.regions import DistrictGrid
        from repro.temporal.hierarchy import Calendar

        from tests.conftest import line_network

        path = tmp_path / "c.bin"
        path.write_bytes(b"\x00" * 64)
        net = line_network(4)
        with pytest.raises(Exception):
            load_cube(
                path,
                DistrictGrid(net, 2, 1),
                Calendar(month_lengths=(7,), month_names=("m",)),
            )
