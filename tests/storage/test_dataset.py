"""Tests for on-disk CPS datasets."""

import numpy as np
import pytest

from repro.storage.codec import CodecError, ReadingChunk
from repro.storage.dataset import CPSDataset, CPSDatasetWriter, DatasetMeta


def day_chunk(day, num_sensors=4, windows_per_day=12, congested_at=()):
    n = num_sensors * windows_per_day
    sensor_ids = np.repeat(np.arange(num_sensors, dtype=np.int32), windows_per_day)
    windows = np.tile(
        np.arange(day * windows_per_day, (day + 1) * windows_per_day, dtype=np.int32),
        num_sensors,
    )
    speeds = np.full(n, 60.0, dtype=np.float32)
    congested = np.zeros(n, dtype=np.float32)
    for idx, minutes in congested_at:
        congested[idx] = minutes
    return ReadingChunk(sensor_ids, windows, speeds, congested)


@pytest.fixture()
def dataset_path(tmp_path):
    meta = DatasetMeta("D1", num_sensors=4, first_day=0, num_days=3, window_minutes=5)
    path = tmp_path / "d1.cps"
    with CPSDatasetWriter(path, meta) as writer:
        writer.append_day(day_chunk(0, congested_at=[(0, 4.0), (5, 2.0)]))
        writer.append_day(day_chunk(1))
        writer.append_day(day_chunk(2, congested_at=[(7, 3.0)]))
    return path


class TestWriter:
    def test_too_many_days(self, tmp_path):
        meta = DatasetMeta("D", 4, 0, 1, 5)
        writer = CPSDatasetWriter(tmp_path / "x.cps", meta)
        writer.append_day(day_chunk(0))
        with pytest.raises(ValueError):
            writer.append_day(day_chunk(1))

    def test_too_few_days(self, tmp_path):
        meta = DatasetMeta("D", 4, 0, 2, 5)
        writer = CPSDatasetWriter(tmp_path / "x.cps", meta)
        writer.append_day(day_chunk(0))
        with pytest.raises(ValueError):
            writer.close()

    def test_write_after_close(self, tmp_path):
        meta = DatasetMeta("D", 4, 0, 1, 5)
        writer = CPSDatasetWriter(tmp_path / "x.cps", meta)
        writer.append_day(day_chunk(0))
        writer.close()
        with pytest.raises(ValueError):
            writer.append_day(day_chunk(1))


class TestReader:
    def test_meta_roundtrip(self, dataset_path):
        ds = CPSDataset(dataset_path)
        assert ds.meta.name == "D1"
        assert ds.meta.num_days == 3
        assert list(ds.days) == [0, 1, 2]

    def test_read_day(self, dataset_path):
        ds = CPSDataset(dataset_path)
        chunk = ds.read_day(0)
        assert len(chunk) == 48
        assert chunk.congested[0] == 4.0

    def test_read_day_out_of_range(self, dataset_path):
        ds = CPSDataset(dataset_path)
        with pytest.raises(ValueError):
            ds.read_day(3)

    def test_scan_all(self, dataset_path):
        ds = CPSDataset(dataset_path)
        days = [day for day, _ in ds.scan()]
        assert days == [0, 1, 2]

    def test_scan_subset(self, dataset_path):
        ds = CPSDataset(dataset_path)
        assert [day for day, _ in ds.scan([2])] == [2]

    def test_io_stats(self, dataset_path):
        ds = CPSDataset(dataset_path)
        ds.read_day(0)
        assert ds.io.chunks_read == 1
        assert ds.io.records_scanned == 48
        assert ds.io.bytes_read > 0
        ds.io.reset()
        assert ds.io.chunks_read == 0

    def test_not_a_dataset(self, tmp_path):
        bogus = tmp_path / "bogus.cps"
        bogus.write_bytes(b"hello world")
        with pytest.raises(CodecError):
            CPSDataset(bogus)

    def test_total_readings(self, dataset_path):
        assert CPSDataset(dataset_path).total_readings() == 3 * 48


class TestAtypicalSelection:
    def test_atypical_day(self, dataset_path):
        ds = CPSDataset(dataset_path)
        batch = ds.atypical_day(0)
        assert len(batch) == 2
        assert batch.total_severity() == 6.0

    def test_atypical_day_empty(self, dataset_path):
        ds = CPSDataset(dataset_path)
        assert len(ds.atypical_day(1)) == 0

    def test_atypical_records_whole(self, dataset_path):
        ds = CPSDataset(dataset_path)
        batch = ds.atypical_records()
        assert len(batch) == 3
        assert batch.total_severity() == 9.0

    def test_atypical_records_subset(self, dataset_path):
        ds = CPSDataset(dataset_path)
        assert len(ds.atypical_records([2])) == 1
