"""Tests for the columnar memory-mapped forest container.

Three invariants anchor this file:

* **byte identity** — a forest round-tripped through the columnar
  container re-serializes to the legacy format byte-for-byte, and a
  columnar→columnar round trip is idempotent;
* **partial I/O** — opening a columnar model and answering a 3-day
  query faults in strictly fewer bytes than the file holds;
* **fail loudly** — corrupt, truncated and future-version files raise
  one-line :class:`~repro.storage.codec.CodecError`\\ s, never garbage.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.storage import columnar
from repro.storage.codec import CodecError
from repro.storage.columnar import ColumnarForest, sniff_format
from repro.storage.forest_io import load_forest, save_forest
from repro.temporal.hierarchy import Calendar

from tests.conftest import make_cluster


def synthetic_forest():
    """A 7-day forest with materialized week + month caches."""
    calendar = Calendar(month_lengths=(14,), month_names=("m",))
    forest = AtypicalForest(calendar, integrator=ClusterIntegrator(0.5))
    for day in range(7):
        forest.add_day(
            day,
            [
                make_cluster(
                    {1: 6.0 + day, 2: 4.0},
                    {100 + day: 6.0 + day, 200: 4.0},
                    cluster_id=forest.ids.next_id(),
                )
            ],
        )
    forest.materialize()
    return forest


@pytest.fixture(scope="module")
def built_engine(small_sim):
    """An engine over ten simulated days, fully materialized."""
    engine = AnalysisEngine.from_simulator(small_sim)
    engine.build_from_simulator(small_sim, days=range(10))
    engine.forest.materialize()
    return engine


def state_signature(forest):
    state = forest.export_state()

    def feat(c):
        return (
            c.cluster_id,
            c.level,
            c.members,
            c.spatial.key_array.tobytes(),
            c.spatial.value_array.tobytes(),
            c.temporal.key_array.tobytes(),
            c.temporal.value_array.tobytes(),
        )

    return (
        [feat(c) for c in state["clusters"]],
        state["micro_by_day"],
        state["week_cache"],
        state["month_cache"],
    )


class TestRoundTrip:
    def test_legacy_columnar_legacy_byte_identical(self, tmp_path):
        forest = synthetic_forest()
        legacy = tmp_path / "legacy.bin"
        cols = tmp_path / "cols.bin"
        save_forest(forest, legacy)
        save_forest(forest, cols, format="columnar")
        reloaded = load_forest(cols, forest.integrator)
        assert isinstance(reloaded, ColumnarForest)
        again = tmp_path / "again.bin"
        save_forest(reloaded, again)
        assert again.read_bytes() == legacy.read_bytes()

    def test_columnar_round_trip_is_idempotent(self, tmp_path):
        forest = synthetic_forest()
        first = tmp_path / "first.bin"
        save_forest(forest, first, format="columnar")
        second = tmp_path / "second.bin"
        save_forest(load_forest(first), second, format="columnar")
        assert second.read_bytes() == first.read_bytes()

    def test_state_signature_parity(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        assert state_signature(load_forest(path)) == state_signature(forest)

    def test_built_engine_round_trip(self, built_engine, tmp_path):
        legacy = tmp_path / "legacy.bin"
        cols = tmp_path / "cols.bin"
        save_forest(built_engine.forest, legacy)
        save_forest(built_engine.forest, cols, format="columnar")
        back = tmp_path / "back.bin"
        save_forest(load_forest(cols, built_engine.forest.integrator), back)
        assert back.read_bytes() == legacy.read_bytes()

    def test_engine_save_and_load_columnar(self, built_engine, small_sim, tmp_path):
        built_engine.save(tmp_path / "model", forest_format="columnar")
        assert (
            sniff_format(tmp_path / "model" / "forest.bin") == "columnar"
        )
        reloaded = AnalysisEngine.load(
            tmp_path / "model", small_sim.network, small_sim.districts()
        )
        original = built_engine.query(
            built_engine.whole_city(), 0, 7, strategy="gui"
        )
        result = reloaded.query(reloaded.whole_city(), 0, 7, strategy="gui")
        assert sorted(c.cluster_id for c in result.returned) == sorted(
            c.cluster_id for c in original.returned
        )

    def test_provenance_survives(self, tmp_path):
        forest = synthetic_forest()
        forest.set_provenance({"shard_by": "day", "days": list(range(7))})
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        assert load_forest(path).provenance == forest.provenance


class TestLazyIO:
    def test_three_day_query_is_partial(self, built_engine, tmp_path):
        path = tmp_path / "f.bin"
        save_forest(built_engine.forest, path, format="columnar")
        forest = load_forest(path, built_engine.forest.integrator)
        eager = {
            day: [c.cluster_id for c in built_engine.forest.day_clusters(day)]
            for day in range(3)
        }
        lazy = {
            day: [c.cluster_id for c in forest.day_clusters(day)]
            for day in range(3)
        }
        assert lazy == eager
        io = forest.io_stats()
        assert io["bytes_loaded"] < io["bytes_mapped"]
        assert io["bytes_mapped"] == path.stat().st_size
        assert 0 < io["groups_loaded"] < io["groups_total"]

    def test_stats_without_loading_groups(self, built_engine, tmp_path):
        path = tmp_path / "f.bin"
        save_forest(built_engine.forest, path, format="columnar")
        forest = load_forest(path, built_engine.forest.integrator)
        assert forest.stats() == built_engine.forest.stats()
        assert forest.io_stats()["groups_loaded"] == 0

    def test_days_listed_without_loading(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        loaded = load_forest(path)
        assert loaded.days == forest.days
        assert loaded.io_stats()["groups_loaded"] == 0

    def test_week_and_month_levels(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        loaded = load_forest(path)
        assert [c.severity() for c in loaded.week_clusters(0)] == [
            c.severity() for c in forest.week_clusters(0)
        ]
        assert [c.severity() for c in loaded.month_clusters(0)] == [
            c.severity() for c in forest.month_clusters(0)
        ]

    def test_lookup_falls_back_to_full_load(self, tmp_path):
        forest = synthetic_forest()
        some_id = forest.day_clusters(6)[0].cluster_id
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        loaded = load_forest(path)
        assert loaded.lookup(some_id).cluster_id == some_id
        with pytest.raises(KeyError):
            loaded.lookup(10_000_000)

    def test_mutation_after_load(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        loaded = load_forest(path)
        loaded.add_day(
            7,
            [make_cluster({3: 5.0}, {107: 5.0}, cluster_id=loaded.ids.next_id())],
        )
        assert 7 in loaded.days
        # new clusters integrate with the stored ones on re-serialization
        out = tmp_path / "grown.bin"
        save_forest(loaded, out, format="columnar")
        assert 7 in load_forest(out).days

    def test_iteration_matches_eager(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        loaded = load_forest(path)
        assert sorted(c.cluster_id for c in loaded) == sorted(
            c.cluster_id for c in forest
        )


class TestObservability:
    def test_model_open_and_query_io_counters(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        reg = obs.MetricsRegistry()
        with obs.activate(reg):
            loaded = load_forest(path)
            loaded.day_clusters(0)
            assert reg.counter("model_open.opens").value == 1
            assert (
                reg.counter("model_open.bytes_mapped").value
                == path.stat().st_size
            )
            assert reg.counter("query_io.groups_loaded").value >= 1
            assert reg.counter("query_io.bytes_loaded").value > 0


class TestFailureModes:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"garbage that is not a forest at all")
        with pytest.raises(CodecError, match="not a forest file"):
            load_forest(path)

    def test_version_from_the_future(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        data = bytearray(path.read_bytes())
        data[4] = 9  # version byte in the magic
        path.write_bytes(bytes(data))
        with pytest.raises(CodecError, match="newer than this build"):
            load_forest(path)

    def test_truncated_file(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(CodecError):
            load_forest(path)

    def test_tiny_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(columnar.COLUMNAR_MAGIC)
        with pytest.raises(CodecError, match="truncated"):
            columnar.ColumnContainer(path)

    def test_flipped_payload_byte_fails_on_access(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        data = bytearray(path.read_bytes())
        data[16] ^= 0xFF  # inside the first group's payload
        path.write_bytes(bytes(data))
        loaded = load_forest(path)  # open succeeds: footer is intact
        with pytest.raises(CodecError, match="checksum mismatch"):
            loaded.materialize()

    def test_corrupt_footer(self, tmp_path):
        forest = synthetic_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path, format="columnar")
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # inside the JSON footer
        path.write_bytes(bytes(data))
        with pytest.raises(CodecError, match="checksum"):
            load_forest(path)


class TestFormatDispatch:
    def test_sniff_legacy_and_columnar(self, tmp_path):
        forest = synthetic_forest()
        legacy = tmp_path / "legacy.bin"
        cols = tmp_path / "cols.bin"
        save_forest(forest, legacy)
        save_forest(forest, cols, format="columnar")
        assert sniff_format(legacy) == "legacy"
        assert sniff_format(cols) == "columnar"

    def test_save_accepts_legacy_alias(self, tmp_path):
        forest = synthetic_forest()
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        save_forest(forest, a, format="pickle")
        save_forest(forest, b, format="legacy")
        assert a.read_bytes() == b.read_bytes()

    def test_save_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_forest(synthetic_forest(), tmp_path / "f.bin", format="parquet")
