"""Tests for forest / cube / engine persistence."""

import numpy as np
import pytest

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.cube.datacube import SeverityCube
from repro.simulate import SimulationConfig, TrafficSimulator
from repro.spatial.regions import DistrictGrid
from repro.storage.codec import CodecError
from repro.storage.forest_io import load_cube, load_forest, save_cube, save_forest
from repro.temporal.hierarchy import Calendar

from tests.conftest import line_network, make_batch, make_cluster


def small_forest():
    calendar = Calendar(month_lengths=(14,), month_names=("m",))
    forest = AtypicalForest(calendar, integrator=ClusterIntegrator(0.5))
    for day in range(7):
        forest.add_day(
            day,
            [
                make_cluster(
                    {1: 6.0, 2: 4.0},
                    {100: 6.0, 101: 4.0},
                    cluster_id=forest.ids.next_id(),
                )
            ],
        )
    forest.week_clusters(0)  # materialize so caches get persisted
    return forest


class TestForestRoundTrip:
    def test_micro_clusters_survive(self, tmp_path):
        forest = small_forest()
        save_forest(forest, tmp_path / "f.bin")
        loaded = load_forest(tmp_path / "f.bin")
        assert loaded.days == forest.days
        for day in forest.days:
            assert [c.spatial for c in loaded.day_clusters(day)] == [
                c.spatial for c in forest.day_clusters(day)
            ]

    def test_week_cache_survives(self, tmp_path):
        forest = small_forest()
        save_forest(forest, tmp_path / "f.bin")
        loaded = load_forest(tmp_path / "f.bin")
        assert loaded.stats().num_week_macro == 1
        week = loaded.week_clusters(0)
        assert week[0].severity() == pytest.approx(70.0)

    def test_provenance_walkable_after_load(self, tmp_path):
        forest = small_forest()
        save_forest(forest, tmp_path / "f.bin")
        loaded = load_forest(tmp_path / "f.bin")
        week = loaded.week_clusters(0)[0]
        assert len(loaded.leaves_of(week)) == 7

    def test_calendar_survives(self, tmp_path):
        forest = small_forest()
        save_forest(forest, tmp_path / "f.bin")
        loaded = load_forest(tmp_path / "f.bin")
        assert loaded.calendar.num_days == 14
        assert loaded.window_spec.width_minutes == 5

    def test_id_generator_resumes_above_max(self, tmp_path):
        forest = small_forest()
        highest = max(c.cluster_id for c in forest.export_state()["clusters"])
        save_forest(forest, tmp_path / "f.bin")
        loaded = load_forest(tmp_path / "f.bin")
        assert loaded.ids.next_id() == highest + 1

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"garbage file")
        with pytest.raises(CodecError):
            load_forest(path)

    def test_truncated_blob(self, tmp_path):
        forest = small_forest()
        path = tmp_path / "f.bin"
        save_forest(forest, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(CodecError):
            load_forest(path)

    def test_import_requires_empty(self):
        forest = small_forest()
        with pytest.raises(ValueError):
            forest.import_state([], {}, {}, {})


class TestCubeRoundTrip:
    def test_cells_survive(self, tmp_path):
        net = line_network(10)
        districts = DistrictGrid(net, cols=5, rows=1)
        calendar = Calendar(month_lengths=(14,), month_names=("m",))
        cube = SeverityCube(districts, calendar)
        cube.add_records(make_batch([(0, 10, 4.0), (7, 300, 2.5)]))
        save_cube(cube, tmp_path / "c.bin")
        loaded = load_cube(tmp_path / "c.bin", districts, calendar)
        assert np.array_equal(np.asarray(loaded.cells()), np.asarray(cube.cells()))
        assert loaded.records_added == 2

    def test_shape_mismatch_rejected(self, tmp_path):
        net = line_network(10)
        districts = DistrictGrid(net, cols=5, rows=1)
        calendar = Calendar(month_lengths=(14,), month_names=("m",))
        cube = SeverityCube(districts, calendar)
        save_cube(cube, tmp_path / "c.bin")
        other = DistrictGrid(net, cols=2, rows=1)
        with pytest.raises(CodecError):
            load_cube(tmp_path / "c.bin", other, calendar)


class TestEngineRoundTrip:
    def test_queries_identical_after_reload(self, tmp_path):
        sim = TrafficSimulator(SimulationConfig.small())
        engine = AnalysisEngine.from_simulator(sim)
        engine.build_from_simulator(sim, days=range(5))
        original = engine.query(engine.whole_city(), 0, 5, strategy="gui")
        engine.save(tmp_path / "model")

        reloaded = AnalysisEngine.load(
            tmp_path / "model", sim.network, sim.districts()
        )
        assert reloaded.built_days == engine.built_days
        result = reloaded.query(reloaded.whole_city(), 0, 5, strategy="gui")
        assert sorted(c.severity() for c in result.returned) == pytest.approx(
            sorted(c.severity() for c in original.returned)
        )
        assert result.stats.red_zones == original.stats.red_zones

    def test_reloaded_engine_can_keep_building(self, tmp_path):
        sim = TrafficSimulator(SimulationConfig.small())
        engine = AnalysisEngine.from_simulator(sim)
        engine.build_from_simulator(sim, days=range(3))
        engine.save(tmp_path / "model")
        reloaded = AnalysisEngine.load(
            tmp_path / "model", sim.network, sim.districts()
        )
        reloaded.build_from_simulator(sim, days=range(3, 5))
        assert reloaded.built_days == frozenset(range(5))
        result = reloaded.query(reloaded.whole_city(), 0, 5, strategy="all")
        assert result.stats.input_clusters > 0
