"""The process-wide loaded-model cache: digest keying, hit/miss metrics."""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.storage.model_cache import (
    MODEL_FILES,
    cache_info,
    clear_model_cache,
    load_engine_cached,
    model_digest,
)


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory, small_sim):
    engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
    engine.build_from_simulator(small_sim, range(3))
    model = tmp_path_factory.mktemp("model-cache") / "model"
    engine.save(model)
    return model


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_model_cache()
    yield
    clear_model_cache()


class TestModelDigest:
    def test_digest_is_stable(self, saved_model):
        assert model_digest(saved_model) == model_digest(saved_model)

    def test_digest_tracks_file_content(self, saved_model):
        before = model_digest(saved_model)
        meta = saved_model / "engine.json"
        original = meta.read_bytes()
        try:
            meta.write_bytes(original + b"\n")
            assert model_digest(saved_model) != before
        finally:
            meta.write_bytes(original)
        assert model_digest(saved_model) == before

    def test_partial_model_raises(self, tmp_path):
        (tmp_path / MODEL_FILES[0]).write_bytes(b"x")
        with pytest.raises(FileNotFoundError):
            model_digest(tmp_path)


class TestLoadEngineCached:
    def test_second_load_is_a_hit(self, saved_model, small_sim):
        config = EngineConfig()
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            first = load_engine_cached(
                saved_model, small_sim.network, small_sim.districts(), config
            )
            second = load_engine_cached(
                saved_model, small_sim.network, small_sim.districts(), config
            )
        assert second.engine is first.engine
        assert second.query_lock is first.query_lock
        snap = registry.snapshot()
        assert snap["counters"]["model_cache.misses"] == 1
        assert snap["counters"]["model_cache.hits"] == 1
        assert any(
            s["name"] == "model_cache.load" for s in snap["spans"]
        )

    def test_config_change_is_a_miss(self, saved_model, small_sim):
        a = load_engine_cached(
            saved_model, small_sim.network, small_sim.districts(), EngineConfig()
        )
        b = load_engine_cached(
            saved_model,
            small_sim.network,
            small_sim.districts(),
            EngineConfig(similarity_threshold=0.6),
        )
        assert a.engine is not b.engine
        assert cache_info()["size"] == 2

    def test_file_change_is_a_miss(self, saved_model, small_sim):
        config = EngineConfig()
        a = load_engine_cached(
            saved_model, small_sim.network, small_sim.districts(), config
        )
        meta = saved_model / "engine.json"
        original = meta.read_bytes()
        try:
            meta.write_bytes(original + b"\n")
            b = load_engine_cached(
                saved_model, small_sim.network, small_sim.districts(), config
            )
        finally:
            meta.write_bytes(original)
        assert a.engine is not b.engine
        assert a.digest != b.digest

    def test_clear_reports_evictions(self, saved_model, small_sim):
        load_engine_cached(
            saved_model, small_sim.network, small_sim.districts(), EngineConfig()
        )
        assert clear_model_cache() == 1
        assert cache_info()["size"] == 0
