"""Tests for the dataset catalog."""

import numpy as np
import pytest

from repro.storage.catalog import DatasetCatalog
from repro.storage.codec import ReadingChunk
from repro.storage.dataset import CPSDatasetWriter, DatasetMeta


def write_month(directory, name, first_day, num_days, congested_day=None):
    wpd = 12
    path = directory / f"{name}.cps"
    meta = DatasetMeta(name, 2, first_day, num_days, 5)
    with CPSDatasetWriter(path, meta) as writer:
        for day in range(first_day, first_day + num_days):
            congested = np.zeros(2 * wpd, dtype=np.float32)
            if day == congested_day:
                congested[0] = 3.0
            writer.append_day(
                ReadingChunk(
                    np.repeat(np.arange(2, dtype=np.int32), wpd),
                    np.tile(np.arange(day * wpd, (day + 1) * wpd, dtype=np.int32), 2),
                    np.full(2 * wpd, 60.0, dtype=np.float32),
                    congested,
                )
            )
    return f"{name}.cps"


@pytest.fixture()
def catalog(tmp_path):
    files = [
        write_month(tmp_path, "D1", 0, 3, congested_day=1),
        write_month(tmp_path, "D2", 3, 2, congested_day=4),
    ]
    return DatasetCatalog.build(tmp_path, files)


class TestCatalog:
    def test_len(self, catalog):
        assert len(catalog) == 2

    def test_missing_index(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetCatalog(tmp_path / "nowhere")

    def test_dataset_by_month(self, catalog):
        assert catalog.dataset(0).meta.name == "D1"
        assert catalog.dataset(1).meta.name == "D2"

    def test_dataset_cached(self, catalog):
        assert catalog.dataset(0) is catalog.dataset(0)

    def test_month_out_of_range(self, catalog):
        with pytest.raises(ValueError):
            catalog.dataset(2)

    def test_dataset_for_day(self, catalog):
        assert catalog.dataset_for_day(2).meta.name == "D1"
        assert catalog.dataset_for_day(3).meta.name == "D2"
        assert catalog.dataset_for_day(99) is None

    def test_atypical_records_spanning_months(self, catalog):
        batch = catalog.atypical_records([1, 4])
        assert len(batch) == 2

    def test_total_readings(self, catalog):
        assert catalog.total_readings() == 5 * 24

    def test_io_totals(self, catalog):
        catalog.reset_io()
        catalog.dataset(0).read_day(0)
        totals = catalog.io_totals()
        assert totals["chunks_read"] == 1
        assert totals["records_scanned"] == 24

    def test_total_size_bytes(self, catalog):
        assert catalog.total_size_bytes() > 0
