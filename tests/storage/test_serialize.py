"""Tests for cluster serialization and model-size accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import AtypicalEvent
from repro.storage.serialize import (
    clusters_size_bytes,
    decode_cluster,
    decode_clusters,
    encode_cluster,
    encode_clusters,
    events_size_bytes,
)

from tests.conftest import make_batch, make_cluster

cluster_strategy = st.builds(
    make_cluster,
    spatial=st.dictionaries(st.integers(0, 500), st.floats(0.5, 300), min_size=1, max_size=8),
    temporal=st.none(),
    level=st.integers(0, 5),
    members=st.lists(st.integers(0, 1000), max_size=4).map(tuple),
)


class TestSingleCluster:
    def test_roundtrip(self):
        original = make_cluster(
            {1: 182.0, 2: 97.0}, {97: 200.0, 98: 79.0}, cluster_id=7, level=2,
            members=(3, 4),
        )
        decoded, _ = decode_cluster(encode_cluster(original))
        assert decoded.cluster_id == 7
        assert decoded.level == 2
        assert decoded.members == (3, 4)
        assert decoded.spatial == original.spatial
        assert decoded.temporal == original.temporal

    def test_offset_returned(self):
        blob = encode_cluster(make_cluster({1: 1.0}))
        _, offset = decode_cluster(blob)
        assert offset == len(blob)

    @given(cluster=cluster_strategy)
    def test_roundtrip_random(self, cluster):
        decoded, _ = decode_cluster(encode_cluster(cluster))
        assert decoded.spatial == cluster.spatial
        assert decoded.temporal == cluster.temporal
        assert decoded.members == cluster.members


class TestCollections:
    def test_roundtrip_many(self):
        clusters = [make_cluster({i: 1.0 + i}) for i in range(5)]
        decoded = decode_clusters(encode_clusters(clusters))
        assert len(decoded) == 5
        assert [c.spatial for c in decoded] == [c.spatial for c in clusters]

    def test_empty_collection(self):
        assert decode_clusters(encode_clusters([])) == []

    def test_size_accounting_matches_bytes(self):
        clusters = [
            make_cluster({1: 2.0, 2: 3.0}, {5: 5.0}, members=(9,)),
            make_cluster({4: 1.0}),
        ]
        assert clusters_size_bytes(clusters) == len(encode_clusters(clusters))

    @given(clusters=st.lists(cluster_strategy, max_size=6))
    def test_size_accounting_random(self, clusters):
        assert clusters_size_bytes(clusters) == len(encode_clusters(clusters))


class TestEventSize:
    def test_events_size(self):
        event = AtypicalEvent(make_batch([(1, 10, 4.0), (2, 11, 5.0)]))
        assert events_size_bytes([event]) == 2 * 16

    def test_cluster_model_smaller_than_events(self):
        # the AC model stores one entry per sensor/window, not per record —
        # repeat readings on the same sensor collapse (Fig. 16's point)
        records = [(1, w, 4.0) for w in range(100)]
        event = AtypicalEvent(make_batch(records))
        cluster = event.to_micro_cluster(windows_per_day=10)
        assert clusters_size_bytes([cluster]) < events_size_bytes([event])
