"""Tests for the binary reading codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.codec import (
    CHUNK_HEADER_SIZE,
    CodecError,
    ReadingChunk,
    decode_chunk,
    encode_chunk,
)


def chunk_of(rows):
    sensor_ids = np.array([r[0] for r in rows], dtype=np.int32)
    windows = np.array([r[1] for r in rows], dtype=np.int32)
    speeds = np.array([r[2] for r in rows], dtype=np.float32)
    congested = np.array([r[3] for r in rows], dtype=np.float32)
    return ReadingChunk(sensor_ids, windows, speeds, congested)


SAMPLE = chunk_of([(0, 10, 62.5, 0.0), (1, 10, 20.0, 4.0), (2, 11, 61.0, 0.0)])


class TestReadingChunk:
    def test_len(self):
        assert len(SAMPLE) == 3

    def test_mismatched_columns(self):
        with pytest.raises(ValueError):
            ReadingChunk(
                np.array([1], dtype=np.int32),
                np.array([1, 2], dtype=np.int32),
                np.array([1.0], dtype=np.float32),
                np.array([1.0], dtype=np.float32),
            )

    def test_atypical_mask(self):
        assert list(SAMPLE.atypical_mask()) == [False, True, False]

    def test_nbytes(self):
        assert SAMPLE.nbytes == 3 * 16


class TestRoundTrip:
    def test_basic(self):
        decoded = decode_chunk(encode_chunk(SAMPLE))
        assert np.array_equal(decoded.sensor_ids, SAMPLE.sensor_ids)
        assert np.array_equal(decoded.windows, SAMPLE.windows)
        assert np.array_equal(decoded.speeds, SAMPLE.speeds)
        assert np.array_equal(decoded.congested, SAMPLE.congested)

    def test_empty_chunk(self):
        empty = chunk_of([])
        decoded = decode_chunk(encode_chunk(empty))
        assert len(decoded) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.integers(0, 200_000),
                st.floats(0, 90, width=32),
                st.floats(0, 5, width=32),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_random(self, rows):
        chunk = chunk_of(rows)
        decoded = decode_chunk(encode_chunk(chunk))
        assert np.array_equal(decoded.sensor_ids, chunk.sensor_ids)
        assert np.array_equal(decoded.congested, chunk.congested)


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(CodecError):
            decode_chunk(b"abc")

    def test_bad_magic(self):
        data = bytearray(encode_chunk(SAMPLE))
        data[0:4] = b"XXXX"
        with pytest.raises(CodecError):
            decode_chunk(bytes(data))

    def test_bad_version(self):
        data = bytearray(encode_chunk(SAMPLE))
        data[4] = 99
        with pytest.raises(CodecError):
            decode_chunk(bytes(data))

    def test_truncated_payload(self):
        data = encode_chunk(SAMPLE)
        with pytest.raises(CodecError):
            decode_chunk(data[:-4])

    def test_flipped_payload_bit_fails_checksum(self):
        data = bytearray(encode_chunk(SAMPLE))
        data[CHUNK_HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(CodecError):
            decode_chunk(bytes(data))
