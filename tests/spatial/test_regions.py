"""Tests for pre-defined districts and query regions."""

import pytest

from repro.spatial.geometry import BBox
from repro.spatial.regions import DistrictGrid, QueryRegion

from tests.conftest import line_network, two_road_network


class TestDistrictGrid:
    def test_partition_is_exhaustive_and_disjoint(self):
        net = two_road_network()
        grid = DistrictGrid(net, cols=3, rows=2)
        seen = [grid.district_of(s.sensor_id) for s in net]
        assert len(seen) == len(net)
        union = set()
        for district in grid:
            assert union.isdisjoint(district.sensor_ids)
            union.update(district.sensor_ids)
        assert union == {s.sensor_id for s in net}

    def test_district_count(self):
        grid = DistrictGrid(line_network(10), cols=5, rows=1)
        assert len(grid) == 5

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            DistrictGrid(line_network(4), cols=0, rows=2)

    def test_district_of_matches_membership(self):
        net = line_network(10)
        grid = DistrictGrid(net, cols=5, rows=1)
        for sensor in net:
            district = grid[grid.district_of(sensor.sensor_id)]
            assert sensor.sensor_id in district.sensor_ids

    def test_edge_sensor_included(self):
        # the right-most sensor sits on the bbox edge; half-open cells must
        # still capture it
        net = line_network(10)
        grid = DistrictGrid(net, cols=2, rows=1)
        assert grid.district_of(9) == 1

    def test_names_unique(self):
        grid = DistrictGrid(two_road_network(), cols=3, rows=2)
        names = [d.name for d in grid]
        assert len(set(names)) == len(names)

    def test_shape(self):
        grid = DistrictGrid(line_network(5), cols=4, rows=2)
        assert grid.shape == (4, 2)

    def test_districts_in_region(self):
        net = line_network(10)
        grid = DistrictGrid(net, cols=5, rows=1)
        region = QueryRegion("left", [0, 1])
        hit = grid.districts_in(region)
        assert [d.district_id for d in hit] == [0]

    def test_sensor_district_map(self):
        net = line_network(4)
        grid = DistrictGrid(net, cols=2, rows=1)
        mapping = grid.sensor_district_map()
        assert set(mapping) == {0, 1, 2, 3}


class TestQueryRegion:
    def test_whole_network(self):
        net = line_network(8)
        region = QueryRegion.whole_network(net)
        assert len(region) == 8

    def test_contains(self):
        region = QueryRegion("r", [1, 2, 3])
        assert 2 in region
        assert 9 not in region

    def test_from_bbox(self):
        net = line_network(10)
        region = QueryRegion.from_bbox(net, BBox(1.5, -1, 4.5, 1))
        assert region.sensor_ids == frozenset({2, 3, 4})

    def test_from_districts(self):
        net = line_network(10)
        grid = DistrictGrid(net, cols=2, rows=1)
        region = QueryRegion.from_districts([grid[0]], "west")
        assert region.sensor_ids == frozenset(grid[0].sensor_ids)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QueryRegion("empty", [])

    def test_name(self):
        assert QueryRegion("downtown", [0]).name == "downtown"
