"""Tests for the aggregation R-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BBox, Point
from repro.spatial.rtree import RTree


def grid_entries(n=6, m=6):
    return [(i * m + j, Point(float(i), float(j))) for i in range(n) for j in range(m)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_rejects_small_fanout(self):
        with pytest.raises(ValueError):
            RTree([(0, Point(0, 0))], fanout=1)

    def test_len(self):
        assert len(RTree(grid_entries())) == 36

    def test_single_entry(self):
        tree = RTree([(7, Point(1, 2))])
        assert tree.query(BBox(0, 0, 3, 3)) == [7]

    def test_height_grows_with_size(self):
        small = RTree(grid_entries(2, 2), fanout=4)
        large = RTree(grid_entries(8, 8), fanout=4)
        assert large.height > small.height

    def test_root_bbox_covers_everything(self):
        tree = RTree(grid_entries())
        box = tree.root.bbox
        for sid, point in grid_entries():
            assert box.contains_closed(point)


class TestQuery:
    def test_full_range(self):
        tree = RTree(grid_entries())
        assert tree.query(BBox(-1, -1, 10, 10)) == list(range(36))

    def test_point_query(self):
        tree = RTree(grid_entries())
        assert tree.query(BBox(2, 3, 2, 3)) == [2 * 6 + 3]

    def test_empty_region(self):
        tree = RTree(grid_entries())
        assert tree.query(BBox(0.2, 0.2, 0.8, 0.8)) == []

    def test_partial_range(self):
        tree = RTree(grid_entries(4, 4))
        result = tree.query(BBox(0, 0, 1, 3))
        expected = sorted(
            sid for sid, p in grid_entries(4, 4) if p.x <= 1
        )
        assert result == expected

    @settings(max_examples=25, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.floats(0, 50), st.floats(0, 50)), min_size=1, max_size=60
        ),
        box=st.tuples(
            st.floats(0, 50), st.floats(0, 50), st.floats(0, 50), st.floats(0, 50)
        ),
    )
    def test_matches_linear_scan(self, points, box):
        x1, y1, x2, y2 = box
        bbox = BBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        entries = [(i, Point(x, y)) for i, (x, y) in enumerate(points)]
        tree = RTree(entries, fanout=4)
        expected = sorted(i for i, p in entries if bbox.contains_closed(p))
        assert tree.query(bbox) == expected


class TestAggregates:
    def test_total_weight(self):
        tree = RTree(grid_entries(3, 3))
        tree.set_weights({sid: 1.0 for sid in range(9)})
        total, _ = tree.range_aggregate(BBox(-1, -1, 5, 5))
        assert total == 9.0

    def test_partial_weight(self):
        tree = RTree(grid_entries(3, 3))
        tree.set_weights({sid: float(sid) for sid in range(9)})
        total, _ = tree.range_aggregate(BBox(0, 0, 0, 2))
        assert total == 0 + 1 + 2

    def test_missing_weights_default_zero(self):
        tree = RTree(grid_entries(2, 2))
        tree.set_weights({0: 5.0})
        total, _ = tree.range_aggregate(BBox(-1, -1, 3, 3))
        assert total == 5.0

    def test_contained_subtree_short_circuits(self):
        tree = RTree(grid_entries(10, 10), fanout=4)
        tree.set_weights({sid: 1.0 for sid in range(100)})
        _, visited_full = tree.range_aggregate(BBox(-1, -1, 11, 11))
        # full containment answers from the root alone
        assert visited_full == 1

    def test_aggregate_matches_query_sum(self):
        tree = RTree(grid_entries(5, 5), fanout=4)
        weights = {sid: float(sid % 7) for sid in range(25)}
        tree.set_weights(weights)
        box = BBox(1, 1, 3, 4)
        total, _ = tree.range_aggregate(box)
        assert total == pytest.approx(sum(weights[s] for s in tree.query(box)))


class TestHalfOpenAggregates:
    def test_boundary_point_counted_once(self):
        # two tiles sharing the x = 2 edge; the sensor at x = 2 belongs to
        # the right tile only
        entries = [(0, Point(1, 1)), (1, Point(2, 1)), (2, Point(3, 1))]
        tree = RTree(entries, fanout=2)
        tree.set_weights({0: 1.0, 1: 10.0, 2: 100.0})
        left, _ = tree.range_aggregate(BBox(0, 0, 2, 2), closed=False)
        right, _ = tree.range_aggregate(BBox(2, 0, 4, 2), closed=False)
        assert left == 1.0
        assert right == 110.0
        assert left + right == 111.0

    def test_closed_mode_double_counts_boundary(self):
        entries = [(0, Point(2, 1))]
        tree = RTree(entries, fanout=2)
        tree.set_weights({0: 5.0})
        left, _ = tree.range_aggregate(BBox(0, 0, 2, 2), closed=True)
        right, _ = tree.range_aggregate(BBox(2, 0, 4, 2), closed=True)
        assert left == right == 5.0

    def test_half_open_tiles_partition_weights(self):
        entries = grid_entries(6, 6)
        tree = RTree(entries, fanout=4)
        weights = {sid: 1.0 for sid, _ in entries}
        tree.set_weights(weights)
        total = 0.0
        for x0 in (0.0, 3.0):
            for y0 in (0.0, 3.0):
                part, _ = tree.range_aggregate(
                    BBox(x0, y0, x0 + 3.0, y0 + 3.0), closed=False
                )
                total += part
        # coordinates span 0..5, the four tiles cover [0,6) x [0,6), so
        # every point lands in exactly one tile
        assert total == 36.0
