"""Tests for road network and sensor deployment."""

import pytest

from repro.spatial.geometry import BBox, Point
from repro.spatial.network import Highway, Sensor, SensorNetwork, deploy_sensors

from tests.conftest import line_network, two_road_network


class TestHighway:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Highway(0, "bad", (Point(0, 0),))

    def test_opposite_directions_are_distinct(self):
        pts = (Point(0, 0), Point(1, 0))
        east = Highway(0, "Fwy 10E", pts)
        west = Highway(1, "Fwy 10W", tuple(reversed(pts)))
        assert east.highway_id != west.highway_id
        assert east.points[0] == west.points[-1]


class TestSensorNetwork:
    def test_len(self):
        assert len(line_network(10)) == 10

    def test_getitem(self):
        net = line_network(5)
        assert net[3].sensor_id == 3

    def test_rejects_sparse_ids(self):
        sensors = [Sensor(0, Point(0, 0), 0, 0, 0), Sensor(2, Point(1, 0), 0, 1, 1)]
        with pytest.raises(ValueError):
            SensorNetwork(sensors)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SensorNetwork([])

    def test_positions_shape(self):
        net = line_network(7)
        assert net.positions.shape == (7, 2)

    def test_positions_readonly(self):
        net = line_network(3)
        with pytest.raises(ValueError):
            net.positions[0, 0] = 99.0

    def test_distance(self):
        net = line_network(5, spacing=2.0)
        assert net.distance(0, 3) == 6.0

    def test_highway_sensors_ordered(self):
        net = line_network(5)
        assert net.highway_sensors(0) == (0, 1, 2, 3, 4)

    def test_bounding_box(self):
        net = line_network(5, spacing=1.0)
        box = net.bounding_box()
        assert box.min_x == 0 and box.max_x == 4

    def test_sensors_in_bbox(self):
        net = line_network(10)
        inside = net.sensors_in(BBox(2.5, -1, 5.5, 1))
        assert inside == [3, 4, 5]

    def test_sensors_in_bbox_closed(self):
        net = line_network(10)
        assert 2 in net.sensors_in(BBox(2.0, 0.0, 2.0, 0.0))


class TestDeploySensors:
    def test_spacing(self):
        highway = Highway(0, "A", (Point(0, 0), Point(10, 0)))
        net = deploy_sensors([highway], 2.0)
        assert len(net) == 6
        assert net[1].milepost == 2.0

    def test_ids_dense_across_highways(self):
        h0 = Highway(0, "A", (Point(0, 0), Point(4, 0)))
        h1 = Highway(1, "B", (Point(0, 2), Point(4, 2)))
        net = deploy_sensors([h0, h1], 1.0)
        assert [s.sensor_id for s in net] == list(range(10))

    def test_spacing_overrides(self):
        h0 = Highway(0, "A", (Point(0, 0), Point(12, 0)))
        h1 = Highway(1, "B", (Point(0, 2), Point(12, 2)))
        net = deploy_sensors([h0, h1], 1.0, {1: 4.0})
        assert len(net.highway_sensors(0)) == 13
        assert len(net.highway_sensors(1)) == 4

    def test_two_road_fixture(self):
        net = two_road_network(gap=5.0)
        assert net.distance(0, 6) == 5.0
        assert net.highway_sensors(1) == (6, 7, 8, 9, 10, 11)

    def test_highways_exposed(self):
        net = line_network(3)
        assert 0 in net.highways
        assert net.highways[0].name == "Fwy TestE"
