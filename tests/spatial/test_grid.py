"""Tests for the sensor grid index (delta_d neighbour queries)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point
from repro.spatial.grid import SensorGridIndex
from repro.spatial.network import Highway, Sensor, SensorNetwork

from tests.conftest import line_network, two_road_network


def brute_force_neighbours(network, sensor_id, radius):
    me = network.location(sensor_id)
    return tuple(
        s.sensor_id
        for s in network
        if s.location.distance_to(me) < radius
    )


class TestGridIndex:
    def test_includes_self(self):
        index = SensorGridIndex(line_network(5), 1.5)
        assert 2 in index.neighbours(2)

    def test_strict_inequality(self):
        # Definition 1 uses distance < delta_d: sensors exactly at the
        # threshold are NOT neighbours
        net = line_network(5, spacing=1.5)
        index = SensorGridIndex(net, 1.5)
        assert index.neighbours(2) == (2,)

    def test_adjacent_within_radius(self):
        net = line_network(5, spacing=1.0)
        index = SensorGridIndex(net, 1.5)
        assert index.neighbours(2) == (1, 2, 3)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            SensorGridIndex(line_network(3), 0)

    def test_cross_road_separation(self):
        net = two_road_network(gap=5.0)
        index = SensorGridIndex(net, 1.5)
        for sid in index.neighbours(0):
            assert sid < 6  # nothing from the second road

    def test_cross_road_within_radius(self):
        net = two_road_network(gap=1.0)
        index = SensorGridIndex(net, 1.5)
        assert 6 in index.neighbours(0)

    def test_matches_brute_force_line(self):
        net = line_network(20, spacing=0.7)
        index = SensorGridIndex(net, 1.5)
        for sid in range(20):
            assert index.neighbours(sid) == brute_force_neighbours(net, sid, 1.5)

    def test_neighbour_pairs_cover_all(self):
        net = line_network(6, spacing=1.0)
        index = SensorGridIndex(net, 1.5)
        pairs = set(index.neighbour_pairs())
        assert (0, 0) in pairs
        assert (0, 1) in pairs
        assert (1, 0) not in pairs  # unordered, a <= b

    def test_caching_returns_same(self):
        index = SensorGridIndex(line_network(5), 1.5)
        assert index.neighbours(1) is index.neighbours(1)

    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.floats(0, 20), st.floats(0, 20)),
            min_size=2,
            max_size=30,
        ),
        radius=st.floats(0.5, 6.0),
    )
    def test_matches_brute_force_random(self, points, radius):
        highway = Highway(0, "X", (Point(0, 0), Point(20, 20)))
        sensors = [
            Sensor(i, Point(x, y), 0, float(i), i) for i, (x, y) in enumerate(points)
        ]
        net = SensorNetwork(sensors, [highway])
        index = SensorGridIndex(net, radius)
        for sid in range(len(points)):
            assert index.neighbours(sid) == brute_force_neighbours(net, sid, radius)
