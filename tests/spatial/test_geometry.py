"""Tests for geometry primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import BBox, Point, distance, polyline_length, walk_polyline

coords = st.floats(-100, 100, allow_nan=False)


class TestPoint:
    def test_distance_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_zero(self):
        assert Point(1.5, 2.5).distance_to(Point(1.5, 2.5)) == 0.0

    def test_distance_function_matches_method(self):
        a, b = Point(0, 0), Point(1, 1)
        assert distance(a, b) == a.distance_to(b)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1, 2).as_tuple() == (1.0, 2.0)

    @given(x1=coords, y1=coords, x2=coords, y2=coords)
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == b.distance_to(a)

    @given(x1=coords, y1=coords, x2=coords, y2=coords, x3=coords, y3=coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestBBox:
    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12

    def test_center(self):
        assert BBox(0, 0, 4, 2).center == Point(2, 1)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BBox(5, 0, 0, 1)

    def test_contains_half_open(self):
        box = BBox(0, 0, 1, 1)
        assert box.contains(Point(0, 0))
        assert not box.contains(Point(1, 0))
        assert not box.contains(Point(0, 1))

    def test_contains_closed(self):
        box = BBox(0, 0, 1, 1)
        assert box.contains_closed(Point(1, 1))

    def test_adjacent_boxes_tile(self):
        left = BBox(0, 0, 1, 1)
        right = BBox(1, 0, 2, 1)
        boundary = Point(1, 0.5)
        assert left.contains(boundary) != right.contains(boundary)

    def test_intersects_overlap(self):
        assert BBox(0, 0, 2, 2).intersects(BBox(1, 1, 3, 3))

    def test_intersects_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_touching_edges_do_not_intersect(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(1, 0, 2, 1))

    def test_union(self):
        combined = BBox(0, 0, 1, 1).union(BBox(2, 2, 3, 3))
        assert combined == BBox(0, 0, 3, 3)

    def test_expanded(self):
        assert BBox(1, 1, 2, 2).expanded(1) == BBox(0, 0, 3, 3)

    def test_around_points(self):
        box = BBox.around([Point(1, 5), Point(-2, 0), Point(4, 2)])
        assert box == BBox(-2, 0, 4, 5)

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.around([])

    def test_around_single_point_degenerate(self):
        box = BBox.around([Point(1, 1)])
        assert box.area == 0


class TestPolyline:
    def test_length_straight(self):
        assert polyline_length([Point(0, 0), Point(3, 4)]) == 5.0

    def test_length_multi_segment(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1)]
        assert polyline_length(pts) == 2.0

    def test_walk_spacing(self):
        pts = [Point(0, 0), Point(10, 0)]
        stops = list(walk_polyline(pts, 2.0))
        mileposts = [m for m, _ in stops]
        assert mileposts == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_walk_crosses_vertices(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 3)]
        stops = list(walk_polyline(pts, 2.0))
        # total length 6 -> mileposts 0, 2, 4, 6
        assert len(stops) == 4
        assert stops[2][1] == Point(3, 1)

    def test_walk_rejects_short_polyline(self):
        with pytest.raises(ValueError):
            list(walk_polyline([Point(0, 0)], 1.0))

    def test_walk_rejects_bad_step(self):
        with pytest.raises(ValueError):
            list(walk_polyline([Point(0, 0), Point(1, 0)], 0))

    def test_walk_points_on_line(self):
        pts = [Point(0, 0), Point(5, 5)]
        for _, p in walk_polyline(pts, 1.0):
            assert math.isclose(p.x, p.y, abs_tol=1e-9)
