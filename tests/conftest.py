"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.features import SpatialFeature, TemporalFeature
from repro.core.records import AtypicalRecord, RecordBatch
from repro.simulate import SimulationConfig, TrafficSimulator
from repro.spatial.geometry import Point
from repro.spatial.network import Highway, Sensor, SensorNetwork
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

_ids = ClusterIdGenerator(10_000)


def make_cluster(
    spatial: dict[int, float],
    temporal: dict[int, float] | None = None,
    cluster_id: int | None = None,
    level: int = 0,
    members: tuple[int, ...] = (),
) -> AtypicalCluster:
    """Build a cluster; temporal defaults to one window carrying the
    spatial total so the SF/TF invariant holds."""
    if temporal is None:
        temporal = {0: sum(spatial.values())}
    return AtypicalCluster(
        cluster_id=cluster_id if cluster_id is not None else _ids.next_id(),
        spatial=SpatialFeature(spatial),
        temporal=TemporalFeature(temporal),
        level=level,
        members=members,
    )


def make_batch(records: list[tuple[int, int, float]]) -> RecordBatch:
    """RecordBatch from (sensor, window, severity) triples."""
    return RecordBatch.from_records(
        AtypicalRecord(s, w, f) for s, w, f in records
    )


def line_network(num_sensors: int = 10, spacing: float = 1.0) -> SensorNetwork:
    """A single straight eastbound highway with evenly spaced sensors."""
    highway = Highway(0, "Fwy TestE", (Point(0, 0), Point(num_sensors * spacing, 0)))
    sensors = [
        Sensor(i, Point(i * spacing, 0.0), 0, i * spacing, i)
        for i in range(num_sensors)
    ]
    return SensorNetwork(sensors, [highway])


def two_road_network(spacing: float = 1.0, gap: float = 5.0) -> SensorNetwork:
    """Two parallel highways ``gap`` miles apart, 6 sensors each."""
    h0 = Highway(0, "Fwy AE", (Point(0, 0), Point(6 * spacing, 0)))
    h1 = Highway(1, "Fwy BE", (Point(0, gap), Point(6 * spacing, gap)))
    sensors = [
        Sensor(i, Point(i * spacing, 0.0), 0, i * spacing, i) for i in range(6)
    ] + [
        Sensor(6 + i, Point(i * spacing, gap), 1, i * spacing, i) for i in range(6)
    ]
    return SensorNetwork(sensors, [h0, h1])


@pytest.fixture(scope="session")
def small_sim() -> TrafficSimulator:
    """The small simulation profile, shared across the session."""
    return TrafficSimulator(SimulationConfig.small())


@pytest.fixture(scope="session")
def bench_sim() -> TrafficSimulator:
    """The benchmark simulation profile (heavier; used sparingly)."""
    return TrafficSimulator(SimulationConfig.benchmark())


@pytest.fixture()
def spec() -> WindowSpec:
    return WindowSpec()


@pytest.fixture()
def calendar() -> Calendar:
    return Calendar()


@pytest.fixture(scope="session")
def small_batches(small_sim) -> dict[int, RecordBatch]:
    """Seven days of atypical records from the small simulator."""
    batches = {}
    for day in range(7):
        chunk = small_sim.simulate_day(day)
        mask = chunk.atypical_mask()
        batches[day] = RecordBatch(
            chunk.sensor_ids[mask],
            chunk.windows[mask],
            chunk.congested[mask].astype(np.float64),
        )
    return batches
