"""Tests for the bench regression gate (benchmarks/compare.py).

``benchmarks/`` is outside the import path of the tier-1 suite, so the
gate module is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", _REPO_ROOT / "benchmarks" / "compare.py"
)
compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare)

BASE_PHASES = {
    "workload": 0.03,
    "similarity_kernel": 1.0,
    "integration": 0.4,
    "naive_fixpoint": 0.25,
}


def make_report(phases, meta=None, identical=True):
    report = {
        "similarity_kernel": {"speedup": 58.0},
        "integration": {
            "identical_macro_clusters": identical,
            "speedup": 1.7,
        },
        "naive_fixpoint": {
            "identical_macro_clusters": True,
            "speedup": 25.0,
        },
        "spans": {"phase_seconds": dict(phases)},
    }
    if meta is not None:
        report["meta"] = meta
    return report


def parallel_section(
    speedup, cpu_count, workers=2, scaling_speedup_at_2=None
):
    if scaling_speedup_at_2 is None:
        scaling_speedup_at_2 = speedup
    return {
        "identical_macro_clusters": True,
        "speedup": speedup,
        "workers": workers,
        "cpu_count": cpu_count,
        "worker_init_seconds": 0.05,
        "scaling": [
            {"workers": 1, "seconds": 1.0, "speedup": 1.0},
            {"workers": 2, "seconds": 1.0, "speedup": scaling_speedup_at_2},
        ],
    }


@pytest.fixture()
def paths(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(make_report(BASE_PHASES)))
    return tmp_path / "report.json", baseline, tmp_path / "history.jsonl"


def run_gate(report_dict, paths, *extra):
    report, baseline, history = paths
    report.write_text(json.dumps(report_dict))
    argv = [
        str(report),
        "--baseline", str(baseline),
        "--history", str(history),
        *extra,
    ]
    return compare.main(argv)


class TestGate:
    def test_identical_run_passes_and_appends_history(self, paths, capsys):
        meta = {
            "git_sha": "0123456789abcdef0123456789abcdef01234567",
            "timestamp": "2026-08-05T00:00:00+00:00",
        }
        assert run_gate(make_report(BASE_PHASES, meta=meta), paths) == 0
        _, _, history = paths
        rows = [json.loads(l) for l in history.read_text().splitlines()]
        assert len(rows) == 1
        assert rows[0]["git_sha"] == meta["git_sha"]
        assert rows[0]["timestamp"] == meta["timestamp"]
        assert rows[0]["phase_seconds"] == BASE_PHASES
        assert rows[0]["speedups"]["naive_fixpoint"] == 25.0
        assert "PASS" in capsys.readouterr().out

    def test_doctored_regression_fails_without_history_row(
        self, paths, capsys
    ):
        doctored = dict(BASE_PHASES)
        doctored["integration"] *= 1.5  # +50% > the 25% band
        assert run_gate(make_report(doctored), paths) == 1
        _, _, history = paths
        assert not history.exists()
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL: 1 phase regression(s) [integration]" in out

    def test_within_tolerance_passes(self, paths):
        near = dict(BASE_PHASES)
        near["integration"] *= 1.2
        assert run_gate(make_report(near), paths) == 0

    def test_speedup_never_fails(self, paths):
        fast = {name: value / 4 for name, value in BASE_PHASES.items()}
        assert run_gate(make_report(fast), paths) == 0

    def test_global_tolerance_flag(self, paths):
        doctored = dict(BASE_PHASES)
        doctored["integration"] *= 1.5
        assert (
            run_gate(make_report(doctored), paths, "--tolerance", "0.75")
            == 0
        )

    def test_phase_tolerance_override(self, paths):
        doctored = dict(BASE_PHASES)
        doctored["integration"] *= 1.5
        assert (
            run_gate(
                make_report(doctored),
                paths,
                "--phase-tolerance", "integration=0.75",
            )
            == 0
        )

    def test_correctness_flag_fails_gate(self, paths, capsys):
        assert run_gate(make_report(BASE_PHASES, identical=False), paths) == 1
        assert "identical_macro_clusters" in capsys.readouterr().out

    def test_new_phase_does_not_fail(self, paths, capsys):
        extended = dict(BASE_PHASES, brand_new_phase=9.0)
        assert run_gate(make_report(extended), paths) == 0
        assert "new" in capsys.readouterr().out

    def test_no_history_flag_skips_append(self, paths):
        assert (
            run_gate(make_report(BASE_PHASES), paths, "--no-history") == 0
        )
        _, _, history = paths
        assert not history.exists()

    def test_sub_min_seconds_phases_are_noise(self, tmp_path):
        baseline = tmp_path / "b.json"
        report = tmp_path / "r.json"
        baseline.write_text(json.dumps(make_report({"tiny": 0.001})))
        # 10x slower, but under --min-seconds: scheduler noise, not signal
        report.write_text(json.dumps(make_report({"tiny": 0.01})))
        argv = [
            str(report), "--baseline", str(baseline), "--no-history"
        ]
        assert compare.main(argv) == 0


class TestFunctionalGates:
    def test_partial_io_false_fails(self, paths, capsys):
        report = make_report(BASE_PHASES)
        report["query_io"] = {
            "identical_macro_clusters": True,
            "partial_io": False,
        }
        assert run_gate(report, paths) == 1
        assert "query_io.partial_io" in capsys.readouterr().out

    def test_partial_io_true_passes(self, paths):
        report = make_report(BASE_PHASES)
        report["query_io"] = {
            "identical_macro_clusters": True,
            "partial_io": True,
            "speedup": 2.0,
        }
        assert run_gate(report, paths) == 0

    def test_multi_cpu_slow_parallel_fails(self, paths, capsys):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(0.8, cpu_count=4)
        assert run_gate(report, paths) == 1
        assert "parallel_beats_serial" in capsys.readouterr().out

    def test_multi_cpu_scaling_point_fails(self, paths, capsys):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(
            1.4, cpu_count=4, scaling_speedup_at_2=0.9
        )
        assert run_gate(report, paths) == 1
        assert "scaling curve" in capsys.readouterr().out

    def test_multi_cpu_fast_parallel_passes(self, paths):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(1.6, cpu_count=4)
        assert run_gate(report, paths) == 0

    def test_single_cpu_bounded_overhead_passes_with_note(
        self, paths, capsys
    ):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(0.9, cpu_count=1)
        assert run_gate(report, paths) == 0
        out = capsys.readouterr().out
        assert "skipped (single-CPU host" in out

    def test_single_cpu_excessive_overhead_fails(self, paths, capsys):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(0.5, cpu_count=1)
        assert run_gate(report, paths) == 1
        assert "parallel" in capsys.readouterr().out

    def test_serial_report_has_no_parallel_gate(self, paths):
        report = make_report(BASE_PHASES)
        report["parallel_build"] = parallel_section(
            0.1, cpu_count=4, workers=1
        )
        assert run_gate(report, paths) == 0

    def test_parallel_correctness_flag_fails(self, paths, capsys):
        report = make_report(BASE_PHASES)
        section = parallel_section(1.5, cpu_count=4)
        section["identical_macro_clusters"] = False
        report["parallel_build"] = section
        assert run_gate(report, paths) == 1
        assert "parallel_build.identical_macro_clusters" in (
            capsys.readouterr().out
        )

    def test_history_row_records_scaling(self, paths):
        meta = {
            "git_sha": "0123456789abcdef0123456789abcdef01234567",
            "timestamp": "2026-08-05T00:00:00+00:00",
        }
        report = make_report(BASE_PHASES, meta=meta)
        report["parallel_build"] = parallel_section(1.5, cpu_count=4)
        assert run_gate(report, paths) == 0
        _, _, history = paths
        row = json.loads(history.read_text().splitlines()[0])
        assert row["cpu_count"] == 4
        assert row["scaling"][1]["workers"] == 2


class TestBadInput:
    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        report.write_text(json.dumps(make_report(BASE_PHASES)))
        with pytest.raises(SystemExit) as excinfo:
            compare.main(
                [str(report), "--baseline", str(tmp_path / "none.json")]
            )
        assert excinfo.value.code == 2
        assert "cannot read report" in capsys.readouterr().err

    def test_report_without_phase_seconds_exits_2(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        report.write_text('{"spans": {}}')
        with pytest.raises(SystemExit) as excinfo:
            compare.main([str(report), "--baseline", str(report)])
        assert excinfo.value.code == 2
        assert "phase_seconds" in capsys.readouterr().err

    def test_bad_phase_tolerance_spec_exits_2(self, paths, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_gate(
                make_report(BASE_PHASES), paths, "--phase-tolerance", "nope"
            )
        assert excinfo.value.code == 2


class TestCommittedBaseline:
    def test_repo_baseline_is_a_valid_report(self):
        path = _REPO_ROOT / "benchmarks" / "results" / "BENCH_baseline.json"
        report = compare.load_report(path)
        phases = compare.phase_seconds(report, path)
        assert set(phases) >= {
            "workload",
            "similarity_kernel",
            "integration",
            "naive_fixpoint",
            "parallel_build",
            "query_io",
        }
        assert not compare.check_correctness(report)
        assert not compare.check_gates(report)
        assert report["query_io"]["partial_io"] is True
        assert report["parallel_build"]["scaling"]


def serve_load_section(p50=0.05, p95=0.1, p99=0.15, error_rate=0.0):
    return {
        "mode": "closed",
        "requests": 100,
        "errors": int(error_rate * 100),
        "error_rate": error_rate,
        "achieved_rate": 40.0,
        "p50_seconds": p50,
        "p95_seconds": p95,
        "p99_seconds": p99,
        "max_seconds": p99 * 2,
    }


class TestServeLoadGate:
    def test_no_section_gates_nothing(self):
        assert compare.check_serve_load({}, {}, 0.25) == []

    def test_matching_latency_passes(self):
        report = {"serve_load": serve_load_section()}
        baseline = {"serve_load": serve_load_section()}
        assert compare.check_serve_load(report, baseline, 0.25) == []

    def test_quantile_regression_fails(self):
        report = {"serve_load": serve_load_section(p99=0.30)}
        baseline = {"serve_load": serve_load_section(p99=0.15)}
        failures = compare.check_serve_load(report, baseline, 0.25)
        assert len(failures) == 1
        assert "p99_seconds" in failures[0]

    def test_within_band_passes(self):
        report = {"serve_load": serve_load_section(p99=0.17)}
        baseline = {"serve_load": serve_load_section(p99=0.15)}
        assert compare.check_serve_load(report, baseline, 0.25) == []

    def test_error_rate_ceiling_is_absolute(self):
        # the ceiling applies even with no baseline section to compare to
        report = {"serve_load": serve_load_section(error_rate=0.05)}
        failures = compare.check_serve_load(report, {}, 0.25)
        assert len(failures) == 1
        assert "error_rate" in failures[0]

    def test_noise_floor_skips_tiny_baselines(self):
        report = {"serve_load": serve_load_section(p50=0.004)}
        baseline = {"serve_load": serve_load_section(p50=0.001)}
        assert compare.check_serve_load(report, baseline, 0.25) == []

    def test_gate_failure_through_main(self, paths, capsys):
        _, baseline, _ = paths
        base_doc = make_report(BASE_PHASES)
        base_doc["serve_load"] = serve_load_section()
        baseline.write_text(json.dumps(base_doc))
        bad = make_report(BASE_PHASES)
        bad["serve_load"] = serve_load_section(error_rate=0.5)
        assert run_gate(bad, paths) == 1
        assert "error_rate" in capsys.readouterr().out

    def test_history_row_records_load(self, paths):
        doc = make_report(BASE_PHASES)
        doc["serve_load"] = serve_load_section()
        assert run_gate(doc, paths) == 0
        _, _, history = paths
        row = json.loads(history.read_text().splitlines()[-1])
        assert row["serve_load"]["p99_seconds"] == 0.15
        assert row["serve_load"]["error_rate"] == 0.0


def trace_overhead_section(ratio=1.05, off_mean=0.02, on_mean=None):
    if on_mean is None:
        on_mean = off_mean * ratio
    return {
        "requests": 30,
        "off_mean_seconds": off_mean,
        "on_mean_seconds": on_mean,
        "overhead_ratio": on_mean / off_mean if off_mean else float("inf"),
        "traces_kept": 31,
    }


class TestTraceOverheadGate:
    def test_missing_section_gates_nothing(self):
        assert compare.check_trace_overhead({}) == []
        assert compare.check_trace_overhead({"trace_overhead": "junk"}) == []

    def test_small_ratio_passes(self):
        report = {"trace_overhead": trace_overhead_section(ratio=1.2)}
        assert compare.check_trace_overhead(report) == []

    def test_big_ratio_with_big_delta_fails(self):
        report = {"trace_overhead": trace_overhead_section(ratio=2.0, off_mean=0.02)}
        failures = compare.check_trace_overhead(report)
        assert len(failures) == 1
        assert "overhead_ratio" in failures[0]

    def test_big_ratio_on_tiny_baseline_is_noise(self):
        # 3x of a 0.1ms request is a 0.2ms delta: under the absolute floor
        report = {"trace_overhead": trace_overhead_section(ratio=3.0, off_mean=0.0001)}
        assert compare.check_trace_overhead(report) == []

    def test_gate_failure_through_main(self, paths, capsys):
        bad = make_report(BASE_PHASES)
        bad["trace_overhead"] = trace_overhead_section(ratio=2.0, off_mean=0.05)
        assert run_gate(bad, paths) == 1
        assert "trace_overhead" in capsys.readouterr().out

    def test_history_row_records_overhead(self, paths):
        doc = make_report(BASE_PHASES)
        doc["trace_overhead"] = trace_overhead_section(ratio=1.1, off_mean=0.02)
        assert run_gate(doc, paths) == 0
        _, _, history = paths
        row = json.loads(history.read_text().splitlines()[-1])
        assert row["trace_overhead"]["overhead_ratio"] == pytest.approx(1.1)
        assert row["trace_overhead"]["traces_kept"] == 31
