"""Exporter round trips: JSON, Prometheus exposition text, rendering."""

from __future__ import annotations

import json
import re

import pytest

from repro import obs

# One exposition-format sample line: name, optional labels, value.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? "
    r"(NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$"
)


@pytest.fixture()
def populated(registry):
    obs.counter("integration.merges").inc(12)
    obs.gauge("streaming.events.open").set(3)
    h = obs.histogram("kernels.batch_size")
    for value in (1, 7, 40, 9000, 50000):
        h.observe(value)
    with obs.span("query.run"):
        with obs.span("query.integrate"):
            pass
    return registry


class TestJson:
    def test_write_and_load_round_trip(self, populated, tmp_path):
        path = tmp_path / "metrics.json"
        obs.write_snapshot(populated, path)
        assert obs.load_snapshot(path) == json.loads(obs.to_json(populated.snapshot()))

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"not": "a snapshot"}')
        with pytest.raises(ValueError, match="not a metrics snapshot"):
            obs.load_snapshot(path)

    def test_creates_parent_directories(self, populated, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.json"
        obs.write_snapshot(populated, path)
        assert path.exists()


class TestPrometheus:
    def test_every_sample_line_parses(self, populated):
        text = obs.to_prometheus_text(populated.snapshot())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) repro_[a-zA-Z0-9_:]+ ", line)
            else:
                assert _SAMPLE.match(line), f"unparseable sample: {line!r}"

    def test_type_declarations(self, populated):
        text = obs.to_prometheus_text(populated.snapshot())
        assert "# TYPE repro_integration_merges_total counter" in text
        assert "# TYPE repro_streaming_events_open gauge" in text
        assert "# TYPE repro_kernels_batch_size histogram" in text
        assert "# TYPE repro_span_duration_seconds summary" in text

    def test_histogram_buckets_cumulative_and_inf(self, populated):
        text = obs.to_prometheus_text(populated.snapshot())
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'repro_kernels_batch_size_bucket\{le="[^"]+"\} (\d+)', text
            )
        ]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        inf = re.search(
            r'repro_kernels_batch_size_bucket\{le="\+Inf"\} (\d+)', text
        )
        total = re.search(r"repro_kernels_batch_size_count (\d+)", text)
        assert inf and total and inf.group(1) == total.group(1) == "5"

    def test_span_summary_samples(self, populated):
        text = obs.to_prometheus_text(populated.snapshot())
        assert 'repro_span_duration_seconds_count{span="query.run"} 1' in text


class TestChromeTrace:
    def test_snapshot_round_trip(self, populated, tmp_path):
        snap_path = tmp_path / "metrics.json"
        obs.write_snapshot(populated, snap_path)
        trace_path = tmp_path / "deep" / "trace.json"
        obs.write_chrome_trace(obs.load_snapshot(snap_path), trace_path)
        doc = json.loads(trace_path.read_text())
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert names == {"query.run", "query.integrate"}

    def test_document_shape(self, populated):
        doc = obs.to_chrome_trace(populated)
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert meta[0]["args"]["name"] == "repro"

    def test_complete_events_well_formed(self, populated):
        from repro.obs.tracing import TRACE_PID, TRACE_TID

        doc = obs.to_chrome_trace(populated)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["pid"] == TRACE_PID
            assert event["tid"] == TRACE_TID
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1
            assert event["cat"] == event["name"].split(".", 1)[0]

    def test_parent_child_containment(self, registry):
        with obs.span("query.run"):
            with obs.span("query.select"):
                with obs.span("forest.scan"):
                    pass
            with obs.span("query.integrate"):
                pass
        doc = obs.to_chrome_trace(registry)
        by_id = {
            e["args"]["span_id"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert len(by_id) == 4
        nested = 0
        for event in by_id.values():
            parent = by_id.get(event["args"]["parent_id"])
            if parent is None:
                continue
            nested += 1
            assert parent["ts"] <= event["ts"]
            assert (
                event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]
            )
        assert nested == 3

    def test_attrs_become_args(self, registry):
        with obs.span("s", method="indexed") as sp:
            sp.set(merges=4)
        doc = obs.to_chrome_trace(registry)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["method"] == "indexed"
        assert event["args"]["merges"] == 4

    def test_rejects_spanless_source(self):
        with pytest.raises(ValueError, match="no span list"):
            obs.to_chrome_trace({"spans": 3})


class TestRender:
    def test_mentions_every_metric(self, populated):
        out = obs.render_snapshot(populated.snapshot())
        for name in (
            "integration.merges",
            "streaming.events.open",
            "kernels.batch_size",
            "query.run",
            "query.integrate",
        ):
            assert name in out

    def test_empty_snapshot(self):
        out = obs.render_snapshot(obs.MetricsRegistry().snapshot())
        assert out == "(empty snapshot)"


class TestPrometheusRoundTrip:
    """parse_prometheus_text must invert to_prometheus_text exactly."""

    def test_full_registry_round_trip(self, registry):
        obs.counter("serve.requests").inc(7)
        obs.gauge("serve.in_flight").set(2)
        h = obs.histogram("serve.request_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        obs.window("serve.requests").record(7)
        with obs.span("handler"):
            pass
        text = obs.to_prometheus_text(registry.snapshot())
        parsed = obs.parse_prometheus_text(text)
        assert parsed["counters"]["repro_serve_requests_total"] == 7
        assert parsed["gauges"]["repro_serve_in_flight"] == 2
        hist = parsed["histograms"]["repro_serve_request_seconds"]
        assert hist["buckets"] == [0.01, 0.1, 1.0]
        assert hist["counts"] == [1, 1, 1, 1]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(5.555)
        assert set(parsed["rates"]["repro_serve_requests_rate"]) == {"60s", "300s"}
        assert "handler" in parsed["summaries"]["repro_span_duration_seconds"]

    def test_hostile_span_label_values_survive(self, registry):
        hostile = 'a\\b"c\nd{e}=f,g'
        with obs.span(hostile):
            pass
        text = obs.to_prometheus_text(registry.snapshot())
        parsed = obs.parse_prometheus_text(text)
        labels = parsed["summaries"]["repro_span_duration_seconds"]
        assert hostile in labels
        assert labels[hostile]["count"] == 1

    def test_hostile_metric_names_sanitized(self, registry):
        # non-ASCII alnum (isalnum() is true for these) must not leak into
        # prometheus names; neither may spaces or punctuation
        obs.counter("café.requêtes").inc()
        obs.counter("weird name!{}").inc(2)
        text = obs.to_prometheus_text(registry.snapshot())
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert all(c.isascii() and (c.isalnum() or c in "_:") for c in name), name
        parsed = obs.parse_prometheus_text(text)
        assert parsed["counters"]["repro_caf__requ_tes_total"] == 1
        assert parsed["counters"]["repro_weird_name____total"] == 2

    def test_newline_in_help_cannot_inject_lines(self, registry):
        obs.counter("evil\nrepro_fake_total 999").inc()
        text = obs.to_prometheus_text(registry.snapshot())
        # the newline must be escaped inside HELP, not emitted raw
        assert "\nrepro_fake_total 999" not in text.replace("\\n", "")
        parsed = obs.parse_prometheus_text(text)
        assert "repro_fake_total" not in parsed["counters"]

    def test_unknown_sample_rejected(self):
        with pytest.raises(ValueError, match="no preceding"):
            obs.parse_prometheus_text("mystery_metric 5\n")
