"""The pipeline feeds the registry the same numbers its results carry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine
from repro.core.integration import ClusterIntegrator, SimilarityCache
from repro.core.records import RecordBatch
from repro.core.streaming import OnlineEventTracker
from repro.perf import synthetic_micro_clusters


class TestIntegrationParity:
    """Satellite: registry counters mirror the legacy result attributes."""

    @pytest.mark.parametrize("method", ["indexed", "naive"])
    def test_counters_match_result_and_cache(self, registry, method):
        clusters = synthetic_micro_clusters(num_clusters=40, seed=3)
        integrator = ClusterIntegrator(0.5, "avg", method)
        cache = SimilarityCache()
        result = integrator.integrate(clusters, cache=cache)

        assert registry.counter("integration.runs").value == 1
        assert registry.counter("integration.merges").value == result.merges
        assert (
            registry.counter("integration.comparisons").value
            == result.comparisons
        )
        assert (
            registry.counter("integration.fast_rejects").value
            == result.fast_rejects
        )
        assert registry.counter("similarity.cache.hits").value == cache.hits
        assert (
            registry.counter("similarity.cache.misses").value == cache.misses
        )

    def test_fixpoint_span_attrs(self, registry):
        clusters = synthetic_micro_clusters(num_clusters=40, seed=3)
        result = ClusterIntegrator(0.5, "avg", "indexed").integrate(clusters)
        record = next(s for s in registry.spans if s.name == "integrate.fixpoint")
        assert record.attrs["method"] == "indexed"
        assert record.attrs["input_clusters"] == 40
        assert record.attrs["output_clusters"] == len(result.clusters)
        assert record.attrs["merges"] == result.merges

    def test_kernel_counters_recorded(self, registry):
        clusters = synthetic_micro_clusters(num_clusters=40, seed=3)
        ClusterIntegrator(0.5, "avg", "indexed").integrate(clusters)
        assert registry.counter("kernels.batch_calls").value > 0
        assert (
            registry.histogram("kernels.batch_size").count
            == registry.counter("kernels.batch_calls").value
        )


class TestStreamingGauges:
    def test_open_closed_and_merge_counts(self, registry, small_sim):
        chunk = small_sim.simulate_day(0)
        mask = chunk.atypical_mask()
        batch = RecordBatch(
            chunk.sensor_ids[mask],
            chunk.windows[mask],
            chunk.congested[mask].astype(np.float64),
        )
        tracker = OnlineEventTracker(small_sim.network)
        closed = []
        for window in np.unique(batch.windows):
            sel = batch.windows == window
            closed += tracker.push_window(
                int(window),
                RecordBatch(
                    batch.sensor_ids[sel],
                    batch.windows[sel],
                    batch.severities[sel],
                ),
            )
        closed += tracker.flush()

        assert registry.counter("streaming.records").value == len(batch)
        assert registry.counter("streaming.events.closed").value == len(closed)
        assert registry.gauge("streaming.events.open").value == 0
        opened = registry.counter("streaming.events.opened").value
        merged = registry.counter("streaming.events.merged").value
        # every opened event is either merged away or eventually closed
        assert opened == merged + len(closed)


class TestPipelineSpans:
    def test_build_and_query_span_tree(self, registry, small_sim, small_batches):
        engine = AnalysisEngine.from_simulator(small_sim)
        for day in range(2):
            engine.add_day_records(day, small_batches[day])
        result = engine.query(engine.whole_city(), 0, 2, strategy="gui")

        names = {s.name for s in registry.spans}
        assert {
            "extract.day",
            "query.run",
            "query.select",
            "query.redzone",
            "query.integrate",
            "integrate.fixpoint",
        } <= names

        run = next(s for s in registry.spans if s.name == "query.run")
        integrate = next(
            s for s in registry.spans if s.name == "query.integrate"
        )
        assert integrate.parent_id == run.span_id
        assert run.attrs["strategy"] == "gui"
        assert run.attrs["returned"] == len(result.returned)
        assert (
            registry.counter("extract.records").value
            == len(small_batches[0]) + len(small_batches[1])
        )
        assert registry.counter("query.runs").value == 1

    def test_query_counters_match_stats(self, registry, small_sim, small_batches):
        engine = AnalysisEngine.from_simulator(small_sim)
        for day in range(2):
            engine.add_day_records(day, small_batches[day])
        result = engine.query(engine.whole_city(), 0, 2, strategy="gui")
        stats = result.stats
        assert (
            registry.counter("query.input_clusters").value
            == stats.input_clusters
        )
        assert (
            registry.counter("query.pruned_clusters").value
            == stats.pruned_clusters
        )
        assert registry.counter("redzone.zones").value == stats.red_zones


class TestDisabled:
    def test_pipeline_records_nothing(self, small_sim, small_batches):
        reg = obs.MetricsRegistry()
        with obs.activate(reg, collecting=False):
            engine = AnalysisEngine.from_simulator(small_sim)
            engine.add_day_records(0, small_batches[0])
            engine.query(engine.whole_city(), 0, 1, strategy="gui")
        assert reg.is_empty()
