"""Registry arithmetic: counters, gauges, histogram bucketing."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self, registry):
        c = obs.counter("test.hits")
        c.inc()
        c.inc(4)
        assert registry.counter("test.hits").value == 5

    def test_same_name_is_same_object(self, registry):
        assert obs.counter("test.a") is obs.counter("test.a")

    def test_negative_increment_raises(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            obs.counter("test.a").inc(-1)

    def test_kind_conflict_raises(self, registry):
        obs.counter("test.shared")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("test.shared")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("test.shared")


class TestGauge:
    def test_moves_both_ways(self, registry):
        g = obs.gauge("test.open")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert registry.gauge("test.open").value == 7.0


class TestHistogram:
    def test_bucket_boundaries_are_le(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 10.0, 10.5, 1000.0):
            h.observe(value)
        # le semantics: 1.0 lands in the first bucket, 10.0 in the second
        assert h.counts == [2, 1, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(1022.0)

    def test_cumulative_last_equals_count(self):
        h = Histogram("h")
        for value in range(0, 20000, 37):
            h.observe(value)
        assert h.cumulative_counts()[-1] == h.count
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(5.0, 1.0))

    def test_custom_buckets_only_on_first_creation(self, registry):
        first = obs.histogram("test.sizes", buckets=(1.0, 2.0))
        again = obs.histogram("test.sizes", buckets=(9.0,))
        assert again is first
        assert again.buckets == (1.0, 2.0)


class TestRegistry:
    def test_snapshot_round_trip_values(self, registry):
        obs.counter("c").inc(3)
        obs.gauge("g").set(-1.5)
        obs.histogram("h").observe(7)
        snap = registry.snapshot()
        assert snap["version"] == 1
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": -1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 7.0

    def test_is_empty_and_clear(self, registry):
        assert registry.is_empty()
        obs.counter("c").inc()
        with obs.span("s"):
            pass
        assert not registry.is_empty()
        registry.clear()
        assert registry.is_empty()
        assert registry.snapshot()["spans"] == []
