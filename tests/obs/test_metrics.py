"""Registry arithmetic: counters, gauges, histogram bucketing."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self, registry):
        c = obs.counter("test.hits")
        c.inc()
        c.inc(4)
        assert registry.counter("test.hits").value == 5

    def test_same_name_is_same_object(self, registry):
        assert obs.counter("test.a") is obs.counter("test.a")

    def test_negative_increment_raises(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            obs.counter("test.a").inc(-1)

    def test_kind_conflict_raises(self, registry):
        obs.counter("test.shared")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("test.shared")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("test.shared")


class TestGauge:
    def test_moves_both_ways(self, registry):
        g = obs.gauge("test.open")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert registry.gauge("test.open").value == 7.0


class TestHistogram:
    def test_bucket_boundaries_are_le(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 10.0, 10.5, 1000.0):
            h.observe(value)
        # le semantics: 1.0 lands in the first bucket, 10.0 in the second
        assert h.counts == [2, 1, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(1022.0)

    def test_cumulative_last_equals_count(self):
        h = Histogram("h")
        for value in range(0, 20000, 37):
            h.observe(value)
        assert h.cumulative_counts()[-1] == h.count
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(5.0, 1.0))

    def test_custom_buckets_only_on_first_creation(self, registry):
        first = obs.histogram("test.sizes", buckets=(1.0, 2.0))
        again = obs.histogram("test.sizes", buckets=(9.0,))
        assert again is first
        assert again.buckets == (1.0, 2.0)


class TestRegistry:
    def test_snapshot_round_trip_values(self, registry):
        obs.counter("c").inc(3)
        obs.gauge("g").set(-1.5)
        obs.histogram("h").observe(7)
        snap = registry.snapshot()
        assert snap["version"] == 1
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": -1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 7.0

    def test_is_empty_and_clear(self, registry):
        assert registry.is_empty()
        obs.counter("c").inc()
        with obs.span("s"):
            pass
        assert not registry.is_empty()
        registry.clear()
        assert registry.is_empty()
        assert registry.snapshot()["spans"] == []


class TestThreadSafety:
    """Concurrent increments must be exact — no lost updates."""

    def test_counter_exact_under_threads(self, registry):
        import threading

        c = obs.counter("test.threaded")
        workers, per_worker = 8, 2500

        def work():
            for _ in range(per_worker):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == workers * per_worker

    def test_histogram_exact_under_threads(self, registry):
        import threading

        h = obs.histogram("test.threaded_hist", buckets=(1.0, 2.0))
        workers, per_worker = 6, 2000

        def work():
            for i in range(per_worker):
                h.observe(float(i % 3))

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = workers * per_worker
        assert h.count == total
        counts, observed_sum, count = h.state()
        assert sum(counts) == count == total
        assert observed_sum == pytest.approx(sum(i % 3 for i in range(per_worker)) * workers)

    def test_get_or_create_race_returns_one_object(self, registry):
        import threading

        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(obs.counter("test.raced"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


class TestSlidingWindow:
    def test_rate_over_trailing_window(self, registry):
        from repro.obs.metrics import SlidingWindow

        w = SlidingWindow("w", horizon=600.0, resolution=1.0)
        for t in range(0, 30):
            w.record(2.0, now=1000.0 + t)
        assert w.total(30, now=1000.0 + 29) == pytest.approx(60.0)
        assert w.rate(30, now=1000.0 + 29) == pytest.approx(2.0)
        # events older than the window fall out
        assert w.total(10, now=1000.0 + 29) == pytest.approx(20.0)

    def test_old_events_pruned_and_lifetime_kept(self):
        from repro.obs.metrics import SlidingWindow

        w = SlidingWindow("w", horizon=60.0, resolution=1.0)
        w.record(5.0, now=100.0)
        w.record(1.0, now=500.0)  # 400s later: first event far beyond horizon
        assert w.total(60, now=500.0) == pytest.approx(1.0)
        assert w.lifetime_total == pytest.approx(6.0)

    def test_registry_windows_in_snapshot(self, registry):
        w = obs.window("test.events")
        w.record(3.0)
        snap = registry.snapshot()
        assert "test.events" in snap["windows"]
        entry = snap["windows"]["test.events"]
        assert entry["total"] == pytest.approx(3.0)
        assert set(entry["rates"]) == {"60", "300"}

    def test_window_name_does_not_conflict_with_counter(self, registry):
        # windows export as <name>_rate gauges — a counter of the same
        # dotted name is legal and must not trip the kind check
        obs.counter("test.shared_name").inc()
        obs.window("test.shared_name").record()
        snap = registry.snapshot()
        assert snap["counters"]["test.shared_name"] == 1
        assert "test.shared_name" in snap["windows"]


class TestSpanLimit:
    def test_bounded_spans_count_evictions(self):
        reg = MetricsRegistry(span_limit=5)
        with obs.activate(reg):
            for i in range(12):
                with obs.span(f"s{i}"):
                    pass
        assert len(reg.spans) == 5
        assert reg.spans_dropped == 7
        assert reg.snapshot()["spans_dropped"] == 7
        # aggregates still see every span
        assert sum(a["count"] for a in reg.span_summary().values()) == 12

    def test_unbounded_by_default(self):
        reg = MetricsRegistry()
        with obs.activate(reg):
            for i in range(12):
                with obs.span("s"):
                    pass
        assert len(reg.spans) == 12
        assert reg.spans_dropped == 0


class TestCorrelation:
    def test_correlation_id_stamped_on_spans(self, registry):
        with obs.correlation("req-42"):
            with obs.span("inner"):
                pass
        with obs.span("outside"):
            pass
        by_name = {s.name: s for s in registry.spans}
        assert by_name["inner"].attrs["request_id"] == "req-42"
        assert "request_id" not in by_name["outside"].attrs

    def test_correlation_nests_and_restores(self, registry):
        assert obs.correlation_id() is None
        with obs.correlation("outer"):
            assert obs.correlation_id() == "outer"
            with obs.correlation("inner"):
                assert obs.correlation_id() == "inner"
            assert obs.correlation_id() == "outer"
        assert obs.correlation_id() is None

    def test_explicit_request_id_attr_wins(self, registry):
        with obs.correlation("req-1"):
            with obs.span("s", request_id="custom"):
                pass
        assert registry.spans[0].attrs["request_id"] == "custom"
