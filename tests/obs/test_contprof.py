"""Continuous profiler: sampling, windows, segments, exports."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.contprof import (
    MAX_STACK_DEPTH,
    PROF_SEGMENT_PREFIX,
    ContinuousProfiler,
    ProfileWindow,
    classify_sample,
    collapse_text,
    diff_frames,
    format_frame_delta,
    frame_label,
    load_prof_segments,
    merge_windows,
    speedscope_doc,
)


class FakeCode:
    def __init__(self, name: str):
        self.co_name = name


class FakeFrame:
    """Just enough of a frame for the collapse/classify helpers."""

    def __init__(self, module: str, name: str, back=None):
        self.f_globals = {"__name__": module}
        self.f_code = FakeCode(name)
        self.f_back = back


def stack(*frames):
    """Build a frame chain from (module, name) pairs, root first."""
    frame = None
    for module, name in frames:
        frame = FakeFrame(module, name, back=frame)
    return frame  # the leaf


def window_with(stacks, window_id="pw-000001-abc"):
    window = ProfileWindow(window_id, 0.0, 10.0)
    for collapsed, (run, wait) in stacks.items():
        window.stacks[collapsed] = [run, wait]
        window.samples += run + wait
    return window


class TestClassify:
    def test_lock_leaf_is_waiting(self):
        frame = stack(("app", "main"), ("threading", "wait"))
        assert classify_sample(frame) == "waiting"

    def test_plain_leaf_is_running(self):
        frame = stack(("app", "main"), ("app", "crunch"))
        assert classify_sample(frame) == "running"

    def test_blocking_get_only_in_blocking_modules(self):
        assert classify_sample(stack(("queue", "get"))) == "waiting"
        assert classify_sample(stack(("socket", "recv"))) == "waiting"
        # a user function named get is real work
        assert classify_sample(stack(("app.store", "get"))) == "running"

    def test_frame_label_sanitizes_separators(self):
        frame = FakeFrame("weird mod", "fn;x")
        label = frame_label(frame)
        assert ";" not in label and " " not in label


class TestCollapse:
    def test_stack_is_root_first(self):
        profiler = ContinuousProfiler(hz=10, window_seconds=60)
        leaf = stack(("app", "main"), ("app", "inner"))
        profiler.sample_once(now=100.0, frames={1: leaf})
        (collapsed,) = profiler.merged().stacks
        assert collapsed == "app.main;app.inner"

    def test_deep_recursion_truncated_keeping_roots(self):
        frames = [("app", "main")] + [("app", f"f{i}") for i in range(200)]
        profiler = ContinuousProfiler(hz=10, window_seconds=60)
        profiler.sample_once(now=100.0, frames={1: stack(*frames)})
        (collapsed,) = profiler.merged().stacks
        labels = collapsed.split(";")
        assert len(labels) == MAX_STACK_DEPTH
        assert labels[0] == "app.main"
        assert labels[-1] == "..."


class TestSampling:
    def test_busy_loop_dominates_collapsed_output(self):
        """A real hot thread must own the window, not the test harness."""
        stop = threading.Event()

        def _hot_spin():
            while not stop.is_set():
                sum(i for i in range(100))

        thread = threading.Thread(target=_hot_spin, daemon=True)
        thread.start()
        profiler = ContinuousProfiler(hz=500, window_seconds=30)
        try:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                profiler.sample_once()
                if profiler.merged().samples >= 50:
                    break
                time.sleep(0.002)
        finally:
            stop.set()
            thread.join()
        merged = profiler.merged()
        hot = [s for s in merged.stacks if "_hot_spin" in s]
        assert hot, f"hot frame missing from {sorted(merged.stacks)}"
        hot_samples = sum(sum(merged.stacks[s]) for s in hot)
        assert hot_samples >= merged.samples * 0.5
        assert "_hot_spin" in collapse_text(merged)

    def test_excludes_own_thread(self):
        profiler = ContinuousProfiler(hz=10, window_seconds=60)
        own = threading.get_ident()
        folded = profiler.sample_once(
            now=1.0, frames={own: stack(("me", "sampling"))}
        )
        assert folded == 0
        assert profiler.merged().total() == 0

    def test_thread_churn_mid_window(self):
        """Threads starting and dying between ticks fold cleanly."""
        profiler = ContinuousProfiler(hz=10, window_seconds=60)
        a = stack(("app", "alpha"))
        b = stack(("app", "beta"))
        profiler.sample_once(now=1.0, frames={101: a})
        profiler.sample_once(now=1.1, frames={101: a, 202: b})  # 202 starts
        profiler.sample_once(now=1.2, frames={202: b})  # 101 died
        profiler.sample_once(now=1.3, frames={})  # everyone gone
        merged = profiler.merged()
        assert merged.samples == 4
        assert len(merged.threads) == 2
        assert merged.stacks["app.alpha"] == [2, 0]
        assert merged.stacks["app.beta"] == [2, 0]

    def test_windows_roll_at_boundary(self):
        profiler = ContinuousProfiler(hz=10, window_seconds=10)
        frame = stack(("app", "work"))
        profiler.sample_once(now=100.0, frames={1: frame})
        profiler.sample_once(now=111.0, frames={1: frame})  # past the end
        windows = profiler.windows()
        assert len(windows) == 2
        assert profiler.windows_folded == 1
        assert windows[0].id != windows[1].id

    def test_daemon_lifecycle_and_shutdown_folds_partial_window(self, tmp_path):
        profiler = ContinuousProfiler(
            hz=200, window_seconds=60, segment_dir=tmp_path
        )
        profiler.start()
        assert profiler.running()
        deadline = time.time() + 5.0
        while time.time() < deadline and profiler.merged().samples < 5:
            time.sleep(0.01)
        assert profiler.stop() is True
        assert not profiler.running()
        # the partial window was folded and persisted on the way out
        assert profiler.windows_folded >= 1
        replayed = load_prof_segments(tmp_path)
        assert sum(w.samples for w in replayed) >= 5

    def test_stop_without_start_is_safe(self):
        profiler = ContinuousProfiler()
        assert profiler.stop() is True

    def test_self_reports_metrics(self, registry):
        profiler = ContinuousProfiler(hz=10, window_seconds=10)
        frame = stack(("app", "work"))
        profiler.sample_once(now=100.0, frames={1: frame})
        profiler.sample_once(now=111.0, frames={1: frame})
        snapshot = registry.snapshot()
        assert snapshot["counters"]["prof.samples"] == 2
        assert snapshot["counters"]["prof.windows"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ContinuousProfiler(hz=0)
        with pytest.raises(ValueError):
            ContinuousProfiler(window_seconds=-1)


class TestPinning:
    def test_pin_survives_ring_eviction(self):
        profiler = ContinuousProfiler(hz=10, window_seconds=1, keep_windows=2)
        frame = stack(("app", "work"))
        profiler.sample_once(now=0.0, frames={1: frame})
        pinned_id = profiler.pin_current()
        assert pinned_id is not None
        # roll enough windows to evict the pinned one from the ring
        for i in range(1, 6):
            profiler.sample_once(now=float(i * 10), frames={1: frame})
        assert all(w.id != pinned_id for w in profiler.windows())
        window = profiler.window(pinned_id)
        assert window is not None and window.pinned

    def test_pin_before_first_tick_returns_none(self):
        assert ContinuousProfiler().pin_current() is None

    def test_pinned_map_bounded(self):
        profiler = ContinuousProfiler(
            hz=10, window_seconds=1, keep_windows=1, max_pinned=2
        )
        frame = stack(("app", "work"))
        ids = []
        for i in range(4):
            profiler.sample_once(now=float(i * 10), frames={1: frame})
            ids.append(profiler.pin_current())
        profiler.sample_once(now=100.0, frames={1: frame})
        kept = [i for i in ids if profiler.window(i) is not None]
        assert len(kept) <= 3  # 2 pinned + possibly the ring survivor

    def test_merged_unknown_id_raises(self):
        with pytest.raises(KeyError):
            ContinuousProfiler().merged("pw-999999-nope")


class TestSegments:
    def _fill(self, profiler, windows=3, start=0.0):
        frame = stack(("app", "work"))
        for i in range(windows + 1):
            profiler.sample_once(
                now=start + i * 10.0, frames={1: frame, 2: frame}
            )

    def test_rotation_and_retention(self, tmp_path):
        profiler = ContinuousProfiler(
            hz=10,
            window_seconds=1,
            segment_dir=tmp_path,
            max_segment_bytes=200,
            max_segments=2,
        )
        self._fill(profiler, windows=20)
        segments = profiler.segment_paths()
        assert 1 <= len(segments) <= 2
        assert profiler.rotations > 0
        assert all(p.name.startswith(PROF_SEGMENT_PREFIX) for p in segments)

    def test_replay_round_trips(self, tmp_path):
        profiler = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=tmp_path
        )
        self._fill(profiler, windows=3)
        replayed = load_prof_segments(tmp_path)
        assert [w.id for w in replayed] == [
            w.id for w in profiler.windows()[:3]
        ]
        assert replayed[0].stacks == {"app.work": [2, 0]}

    def test_replay_skips_torn_line(self, tmp_path):
        profiler = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=tmp_path
        )
        self._fill(profiler, windows=2)
        (segment,) = profiler.segment_paths()
        with segment.open("a") as handle:
            handle.write('{"id": "pw-9999')  # torn mid-write
        assert len(load_prof_segments(tmp_path)) == 2

    def test_replay_dedups_duplicate_windows(self, tmp_path):
        profiler = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=tmp_path
        )
        self._fill(profiler, windows=2)
        (segment,) = profiler.segment_paths()
        # simulate the same segment replayed twice after a crash-restart
        (tmp_path / f"{PROF_SEGMENT_PREFIX}000007.ndjson").write_text(
            segment.read_text()
        )
        replayed = load_prof_segments(tmp_path)
        assert len(replayed) == 2
        assert len({w.id for w in replayed}) == 2

    def test_index_resumes_after_restart(self, tmp_path):
        first = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=tmp_path
        )
        self._fill(first, windows=2)
        second = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=tmp_path
        )
        self._fill(second, windows=2, start=1000.0)
        replayed = load_prof_segments(tmp_path)
        assert len(replayed) == 4
        assert len({w.id for w in replayed}) == 4  # entropy keeps ids unique

    def test_load_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_prof_segments(tmp_path / "missing")
        with pytest.raises(ValueError):
            load_prof_segments(tmp_path)

    def test_malformed_row_raises_from_dict(self):
        with pytest.raises(ValueError, match="malformed"):
            ProfileWindow.from_dict({"id": "x", "start": 0.0})


class TestExports:
    def test_collapse_text_is_flamegraph_format(self):
        window = window_with(
            {"app.main;app.inner": [3, 1], "app.main;app.idle": [0, 2]}
        )
        text = collapse_text(window)
        assert "app.main;app.inner 4" in text.splitlines()
        assert "app.main;app.idle 2" in text.splitlines()
        assert text.endswith("\n")

    def test_speedscope_doc_shape(self):
        window = window_with({"app.main;app.inner": [3, 1]})
        doc = json.loads(json.dumps(speedscope_doc(window)))
        assert doc["$schema"].endswith("file-format-schema.json")
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert names == ["app.main", "app.inner"]
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["samples"] == [[0, 1]]
        assert profile["weights"] == [4]
        assert profile["endValue"] == 4

    def test_merge_windows_sums_counts(self):
        a = window_with({"app.x": [1, 0]}, "pw-000001-a")
        b = window_with({"app.x": [2, 1], "app.y": [1, 0]}, "pw-000002-a")
        merged = merge_windows([a, b])
        assert merged.stacks == {"app.x": [3, 1], "app.y": [1, 0]}
        assert merged.samples == a.samples + b.samples

    def test_merge_empty_is_empty(self):
        assert merge_windows([]).total() == 0

    def test_top_frames_rank_by_self_samples(self):
        window = window_with(
            {
                "app.main;app.hot": [8, 0],
                "app.main;app.cold": [1, 0],
                "app.other;app.hot": [2, 0],
            }
        )
        top = window.top_frames(2)
        assert top[0] == {
            "frame": "app.hot", "running": 10, "waiting": 0, "total": 10
        }

    def test_diff_frames_finds_the_regression(self):
        before = window_with({"app.main;app.ok": [9, 0], "app.main;app.slow": [1, 0]})
        after = window_with({"app.main;app.ok": [2, 0], "app.main;app.slow": [8, 0]})
        rows = diff_frames(before, after)
        by_frame = {row["frame"]: row for row in rows}
        assert by_frame["app.slow"]["delta"] == pytest.approx(0.7)
        assert by_frame["app.ok"]["delta"] == pytest.approx(-0.7)
        # both moved by the same share, so they are the top two rows
        assert {rows[0]["frame"], rows[1]["frame"]} == {"app.ok", "app.slow"}
        text = format_frame_delta(rows, limit=2)
        assert "app.slow" in text and "delta" in text

    def test_profile_doc_summary_shape(self):
        profiler = ContinuousProfiler(hz=10, window_seconds=60)
        profiler.sample_once(now=1.0, frames={1: stack(("app", "work"))})
        doc = profiler.profile_doc()
        assert doc["enabled"] is True
        assert doc["total"] == 1
        assert doc["top"][0]["frame"] == "app.work"
        assert doc["current"]["samples"] == 1
