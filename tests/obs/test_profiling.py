"""Profiling hooks: the cProfile / tracemalloc phase wrappers."""

from __future__ import annotations

import pstats

import pytest

from repro import obs
from repro.obs.profiling import PROFILERS, profile_phase


def _workload() -> int:
    chunks = [b"x" * 256 for _ in range(200)]
    return sum(i * i for i in range(20_000)) + len(chunks)


class TestCProfile:
    def test_report_top_and_artifact(self, registry, tmp_path):
        out = tmp_path / "phase.prof"
        with profile_phase("cprofile", out_path=out, top_n=5) as report:
            _workload()
        assert report.kind == "cprofile"
        assert 0 < len(report.top) <= 5
        row = report.top[0]
        assert {
            "function", "calls", "total_seconds", "cumulative_seconds"
        } <= set(row)
        assert report.artifact == out and out.exists()
        # the artifact must be loadable by the stdlib toolchain
        assert pstats.Stats(str(out)).total_calls > 0

    def test_top_sorted_by_cumulative_time(self, registry):
        with profile_phase("cprofile", top_n=10) as report:
            _workload()
        cumulative = [row["cumulative_seconds"] for row in report.top]
        assert cumulative == sorted(cumulative, reverse=True)

    def test_span_attributes(self, registry):
        with profile_phase("cprofile") as report:
            _workload()
        record = next(
            s for s in registry.spans if s.name == "profile.cprofile"
        )
        assert record.attrs["hotspots"]
        assert record.attrs["rss_delta_bytes"] == report.rss_delta_bytes

    def test_render_lists_functions(self, registry):
        with profile_phase("cprofile", top_n=3) as report:
            _workload()
        text = report.render()
        assert text.startswith("profile (cprofile)")
        assert "cum" in text

    def test_populated_with_observability_disabled(self):
        assert not obs.enabled()
        with profile_phase("cprofile") as report:
            _workload()
        assert report.top

    def test_to_dict_round_trips_through_json(self, registry, tmp_path):
        import json

        with profile_phase("cprofile", out_path=tmp_path / "p.prof") as report:
            _workload()
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["kind"] == "cprofile"
        assert doc["artifact"].endswith("p.prof")


class TestTracemalloc:
    def test_peak_sites_and_artifact(self, registry, tmp_path):
        out = tmp_path / "phase.heap.txt"
        with profile_phase("tracemalloc", out_path=out, top_n=3) as report:
            _workload()
        assert report.kind == "tracemalloc"
        assert report.peak_traced_bytes > 0
        assert len(report.top) <= 3
        assert out.exists() and "traced heap peak" in out.read_text()
        record = next(
            s for s in registry.spans if s.name == "profile.tracemalloc"
        )
        assert record.attrs["peak_traced_bytes"] == report.peak_traced_bytes

    def test_site_rows_have_diffs(self, registry):
        with profile_phase("tracemalloc", top_n=5) as report:
            _workload()
        assert report.top
        assert {"site", "size_diff_bytes", "count_diff"} <= set(report.top[0])

    def test_render_mentions_peak(self, registry):
        with profile_phase("tracemalloc") as report:
            _workload()
        text = report.render()
        assert text.startswith("profile (tracemalloc)")
        assert "traced heap peak" in text

    def test_stops_tracing_when_phase_raises(self, registry):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        with pytest.raises(RuntimeError, match="boom"):
            with profile_phase("tracemalloc"):
                raise RuntimeError("boom")
        assert not tracemalloc.is_tracing()

    def test_stops_tracing_when_report_assembly_raises(
        self, registry, monkeypatch
    ):
        import tracemalloc

        real_snapshot = tracemalloc.take_snapshot
        calls = {"n": 0}

        def flaky_snapshot():
            calls["n"] += 1
            if calls["n"] >= 2:  # the "after" snapshot at phase exit
                raise MemoryError("snapshot too large")
            return real_snapshot()

        monkeypatch.setattr(tracemalloc, "take_snapshot", flaky_snapshot)
        assert not tracemalloc.is_tracing()
        with pytest.raises(MemoryError):
            with profile_phase("tracemalloc"):
                _workload()
        assert not tracemalloc.is_tracing()


class TestDispatch:
    def test_registered_profilers(self):
        assert PROFILERS == ("cprofile", "tracemalloc")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown profiler"):
            profile_phase("perf")
