"""Tests for SLO declarations, burn-rate math, and alert states."""

from __future__ import annotations

import json

import pytest

from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SLO,
    SLOConfig,
    SLOEngine,
    SLOError,
    check_doc,
    evaluate_snapshot,
    load_slo_config,
    parse_simple_yaml,
    worst_state,
)
from repro.obs.tsdb import TimeSeriesStore

T0 = 1_000_000.0

REFERENCE_YAML = """\
# production objectives for repro serve
slos:
  - name: availability
    kind: availability
    objective: 0.99
  - name: fast-queries
    kind: latency
    objective: 0.95
    threshold: 0.5
  - name: error-budget
    kind: error_rate
    threshold: 0.01
min_requests: 5
windows:
  fast:
    factor: 14.4
  slow:
    factor: 6.0
"""


class TestSimpleYaml:
    def test_reference_config_shape(self):
        doc = parse_simple_yaml(REFERENCE_YAML)
        assert isinstance(doc, dict)
        assert [s["name"] for s in doc["slos"]] == [
            "availability",
            "fast-queries",
            "error-budget",
        ]
        assert doc["slos"][1]["threshold"] == 0.5
        assert doc["min_requests"] == 5
        assert doc["windows"]["fast"]["factor"] == 14.4

    def test_matches_pyyaml_when_available(self):
        yaml = pytest.importorskip("yaml")
        assert parse_simple_yaml(REFERENCE_YAML) == yaml.safe_load(
            REFERENCE_YAML
        )

    def test_scalar_types(self):
        doc = parse_simple_yaml(
            'a: true\nb: null\nc: 3\nd: 0.5\ne: "quoted # text"\nf: bare\n'
        )
        assert doc == {
            "a": True,
            "b": None,
            "c": 3,
            "d": 0.5,
            "e": "quoted # text",
            "f": "bare",
        }

    def test_scalar_list(self):
        assert parse_simple_yaml("items:\n  - 1\n  - two\n") == {
            "items": [1, "two"]
        }

    def test_rejects_tabs(self):
        with pytest.raises(SLOError):
            parse_simple_yaml("a:\n\tb: 1\n")

    def test_rejects_inconsistent_indentation(self):
        with pytest.raises(SLOError):
            parse_simple_yaml("a:\n  b: 1\n   c: 2\n")


class TestLoadConfig:
    def _write(self, tmp_path, text, name="slo.yaml"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_loads_reference_yaml(self, tmp_path):
        config = load_slo_config(self._write(tmp_path, REFERENCE_YAML))
        assert [s.kind for s in config.slos] == [
            "availability",
            "latency",
            "error_rate",
        ]
        assert config.slos[1].threshold_seconds == 0.5
        # error_rate threshold becomes the budget
        assert config.slos[2].budget == pytest.approx(0.01)
        assert config.min_requests == 5.0
        # PAGE-state windows sort first
        assert [w.state for w in config.windows] == ["PAGE", "WARN"]

    def test_loads_json(self, tmp_path):
        path = self._write(
            tmp_path,
            json.dumps({"slos": [{"name": "a", "objective": 0.999}]}),
            name="slo.json",
        )
        config = load_slo_config(path)
        assert config.slos[0].budget == pytest.approx(0.001)
        assert config.windows == DEFAULT_WINDOWS

    def test_missing_file(self, tmp_path):
        with pytest.raises(SLOError, match="no such SLO config"):
            load_slo_config(tmp_path / "nope.yaml")

    def test_needs_slos_list(self, tmp_path):
        with pytest.raises(SLOError, match="non-empty 'slos' list"):
            load_slo_config(self._write(tmp_path, "slos: []\n"))

    def test_unknown_kind(self, tmp_path):
        text = "slos:\n  - name: x\n    kind: throughput\n"
        with pytest.raises(SLOError, match="unknown kind"):
            load_slo_config(self._write(tmp_path, text))

    def test_latency_needs_threshold(self, tmp_path):
        text = "slos:\n  - name: x\n    kind: latency\n"
        with pytest.raises(SLOError, match="need a threshold"):
            load_slo_config(self._write(tmp_path, text))

    def test_objective_out_of_range(self, tmp_path):
        text = "slos:\n  - name: x\n    objective: 1.5\n"
        with pytest.raises(SLOError, match="objective must be in"):
            load_slo_config(self._write(tmp_path, text))

    def test_duplicate_names(self, tmp_path):
        text = "slos:\n  - name: x\n  - name: x\n"
        with pytest.raises(SLOError, match="duplicate SLO name"):
            load_slo_config(self._write(tmp_path, text))

    def test_bad_window_spec(self, tmp_path):
        text = (
            REFERENCE_YAML
            + "  broken:\n    short: 60\n    long: 30\n    factor: 2\n"
        )
        with pytest.raises(SLOError, match="0 < short < long"):
            load_slo_config(self._write(tmp_path, text))


def test_worst_state():
    assert worst_state([]) == "OK"
    assert worst_state(["OK", "WARN"]) == "WARN"
    assert worst_state(["WARN", "PAGE", "OK"]) == "PAGE"
    with pytest.raises(SLOError):
        worst_state(["BROKEN"])


def _feed(store, minutes, requests_per_min, errors_per_min, start, req=0.0, err=0.0):
    """Append one sample per minute; returns the running totals."""
    for m in range(minutes):
        req += requests_per_min
        err += errors_per_min
        store.ingest(
            {
                "t": start + (m + 1) * 60.0,
                "series": {"serve.requests": req, "serve.errors": err},
                "kinds": {"serve.requests": "counter", "serve.errors": "counter"},
            }
        )
    return req, err


class TestBurnRateTransition:
    """The acceptance scenario: a synthetic series walks OK → WARN → PAGE."""

    def _engine(self):
        config = SLOConfig(
            slos=(SLO(name="availability", kind="availability", objective=0.99),)
        )
        return SLOEngine(config, TimeSeriesStore())

    def test_ok_then_warn_then_page(self):
        engine = self._engine()
        store = engine.store
        # 2h of clean traffic at 60 req/min
        req, err = _feed(store, 120, 60.0, 0.0, T0)
        report = engine.evaluate(now=T0 + 2 * 3600)
        assert report.state == "OK"
        assert not any(
            w.triggered for s in report.statuses for w in s.windows
        )

        # 4h at a 10% error rate: burn 10x trips the slow (6x) pair but
        # stays under the fast 14.4x factor -> WARN, not PAGE
        req, err = _feed(store, 240, 60.0, 6.0, T0 + 2 * 3600, req, err)
        report = engine.evaluate(now=T0 + 6 * 3600)
        assert report.state == "WARN"
        status = report.statuses[0]
        by_name = {w.name: w for w in status.windows}
        assert by_name["slow"].triggered
        assert not by_name["fast"].triggered
        assert by_name["slow"].short_burn == pytest.approx(10.0, rel=0.05)
        assert by_name["slow"].long_burn >= 6.0

        # 1h at 20% errors: both fast windows burn 20x >= 14.4 -> PAGE
        _feed(store, 60, 60.0, 12.0, T0 + 6 * 3600, req, err)
        report = engine.evaluate(now=T0 + 7 * 3600)
        assert report.state == "PAGE"
        by_name = {
            w.name: w for w in report.statuses[0].windows
        }
        assert by_name["fast"].triggered
        assert by_name["fast"].short_burn == pytest.approx(20.0, rel=0.05)
        assert by_name["fast"].long_burn >= 14.4

    def test_quiet_service_never_fires(self):
        # min_requests guards the zero-traffic case: no samples, no alert
        engine = self._engine()
        report = engine.evaluate(now=T0)
        assert report.state == "OK"

    def test_report_document_shape(self):
        engine = self._engine()
        _feed(engine.store, 10, 60.0, 0.0, T0)
        doc = engine.evaluate(now=T0 + 600).to_dict()
        assert doc["version"] == 1
        assert doc["state"] == "OK"
        assert doc["source"] == "tsdb"
        slo_doc = doc["slos"][0]
        assert slo_doc["name"] == "availability"
        assert slo_doc["budget"] == pytest.approx(0.01)
        assert {w["name"] for w in slo_doc["windows"]} == {"fast", "slow"}
        json.dumps(doc)


class TestLatencySLO:
    def _engine(self, threshold=0.5):
        config = SLOConfig(
            slos=(
                SLO(
                    name="fast",
                    kind="latency",
                    objective=0.9,
                    threshold_seconds=threshold,
                ),
            ),
            min_requests=1.0,
        )
        return SLOEngine(config, TimeSeriesStore())

    def _feed_latency(self, store, minutes, per_min, fast_per_min, start):
        count = fast = 0.0
        for m in range(minutes):
            count += per_min
            fast += fast_per_min
            store.ingest(
                {
                    "t": start + (m + 1) * 60.0,
                    "series": {
                        "serve.request_seconds:count": count,
                        "serve.request_seconds:le:0.25": fast * 0.5,
                        "serve.request_seconds:le:0.5": fast,
                        "serve.request_seconds:le:1": count,
                    },
                    "kinds": {
                        "serve.request_seconds:count": "counter",
                        "serve.request_seconds:le:0.25": "counter",
                        "serve.request_seconds:le:0.5": "counter",
                        "serve.request_seconds:le:1": "counter",
                    },
                }
            )

    def test_good_series_picks_covering_bound(self):
        engine = self._engine(threshold=0.4)
        self._feed_latency(engine.store, 5, 60.0, 60.0, T0)
        # smallest bound >= 0.4 is 0.5
        assert engine._latency_good_series(engine.config.slos[0]).endswith(
            ":le:0.5"
        )

    def test_no_covering_bound_counts_all_good(self):
        engine = self._engine(threshold=5.0)
        self._feed_latency(engine.store, 5, 60.0, 0.0, T0)
        assert engine._latency_good_series(engine.config.slos[0]) is None
        report = engine.evaluate(now=T0 + 300)
        assert report.state == "OK"

    def test_slow_requests_burn_the_budget(self):
        engine = self._engine(threshold=0.5)
        # 50% of requests miss the 0.5s bound against a 10% budget: burn
        # 5x everywhere -- not enough for the default windows
        self._feed_latency(engine.store, 10, 60.0, 30.0, T0)
        report = engine.evaluate(now=T0 + 600)
        assert report.state == "OK"
        fast = report.statuses[0].windows[0]
        assert fast.short_burn == pytest.approx(5.0, rel=0.05)
        # 100% misses: burn 10x short AND long < 14.4 -> still no PAGE,
        # but fraction is pinned
        engine2 = self._engine(threshold=0.5)
        self._feed_latency(engine2.store, 10, 60.0, 0.0, T0)
        report2 = engine2.evaluate(now=T0 + 600)
        fast2 = report2.statuses[0].windows[0]
        assert fast2.short_bad_fraction == pytest.approx(1.0)
        assert fast2.short_burn == pytest.approx(10.0)


class TestEvaluateSnapshot:
    def _config(self, **kwargs):
        defaults = dict(name="avail", kind="availability", objective=0.99)
        defaults.update(kwargs)
        return SLOConfig(slos=(SLO(**defaults),))

    def test_lifetime_availability(self):
        snapshot = {
            "counters": {"serve.requests": 1000.0, "serve.errors": 200.0}
        }
        report = evaluate_snapshot(self._config(), snapshot, now=T0)
        # 20% bad against a 1% budget: burn 20x fires both window pairs
        assert report.state == "PAGE"
        assert report.source == "lifetime"
        window = report.statuses[0].windows[0]
        assert window.short_burn == pytest.approx(20.0)

    def test_lifetime_clean(self):
        snapshot = {"counters": {"serve.requests": 1000.0, "serve.errors": 0.0}}
        assert evaluate_snapshot(self._config(), snapshot, now=T0).state == "OK"

    def test_lifetime_latency_histogram(self):
        config = self._config(
            name="lat", kind="latency", objective=0.95, threshold_seconds=0.5
        )
        snapshot = {
            "counters": {},
            "histograms": {
                "serve.request_seconds": {
                    "count": 100,
                    "sum": 90.0,
                    "buckets": [0.5, 1.0],
                    "counts": [10, 80],  # +10 overflow
                }
            },
        }
        report = evaluate_snapshot(config, snapshot, now=T0)
        window = report.statuses[0].windows[0]
        # 10 of 100 under 0.5s -> 90% bad against a 5% budget: burn 18x
        assert window.short_bad_fraction == pytest.approx(0.9)
        assert window.short_burn == pytest.approx(18.0)
        assert report.state == "PAGE"

    def test_missing_series_is_quiet(self):
        assert evaluate_snapshot(self._config(), {}, now=T0).state == "OK"


class TestCheckDoc:
    def _doc(self, state):
        return {
            "version": 1,
            "state": state,
            "source": "tsdb",
            "slos": [
                {
                    "name": "avail",
                    "state": state,
                    "description": "99.00% of requests succeed",
                    "windows": [
                        {"name": "fast", "short_burn": 2.0, "long_burn": 1.0}
                    ],
                }
            ],
        }

    def test_ok_exits_zero(self):
        code, lines = check_doc(self._doc("OK"))
        assert code == 0
        assert lines[-1].startswith("overall: OK")

    def test_warn_exits_zero(self):
        code, _ = check_doc(self._doc("WARN"))
        assert code == 0

    def test_page_exits_one(self):
        code, lines = check_doc(self._doc("PAGE"))
        assert code == 1
        assert "burn 2.0x" in lines[0] or "fast=2.0x" in lines[0]

    def test_malformed_doc_raises(self):
        with pytest.raises(SLOError):
            check_doc({"hello": "world"})
        with pytest.raises(SLOError):
            check_doc({"state": "MAYBE", "slos": []})


def test_describe_lines():
    lat = SLO(name="l", kind="latency", objective=0.95, threshold_seconds=0.5)
    err = SLO(name="e", kind="error_rate", objective=0.99)
    avail = SLO(name="a", kind="availability", objective=0.999)
    assert "under 0.5s" in lat.describe()
    assert "below 1.00%" in err.describe()
    assert "99.90%" in avail.describe()


class TestProfileExemplar:
    """The PAGE -> flamegraph link: pin on transition, hold, forget."""

    def _engine_with_profiler(self):
        from repro.obs.contprof import ContinuousProfiler

        config = SLOConfig(
            slos=(SLO(name="availability", kind="availability", objective=0.99),)
        )
        profiler = ContinuousProfiler(hz=10, window_seconds=3600)

        class _Frame:
            f_back = None
            f_globals = {"__name__": "app"}
            f_code = type("C", (), {"co_name": "work"})()

        profiler.sample_once(now=T0, frames={1: _Frame()})
        return SLOEngine(config, TimeSeriesStore(), profiler=profiler), profiler

    def test_pinned_on_transition_and_held_while_alerting(self):
        engine, profiler = self._engine_with_profiler()
        _feed(engine.store, 60, 60.0, 12.0, T0)  # 20% errors -> PAGE
        report = engine.evaluate(now=T0 + 3600)
        status = report.statuses[0]
        assert status.state == "PAGE"
        pinned_id = status.exemplar_profile_id
        assert pinned_id == profiler.current_window_id()
        assert status.to_dict()["exemplar_profile_id"] == pinned_id

        # still alerting: the same exemplar, not a new pin per evaluation
        report = engine.evaluate(now=T0 + 3600)
        assert report.statuses[0].exemplar_profile_id == pinned_id

    def test_cleared_on_recovery(self):
        engine, profiler = self._engine_with_profiler()
        req, err = _feed(engine.store, 60, 60.0, 12.0, T0)
        report = engine.evaluate(now=T0 + 3600)
        assert report.statuses[0].exemplar_profile_id is not None
        # 13h of clean traffic drains every burn window back to OK
        _feed(engine.store, 13 * 60, 60.0, 0.0, T0 + 3600, req, err)
        report = engine.evaluate(now=T0 + 14 * 3600)
        assert report.statuses[0].state == "OK"
        assert report.statuses[0].exemplar_profile_id is None
        # the next incident pins afresh rather than reusing the stale id
        assert engine._profile_exemplars == {}

    def test_ok_without_profiler_stays_none(self):
        config = SLOConfig(
            slos=(SLO(name="availability", kind="availability", objective=0.99),)
        )
        engine = SLOEngine(config, TimeSeriesStore())
        _feed(engine.store, 60, 60.0, 12.0, T0)
        report = engine.evaluate(now=T0 + 3600)
        assert report.statuses[0].state == "PAGE"
        assert report.statuses[0].exemplar_profile_id is None

    def test_check_doc_renders_profile_id(self):
        doc = {
            "state": "PAGE",
            "slos": [
                {
                    "name": "avail",
                    "state": "PAGE",
                    "description": "99.00% of requests succeed",
                    "windows": [
                        {"name": "fast", "short_burn": 20.0, "long_burn": 15.0}
                    ],
                    "exemplar_profile_id": "pw-000042-abcdef",
                }
            ],
        }
        code, lines = check_doc(doc)
        assert code == 1
        assert "profile: pw-000042-abcdef" in lines[0]
