"""Fixtures for the observability-layer tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def registry():
    """A fresh registry, active and collecting for the duration of the
    test; global state is restored afterwards."""
    reg = obs.MetricsRegistry()
    with obs.activate(reg):
        yield reg
