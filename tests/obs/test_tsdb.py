"""Tests for the local time-series store (repro.obs.tsdb)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import (
    DEFAULT_CAPACITY,
    DEFAULT_RESOLUTIONS,
    Sampler,
    Series,
    TimeSeriesStore,
    flatten_snapshot,
    load_segments,
    sample_point,
)

T0 = 1_000_000.0  # fixed epoch base so bucket alignment is predictable


class TestSeries:
    def test_rollups_fold_every_resolution(self):
        s = Series("x", "gauge", resolutions=(1.0, 10.0), capacity=100)
        for i in range(25):
            s.record(T0 + i, float(i))
        assert len(s.buckets(1.0)) == 25
        coarse = s.buckets(10.0)
        assert len(coarse) == 3
        assert coarse[0].count == 10
        assert coarse[0].min == 0.0 and coarse[0].max == 9.0
        assert coarse[-1].last == 24.0

    def test_ring_capacity_evicts_oldest(self):
        s = Series("x", "gauge", resolutions=(1.0,), capacity=5)
        for i in range(8):
            s.record(T0 + i, float(i))
        buckets = s.buckets(1.0)
        assert len(buckets) == 5
        assert buckets[0].last == 3.0  # 0..2 evicted

    def test_counter_increase_within_window(self):
        s = Series("c", "counter", resolutions=(1.0,), capacity=100)
        for i in range(10):
            s.record(T0 + i, float(i * 5))  # grows 5/s
        # trailing 4s window holds buckets T0+5..T0+9; the baseline is
        # the bucket just before it (T0+4, value 20), so growth is 25
        assert s.increase(4.0, now=T0 + 9) == pytest.approx(25.0)

    def test_counter_increase_detects_reset(self):
        s = Series("c", "counter", resolutions=(1.0,), capacity=100)
        s.record(T0 + 0, 100.0)
        s.record(T0 + 1, 110.0)
        s.record(T0 + 2, 3.0)  # restart: counter came back near zero
        s.record(T0 + 3, 6.0)
        # young series baseline 0: 100 + 10 before the reset, then the
        # post-reset value 3 itself plus 3 more — never the bogus -104
        assert s.increase(10.0, now=T0 + 3) == pytest.approx(116.0)

    def test_young_series_counts_all_growth(self):
        # a series younger than the window accrued everything inside it —
        # the first bucket's intra-bucket growth must not be dropped
        s = Series("c", "counter", resolutions=(10.0,), capacity=100)
        for i in range(5):
            s.record(T0 + i, float(i * 10))
        assert s.increase(3600.0, now=T0 + 4) == pytest.approx(40.0)

    def test_gauge_increase_is_last_minus_first(self):
        s = Series("g", "gauge", resolutions=(1.0,), capacity=100)
        for i in range(5):
            s.record(T0 + i, 50.0 - i)
        assert s.increase(10.0, now=T0 + 4) == pytest.approx(-4.0)

    def test_window_wider_than_fine_ring_uses_rollup(self):
        # 1s ring covers capacity seconds; a much wider window must read
        # the coarser rollup instead of silently truncating history
        s = Series("c", "counter", resolutions=(1.0, 60.0), capacity=10)
        for i in range(300):
            s.record(T0 + i, float(i))
        assert s._pick_ring(5.0).resolution == 1.0
        assert s._pick_ring(200.0).resolution == 60.0
        # growth over the window is 200; bucket alignment may shave up
        # to one coarse bucket off either edge
        assert s.increase(200.0, now=T0 + 299) == pytest.approx(200.0, abs=61.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Series("x", "summary")


class TestFlattenSnapshot:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(7)
        reg.gauge("serve.in_flight").set(2)
        hist = reg.histogram("serve.request_seconds", (0.5, 1.0))
        hist.observe(0.2)
        hist.observe(0.7)
        hist.observe(5.0)
        return reg

    def test_counters_gauges_histograms(self):
        flat = flatten_snapshot(self._registry().snapshot())
        assert flat["serve.requests"] == ("counter", 7.0)
        assert flat["serve.in_flight"] == ("gauge", 2.0)
        assert flat["serve.request_seconds:count"] == ("counter", 3.0)
        # :le: series are cumulative, Prometheus-style
        assert flat["serve.request_seconds:le:0.5"] == ("counter", 1.0)
        assert flat["serve.request_seconds:le:1"] == ("counter", 2.0)

    def test_sample_point_shape(self):
        point = sample_point(self._registry(), now=T0)
        assert point["t"] == T0
        assert point["series"]["serve.requests"] == 7.0
        assert point["kinds"]["serve.requests"] == "counter"
        # the row is NDJSON-ready
        json.dumps(point)


class TestTimeSeriesStore:
    def test_ingest_round_trip(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        store.sample_registry(reg, now=T0)
        reg.counter("c").inc(2)
        store.sample_registry(reg, now=T0 + 1)
        assert store.latest("c") == 5.0
        assert store.increase("c", 60.0, now=T0 + 1) == pytest.approx(5.0)
        assert store.samples == 2

    def test_unknown_series_is_zero(self):
        store = TimeSeriesStore()
        assert store.increase("nope", 60.0, now=T0) == 0.0
        assert store.latest("nope") is None
        assert store.query("nope") == []

    def test_segments_rotate_and_prune(self, tmp_path):
        store = TimeSeriesStore(
            segment_dir=tmp_path, max_segment_bytes=200, max_segments=3
        )
        for i in range(50):
            store.ingest({"t": T0 + i, "series": {"c": float(i)}, "kinds": {"c": "counter"}})
        paths = store.segment_paths()
        assert 1 <= len(paths) <= 3
        assert store.rotations > 0
        # every surviving row parses
        for path in paths:
            for line in path.read_text().splitlines():
                json.loads(line)

    def test_store_resumes_segment_numbering(self, tmp_path):
        first = TimeSeriesStore(segment_dir=tmp_path, max_segment_bytes=100)
        for i in range(10):
            first.ingest({"t": T0 + i, "series": {"c": float(i)}, "kinds": {}})
        highest = first.segment_paths()[-1].name
        second = TimeSeriesStore(segment_dir=tmp_path, max_segment_bytes=100)
        second.ingest({"t": T0 + 60, "series": {"c": 10.0}, "kinds": {}})
        assert second.segment_paths()[-1].name >= highest


class TestLoadSegments:
    def test_round_trip(self, tmp_path):
        store = TimeSeriesStore(segment_dir=tmp_path)
        for i in range(20):
            store.ingest(
                {
                    "t": T0 + i,
                    "series": {"serve.requests": float(i * 3)},
                    "kinds": {"serve.requests": "counter"},
                }
            )
        loaded = load_segments(tmp_path)
        assert loaded.latest("serve.requests") == 57.0
        assert loaded.increase(
            "serve.requests", 60.0, now=T0 + 19
        ) == pytest.approx(57.0)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_segments(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_segments(tmp_path)

    def test_torn_final_line_skipped(self, tmp_path):
        store = TimeSeriesStore(segment_dir=tmp_path)
        store.ingest({"t": T0, "series": {"c": 1.0}, "kinds": {"c": "counter"}})
        path = store.segment_paths()[0]
        with path.open("a") as handle:
            handle.write('{"t": 999, "series": {"c"')  # crash mid-write
        loaded = load_segments(tmp_path)
        assert loaded.latest("c") == 1.0


class TestSampler:
    def test_sample_once_records_self_metrics(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(4)
        store = TimeSeriesStore()
        sampler = Sampler(store, interval=60.0, registry=reg)
        with obs.activate(reg):
            sampler.sample_once(now=T0)
        assert store.latest("serve.requests") == 4.0
        assert reg.counter("tsdb.samples").value == 1
        assert reg.gauge("tsdb.series").value >= 1

    def test_start_stop_lifecycle(self):
        reg = MetricsRegistry()
        store = TimeSeriesStore()
        sampler = Sampler(store, interval=30.0, registry=reg)
        sampler.start()
        sampler.start()  # idempotent
        assert sampler.stop(timeout=5.0)
        # stop's final flush leaves at least one sample behind
        assert store.samples >= 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Sampler(TimeSeriesStore(), interval=0.0)


def test_default_constants_cover_slo_windows():
    # the coarsest default ring must span the 6h slow burn window
    assert max(DEFAULT_RESOLUTIONS) * DEFAULT_CAPACITY >= 6 * 3600
