"""Span nesting, timing, attributes, and the disabled fast path."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN


def _by_name(registry, name):
    return next(s for s in registry.spans if s.name == name)


class TestNesting:
    def test_depth_and_parent(self, registry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        outer = _by_name(registry, "outer")
        inner = _by_name(registry, "inner")
        assert outer.depth == 0 and outer.parent_id == -1
        assert inner.depth == 1 and inner.parent_id == outer.span_id

    def test_records_append_in_completion_order(self, registry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert [s.name for s in registry.spans] == ["inner", "outer"]

    def test_start_restores_chronology(self, registry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        outer = _by_name(registry, "outer")
        inner = _by_name(registry, "inner")
        assert inner.start >= outer.start >= 0.0

    def test_siblings_share_parent(self, registry):
        with obs.span("outer"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        outer = _by_name(registry, "outer")
        assert _by_name(registry, "a").parent_id == outer.span_id
        assert _by_name(registry, "b").parent_id == outer.span_id
        assert _by_name(registry, "b").depth == 1


class TestTiming:
    def test_child_within_parent_duration(self, registry):
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.01)
        outer = _by_name(registry, "outer")
        inner = _by_name(registry, "inner")
        assert inner.seconds >= 0.01
        assert outer.seconds >= inner.seconds

    def test_summary_aggregates(self, registry):
        for _ in range(3):
            with obs.span("phase"):
                pass
        agg = registry.span_summary()["phase"]
        assert agg["count"] == 3
        assert agg["total_seconds"] >= agg["max_seconds"] >= agg["min_seconds"]


class TestAttributes:
    def test_set_and_factory_attrs(self, registry):
        with obs.span("s", method="indexed") as sp:
            sp.set(merges=4)
        record = _by_name(registry, "s")
        assert record.attrs == {"method": "indexed", "merges": 4}

    def test_exception_sets_error_attr_and_propagates(self, registry):
        with pytest.raises(RuntimeError):
            with obs.span("s"):
                raise RuntimeError("boom")
        record = _by_name(registry, "s")
        assert record.attrs["error"] == "RuntimeError"


class TestOutOfOrderExit:
    def test_parent_exit_unwinds_and_flags_both_records(self, registry):
        from repro.obs import runtime

        outer = obs.span("outer")
        inner = obs.span("inner")
        outer.__enter__()
        inner.__enter__()
        # exited in open order instead of reverse order: the parent's
        # exit must unwind the child's stale id off the span stack
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        assert runtime.span_stack() == []
        assert _by_name(registry, "outer").attrs.get("leaked") is True
        assert _by_name(registry, "inner").attrs.get("leaked") is True

    def test_later_spans_unaffected(self, registry):
        outer = obs.span("outer")
        inner = obs.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        with obs.span("later"):
            pass
        later = _by_name(registry, "later")
        assert later.depth == 0
        assert later.parent_id == -1

    def test_well_nested_spans_not_flagged(self, registry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        for record in registry.spans:
            assert "leaked" not in record.attrs


class TestDisabled:
    def test_returns_shared_null_span(self):
        assert obs.span("anything") is NULL_SPAN

    def test_nothing_recorded(self):
        reg = obs.MetricsRegistry()
        with obs.activate(reg, collecting=False):
            with obs.span("s") as sp:
                sp.set(ignored=True)
            obs.counter("c").inc()
            obs.gauge("g").set(1)
            obs.histogram("h").observe(1)
        assert reg.is_empty()


class TestExternalSpan:
    def test_synthesized_record_lands_on_parent_timeline(self, registry):
        start = time.perf_counter()
        with obs.span("parallel.build"):
            obs.external_span("parallel.shard", start, 0.25, day=3, pid=42)
        shard = _by_name(registry, "parallel.shard")
        parent = _by_name(registry, "parallel.build")
        assert shard.parent_id == parent.span_id
        assert shard.depth == 1
        assert shard.seconds == 0.25
        assert shard.attrs == {"day": 3, "pid": 42}
        # perf_counter shares the registry epoch, so the offset is tiny
        assert 0.0 <= shard.start - (start - registry.epoch) < 1e-6

    def test_top_level_when_no_span_open(self, registry):
        obs.external_span("orphan", time.perf_counter(), 0.1)
        record = _by_name(registry, "orphan")
        assert record.parent_id == -1 and record.depth == 0

    def test_noop_while_disabled(self):
        reg = obs.MetricsRegistry()
        with obs.activate(reg, collecting=False):
            obs.external_span("shard", time.perf_counter(), 0.1)
        assert reg.is_empty()
