"""Tests for the tail-sampled trace store (repro.obs.tracestore)."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracestore import (
    DEFAULT_RING_SIZE,
    TRACE_SEGMENT_PREFIX,
    TailSampler,
    TraceRecord,
    TraceStore,
    critical_path,
    format_profile,
    format_trace,
    load_trace_segments,
    merge_profile,
    self_seconds,
    trace_to_chrome,
)


def make_record(request_id="req-1", status=200, seconds=0.1, spans=None, **kw):
    return TraceRecord(
        request_id=request_id,
        endpoint=kw.pop("endpoint", "query"),
        status=status,
        seconds=seconds,
        start=kw.pop("start", 1000.0),
        reasons=kw.pop("reasons", ("head",)),
        spans=spans if spans is not None else [],
    )


def make_spans():
    """A three-level tree: root 100ms -> child 60ms -> grandchild 25ms."""
    return [
        {"id": 1, "parent": -1, "name": "serve.request", "depth": 0,
         "start": 0.0, "seconds": 0.100, "attrs": {}},
        {"id": 2, "parent": 1, "name": "query.run", "depth": 1,
         "start": 0.01, "seconds": 0.060, "attrs": {}},
        {"id": 3, "parent": 2, "name": "query.select", "depth": 2,
         "start": 0.02, "seconds": 0.025, "attrs": {}},
        {"id": 4, "parent": 1, "name": "render", "depth": 1,
         "start": 0.08, "seconds": 0.015, "attrs": {}},
    ]


class TestTailSampler:
    def test_error_always_kept(self):
        sampler = TailSampler(latency_threshold=10.0, head_rate=0)
        assert sampler.decide("req-a", 500, 0.001) == ("error",)
        assert sampler.decide("req-a", 404, 0.001) == ("error",)
        assert sampler.decide("req-a", 200, 0.001) == ()

    def test_slow_threshold(self):
        sampler = TailSampler(latency_threshold=0.25, head_rate=0)
        assert sampler.decide("req-a", 200, 0.3) == ("slow",)
        assert sampler.decide("req-a", 200, 0.2) == ()
        # threshold 0.0 keeps everything; negative disables the rule
        assert TailSampler(latency_threshold=0.0, head_rate=0).decide(
            "req-a", 200, 0.0
        ) == ("slow",)
        assert TailSampler(latency_threshold=-1.0, head_rate=0).decide(
            "req-a", 200, 99.0
        ) == ()

    def test_head_sample_deterministic_under_fixed_seed(self):
        sampler = TailSampler(latency_threshold=-1.0, head_rate=10, seed=42)
        ids = [f"req-{i:04d}" for i in range(500)]
        first = [rid for rid in ids if sampler.decide(rid, 200, 0.0)]
        second = [rid for rid in ids if sampler.decide(rid, 200, 0.0)]
        assert first == second  # same (seed, id) -> same decision
        # roughly 1-in-10 of a uniform id population
        assert 20 <= len(first) <= 100
        # a different seed keeps a different subset
        other = TailSampler(latency_threshold=-1.0, head_rate=10, seed=43)
        third = [rid for rid in ids if other.decide(rid, 200, 0.0)]
        assert third != first

    def test_head_rate_zero_disables(self):
        sampler = TailSampler(latency_threshold=-1.0, head_rate=0)
        assert all(
            sampler.decide(f"req-{i}", 200, 0.0) == () for i in range(100)
        )

    def test_reasons_compose(self):
        sampler = TailSampler(latency_threshold=0.0, head_rate=1)
        assert sampler.decide("req-a", 500, 1.0) == ("error", "slow", "head")


class TestTraceRecord:
    def test_round_trip(self):
        record = make_record(spans=make_spans(), reasons=("error", "slow"))
        clone = TraceRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record

    def test_summary_counts_spans(self):
        record = make_record(spans=make_spans())
        assert record.summary()["spans"] == 4
        assert "spans" in record.to_dict()
        assert isinstance(record.to_dict()["spans"], list)

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            {"request_id": "x"},
            {"request_id": "x", "status": "not-a-number", "seconds": 0.1},
            {"request_id": "x", "status": 200, "seconds": 0.1, "spans": "no"},
        ],
    )
    def test_malformed_raises(self, doc):
        with pytest.raises(ValueError):
            TraceRecord.from_dict(doc)


class TestTraceStoreRing:
    def test_add_get_len(self):
        store = TraceStore()
        assert len(store) == 0 and store.added == 0
        store.add(make_record("req-a"))
        assert store.get("req-a").request_id == "req-a"
        assert store.get("missing") is None
        assert len(store) == 1 and store.added == 1

    def test_ring_eviction_drops_index(self):
        store = TraceStore(ring_size=3)
        for i in range(5):
            store.add(make_record(f"req-{i}"))
        assert len(store) == 3
        assert store.added == 5
        assert store.get("req-0") is None and store.get("req-1") is None
        assert store.get("req-4") is not None

    def test_duplicate_request_ids_newest_wins(self):
        store = TraceStore(ring_size=4)
        store.add(make_record("req-dup", seconds=0.1))
        store.add(make_record("req-dup", seconds=0.9))
        assert store.get("req-dup").seconds == 0.9
        # evicting the stale duplicate must not delete the newer entry
        store.add(make_record("req-x"))
        store.add(make_record("req-y"))
        store.add(make_record("req-z"))  # evicts the 0.1s req-dup
        assert store.get("req-dup").seconds == 0.9

    def test_recent_newest_first(self):
        store = TraceStore()
        for i in range(4):
            store.add(make_record(f"req-{i}"))
        assert [r.request_id for r in store.recent()] == [
            "req-3", "req-2", "req-1", "req-0",
        ]
        assert [r.request_id for r in store.recent(2)] == ["req-3", "req-2"]

    def test_slowest_orders_by_duration(self):
        store = TraceStore()
        for i, seconds in enumerate([0.2, 0.5, 0.1, 0.5]):
            store.add(make_record(f"req-{i}", seconds=seconds))
        ordered = [r.request_id for r in store.slowest(3)]
        # ties broken newest-first: req-3 beats req-1 at 0.5s
        assert ordered == ["req-3", "req-1", "req-0"]

    def test_errored_filters_and_orders(self):
        store = TraceStore()
        store.add(make_record("req-ok", status=200))
        store.add(make_record("req-err-1", status=500))
        store.add(make_record("req-err-2", status=404))
        assert [r.request_id for r in store.errored()] == [
            "req-err-2", "req-err-1",
        ]
        assert [r.request_id for r in store.errored(1)] == ["req-err-2"]

    def test_default_ring_size(self):
        assert TraceStore()._ring.maxlen == DEFAULT_RING_SIZE


class TestTraceStorePersistence:
    def test_round_trip_through_segments(self, tmp_path):
        store = TraceStore(segment_dir=tmp_path)
        for i in range(3):
            store.add(make_record(f"req-{i}", spans=make_spans()))
        store.sync()
        loaded = load_trace_segments(tmp_path)
        assert len(loaded) == 3
        assert loaded.get("req-1") == store.get("req-1")

    def test_rotation_and_retention(self, tmp_path):
        store = TraceStore(
            segment_dir=tmp_path, max_segment_bytes=300, max_segments=3
        )
        for i in range(30):
            store.add(make_record(f"req-{i:03d}"))
        segments = sorted(tmp_path.glob(f"{TRACE_SEGMENT_PREFIX}*.ndjson"))
        assert 1 < len(segments) <= 3
        # oldest rows were pruned with their segments
        loaded = load_trace_segments(tmp_path)
        assert loaded.get("req-029") is not None
        assert loaded.get("req-000") is None

    def test_resume_appends_to_existing_segments(self, tmp_path):
        first = TraceStore(segment_dir=tmp_path)
        first.add(make_record("req-a"))
        second = TraceStore(segment_dir=tmp_path)
        second.add(make_record("req-b"))
        loaded = load_trace_segments(tmp_path)
        assert loaded.get("req-a") is not None
        assert loaded.get("req-b") is not None
        assert len(list(tmp_path.glob("*.ndjson"))) == 1

    def test_torn_trailing_line_skipped(self, tmp_path):
        store = TraceStore(segment_dir=tmp_path)
        store.add(make_record("req-whole"))
        segment = next(tmp_path.glob("*.ndjson"))
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"request_id": "req-torn", "status": 200, "seco')
        loaded = load_trace_segments(tmp_path)
        assert loaded.get("req-whole") is not None
        assert loaded.get("req-torn") is None
        assert len(loaded) == 1

    def test_malformed_rows_skipped(self, tmp_path):
        segment = tmp_path / f"{TRACE_SEGMENT_PREFIX}000000.ndjson"
        rows = [
            json.dumps(make_record("req-good").to_dict()),
            json.dumps({"status": 200}),  # missing request_id
            json.dumps([1, 2, 3]),  # not an object
            "",
        ]
        segment.write_text("\n".join(rows) + "\n")
        loaded = load_trace_segments(tmp_path)
        assert [r.request_id for r in loaded.recent()] == ["req-good"]

    def test_duplicate_ids_across_segments_newest_wins(self, tmp_path):
        old = tmp_path / f"{TRACE_SEGMENT_PREFIX}000000.ndjson"
        new = tmp_path / f"{TRACE_SEGMENT_PREFIX}000001.ndjson"
        old.write_text(
            json.dumps(make_record("req-dup", seconds=0.1).to_dict()) + "\n"
        )
        new.write_text(
            json.dumps(make_record("req-dup", seconds=0.7).to_dict()) + "\n"
        )
        assert load_trace_segments(tmp_path).get("req-dup").seconds == 0.7

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_segments(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace-"):
            load_trace_segments(tmp_path)

    def test_sync_is_noop_without_segments(self, tmp_path):
        TraceStore().sync()  # memory-only
        TraceStore(segment_dir=tmp_path).sync()  # dir exists, no file yet


class TestSpanAnalysis:
    def test_self_seconds_subtracts_children(self):
        selfs = self_seconds(make_spans())
        assert selfs[1] == pytest.approx(0.100 - 0.060 - 0.015)
        assert selfs[2] == pytest.approx(0.060 - 0.025)
        assert selfs[3] == pytest.approx(0.025)

    def test_self_seconds_clamps_clock_skew(self):
        spans = [
            {"id": 1, "parent": -1, "name": "root", "depth": 0,
             "start": 0.0, "seconds": 0.010},
            # child claims more time than the parent (skewed clocks)
            {"id": 2, "parent": 1, "name": "child", "depth": 1,
             "start": 0.001, "seconds": 5.0},
        ]
        selfs = self_seconds(spans)
        assert selfs[1] == 0.0  # clamped, never negative
        assert selfs[2] == pytest.approx(5.0)

    def test_critical_path_follows_heaviest_child(self):
        names = [s["name"] for s in critical_path(make_spans())]
        assert names == ["serve.request", "query.run", "query.select"]

    def test_critical_path_out_of_order_input(self):
        spans = list(reversed(make_spans()))
        names = [s["name"] for s in critical_path(spans)]
        assert names == ["serve.request", "query.run", "query.select"]

    def test_critical_path_cycle_guard(self):
        spans = [
            {"id": 1, "parent": 2, "name": "a", "seconds": 1.0},
            {"id": 2, "parent": 1, "name": "b", "seconds": 0.5},
        ]
        path = critical_path(spans)
        assert [s["name"] for s in path] == ["a", "b"]

    def test_critical_path_empty(self):
        assert critical_path([]) == []

    def test_format_trace_marks_path(self):
        text = format_trace(make_record(spans=make_spans(), seconds=0.1))
        assert "serve.request" in text
        lines = text.splitlines()
        assert any("query.select" in l and l.rstrip().endswith("*") for l in lines)
        assert any("render" in l and not l.rstrip().endswith("*") for l in lines)

    def test_format_trace_without_spans(self):
        assert "(no spans captured)" in format_trace(make_record())

    def test_merge_profile_accumulates(self):
        records = [make_record(f"req-{i}", spans=make_spans()) for i in range(2)]
        profile = merge_profile(records)
        assert profile["query.select"]["count"] == 2
        assert profile["query.select"]["total_seconds"] == pytest.approx(0.05)
        text = format_profile(profile, limit=2)
        assert len(text.splitlines()) == 3  # header + 2 rows
        # hottest self time first
        assert "query.run" in text.splitlines()[1]

    def test_trace_to_chrome_shape(self):
        doc = trace_to_chrome(make_record(spans=make_spans()))
        assert doc["displayTimeUnit"] == "ms"
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "serve.request" in names
