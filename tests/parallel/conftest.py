"""Fixtures for the parallel-construction tests.

One small on-disk catalog is shared across the whole module set — the
parallel builder's workers re-open it from disk, so every byte-identity
test needs a real directory, not an in-memory batch.
"""

from __future__ import annotations

import pytest

from repro.storage.catalog import DatasetCatalog


@pytest.fixture(scope="session")
def catalog_dir(small_sim, tmp_path_factory):
    """A materialized month of the small profile, session-shared."""
    directory = tmp_path_factory.mktemp("parallel-trace")
    small_sim.materialize_catalog(directory, months=[0])
    return directory


@pytest.fixture()
def catalog(catalog_dir) -> DatasetCatalog:
    return DatasetCatalog(catalog_dir)
