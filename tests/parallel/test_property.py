"""Property test: per-group extraction + deterministic merge == serial.

Randomized micro-batches on a two-road deployment exercise the whole
Property 3 argument at the extraction layer: splitting a day's records
along district connectivity groups, extracting each shard independently
and merging with :func:`merge_day_shards` must reproduce the serial
extractor's output exactly — same clusters, same ids, same order.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.cluster import ClusterIdGenerator
from repro.core.events import EventExtractor, ExtractionParams
from repro.parallel.reduce import merge_day_shards
from repro.parallel.sharding import plan_shards
from repro.parallel.worker import ExtractionShardResult
from repro.spatial.regions import DistrictGrid
from repro.temporal.windows import WindowSpec

from tests.conftest import make_batch, two_road_network

NETWORK = two_road_network(gap=5.0)
DISTRICTS = DistrictGrid(NETWORK, 1, 2)
PLAN = plan_shards(
    [0], "day-district", network=NETWORK, districts=DISTRICTS, delta_d=1.5
)

records_strategy = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=11),  # sensor
        st.integers(min_value=0, max_value=95),  # window
    ),
    values=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
    max_size=60,
).map(lambda d: [(s, w, sev) for (s, w), sev in sorted(d.items())])


def _extractor():
    return EventExtractor(NETWORK, ExtractionParams(1.5, 15.0), WindowSpec())


def _signature(cluster):
    return (
        cluster.cluster_id,
        cluster.spatial.key_array.tobytes(),
        cluster.spatial.value_array.tobytes(),
        cluster.temporal.key_array.tobytes(),
        cluster.temporal.value_array.tobytes(),
    )


@settings(max_examples=60, deadline=None)
@given(records=records_strategy)
def test_group_sharded_extraction_matches_serial(records):
    extractor = _extractor()
    serial = extractor.extract_micro_clusters(
        make_batch(records), ClusterIdGenerator(0)
    )

    shards = []
    for spec in PLAN.shards:
        members = set(spec.sensor_ids)
        subset = [r for r in records if r[0] in members]
        clusters, keys = extractor.extract_micro_clusters_ordered(
            make_batch(subset)
        )
        empty = np.array([], dtype=np.int64)
        shards.append(
            ExtractionShardResult(
                day=spec.day,
                group=spec.group,
                clusters=clusters,
                order_keys=keys,
                cube_rows=empty,
                cube_cols=empty,
                cube_vals=np.array([], dtype=np.float64),
                records=len(subset),
                started=0.0,
                finished=0.0,
                pid=0,
            )
        )
    merged = merge_day_shards(shards, ClusterIdGenerator(0))

    assert [_signature(c) for c in merged] == [_signature(c) for c in serial]
