"""Tests for the worker snapshot, the columnar spill path and the
``parallel.worker_init_seconds`` metric."""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.parallel import worker as pworker
from repro.parallel.sharding import ShardSpec


@pytest.fixture()
def worker_env(catalog_dir):
    """Configure the in-process worker; restore module state afterwards."""
    saved = (pworker._INIT, pworker._STATE)
    yield catalog_dir
    pworker._INIT, pworker._STATE = saved


def _snapshot(small_sim):
    engine = AnalysisEngine.from_simulator(small_sim)
    return pworker.WorkerSnapshot.from_engine(engine)


class TestWorkerSnapshot:
    def test_from_engine_carries_deployment(self, small_sim):
        engine = AnalysisEngine.from_simulator(small_sim)
        snap = pworker.WorkerSnapshot.from_engine(engine)
        assert snap.network is engine.network
        assert snap.calendar is engine.calendar
        assert snap.window_spec is engine.window_spec
        assert (snap.district_cols, snap.district_rows) == engine.districts.shape

    def test_snapshot_state_matches_catalog_reread(
        self, small_sim, worker_env
    ):
        """A snapshot-built worker and a legacy catalog-reading worker
        extract identical clusters."""
        config = dataclasses.asdict(EngineConfig())
        shard = ShardSpec(day=0, group=None, sensor_ids=None)
        pworker.configure(str(worker_env), config, _snapshot(small_sim))
        with_snapshot = pworker.run_extraction_shard(shard)
        pworker.configure(str(worker_env), config)  # legacy: re-read catalog
        legacy = pworker.run_extraction_shard(shard)
        assert [c.spatial for c in with_snapshot.clusters] == [
            c.spatial for c in legacy.clusters
        ]
        assert with_snapshot.records == legacy.records

    def test_init_seconds_recorded(self, small_sim, worker_env):
        pworker.configure(
            str(worker_env), dataclasses.asdict(EngineConfig()), _snapshot(small_sim)
        )
        result = pworker.run_extraction_shard(
            ShardSpec(day=0, group=None, sensor_ids=None)
        )
        assert result.init_seconds > 0.0


class TestSpillPath:
    def test_spill_round_trip(self, small_sim, worker_env, tmp_path):
        config = dataclasses.asdict(EngineConfig())
        shard = ShardSpec(day=1, group=None, sensor_ids=None)
        pworker.configure(
            str(worker_env), config, _snapshot(small_sim), str(tmp_path)
        )
        direct = pworker.run_extraction_shard(shard)
        ref = pworker.run_extraction_shard_spill(shard)
        loaded = pworker.load_shard_result(ref)
        assert loaded.day == direct.day and loaded.group is None
        assert loaded.records == direct.records
        assert loaded.pid == direct.pid
        assert [c.cluster_id for c in loaded.clusters] == [
            c.cluster_id for c in direct.clusters
        ]
        assert [c.spatial for c in loaded.clusters] == [
            c.spatial for c in direct.clusters
        ]
        assert [c.temporal for c in loaded.clusters] == [
            c.temporal for c in direct.clusters
        ]
        assert loaded.cube_rows.tolist() == direct.cube_rows.tolist()
        assert loaded.cube_vals.tolist() == direct.cube_vals.tolist()

    def test_spill_result_is_mutable(self, small_sim, worker_env, tmp_path):
        """Loaded copies own their arrays — the scratch file dies after
        the build, so nothing may alias the mapping."""
        pworker.configure(
            str(worker_env),
            dataclasses.asdict(EngineConfig()),
            _snapshot(small_sim),
            str(tmp_path),
        )
        ref = pworker.run_extraction_shard_spill(
            ShardSpec(day=0, group=None, sensor_ids=None)
        )
        loaded = pworker.load_shard_result(ref)
        assert loaded.cube_vals.flags.writeable

    def test_spill_without_dir_raises(self, small_sim, worker_env):
        pworker.configure(
            str(worker_env), dataclasses.asdict(EngineConfig()), _snapshot(small_sim)
        )
        with pytest.raises(RuntimeError, match="spill_dir"):
            pworker.run_extraction_shard_spill(
                ShardSpec(day=0, group=None, sensor_ids=None)
            )


class TestWorkerInitMetric:
    def test_pooled_build_reports_init_seconds(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        reg = obs.MetricsRegistry()
        with obs.activate(reg):
            report = engine.build_from_catalog_parallel(
                catalog, range(4), workers=2
            )
        assert report.worker_init_seconds > 0.0
        hist = reg.histogram("parallel.worker_init_seconds")
        assert hist.count >= 1
        assert hist.sum > 0.0

    def test_serial_build_reports_zero(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        report = engine.build_from_catalog_parallel(
            catalog, range(4), workers=1
        )
        assert report.worker_init_seconds == 0.0

    def test_report_dict_includes_field(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        report = engine.build_from_catalog_parallel(
            catalog, range(2), workers=2
        )
        assert "worker_init_seconds" in report.to_dict()
