"""Shard planning: soundness of the partition, canonical ordering."""

from __future__ import annotations

import pytest

from repro.core.events import EventExtractor, ExtractionParams
from repro.parallel.sharding import district_groups, plan_shards
from repro.spatial.grid import SensorGridIndex
from repro.spatial.regions import DistrictGrid
from repro.temporal.windows import WindowSpec

from tests.conftest import make_batch, two_road_network


class TestPlanDays:
    def test_one_shard_per_day_sorted_deduped(self):
        plan = plan_shards([5, 1, 3, 1])
        assert plan.days == (1, 3, 5)
        assert [s.day for s in plan.shards] == [1, 3, 5]
        assert all(s.group is None and s.sensor_ids is None for s in plan.shards)

    def test_provenance_is_json_compatible_and_plan_only(self):
        import json

        plan = plan_shards([0, 1])
        prov = plan.provenance()
        assert json.loads(json.dumps(prov)) == prov
        assert prov["shard_by"] == "day"
        assert prov["shards"] == [{"day": 0, "group": None}, {"day": 1, "group": None}]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown shard axis"):
            plan_shards([0], "hour")


class TestDistrictGroups:
    def test_groups_are_connectivity_closed(self, small_sim):
        """No delta_d-adjacent sensor pair may cross a group boundary."""
        network = small_sim.network
        districts = small_sim.districts()
        delta_d = 1.5
        groups = district_groups(network, districts, delta_d)
        group_of = {}
        for gid, members in enumerate(groups):
            for district in members:
                group_of[district] = gid
        grid = SensorGridIndex(network, delta_d)
        for a, b in grid.neighbour_pairs():
            assert (
                group_of[districts.district_of(a)]
                == group_of[districts.district_of(b)]
            )

    def test_groups_partition_districts(self, small_sim):
        districts = small_sim.districts()
        groups = district_groups(small_sim.network, districts, 1.5)
        flat = sorted(d for g in groups for d in g)
        assert flat == list(range(len(districts)))

    def test_disconnected_roads_split(self):
        """Two highways far beyond delta_d land in different groups."""
        network = two_road_network(spacing=1.0, gap=5.0)
        districts = DistrictGrid(network, 1, 2)
        groups = district_groups(network, districts, 1.5)
        assert len(groups) == 2


class TestPlanDayDistrict:
    def test_group_shards_cover_all_sensors(self, small_sim):
        plan = plan_shards(
            [0, 1],
            "day-district",
            network=small_sim.network,
            districts=small_sim.districts(),
            delta_d=1.5,
        )
        assert plan.shard_by == "day-district"
        day0 = [s for s in plan.shards if s.day == 0]
        covered = sorted(sid for s in day0 for sid in s.sensor_ids)
        assert covered == sorted(s.sensor_id for s in small_sim.network)
        # canonical order: day-major, group-minor
        keys = [s.key for s in plan.shards]
        assert keys == sorted(keys)

    def test_requires_deployment(self):
        with pytest.raises(ValueError, match="needs network"):
            plan_shards([0], "day-district")

    def test_requires_grid_method(self, small_sim):
        with pytest.raises(ValueError, match="grid"):
            plan_shards(
                [0],
                "day-district",
                network=small_sim.network,
                districts=small_sim.districts(),
                delta_d=1.5,
                extraction_method="naive",
            )


class TestOrderedExtraction:
    def test_naive_method_rejected(self):
        network = two_road_network()
        extractor = EventExtractor(
            network, ExtractionParams(1.5, 15.0), WindowSpec(), method="naive"
        )
        batch = make_batch([(0, 3, 5.0), (1, 3, 5.0)])
        with pytest.raises(ValueError, match="ordered extraction"):
            extractor.extract_micro_clusters_ordered(batch)

    def test_keys_align_with_clusters(self):
        network = two_road_network(gap=5.0)
        extractor = EventExtractor(
            network, ExtractionParams(1.5, 15.0), WindowSpec()
        )
        batch = make_batch(
            [(0, 3, 5.0), (1, 3, 5.0), (6, 40, 2.0), (7, 40, 9.0)]
        )
        clusters, keys = extractor.extract_micro_clusters_ordered(batch)
        assert len(clusters) == len(keys) == 2
        # the key is the min packed (sensor << 32 | window) of the component
        by_key = dict(zip(keys, clusters))
        assert by_key[(0 << 32) | 3].sensor_ids == frozenset({0, 1})
        assert by_key[(6 << 32) | 40].sensor_ids == frozenset({6, 7})

    def test_empty_batch(self):
        network = two_road_network()
        extractor = EventExtractor(
            network, ExtractionParams(1.5, 15.0), WindowSpec()
        )
        clusters, keys = extractor.extract_micro_clusters_ordered(make_batch([]))
        assert clusters == [] and keys == []
