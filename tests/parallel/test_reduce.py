"""Unit coverage of the deterministic reducer and its cache plumbing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.cluster import ClusterIdGenerator
from repro.core.integration import SimilarityCache
from repro.cube.datacube import SeverityCube
from repro.parallel.reduce import absorb_cube_shard, merge_day_shards
from repro.parallel.worker import ExtractionShardResult

from tests.conftest import make_cluster


def _shard(day, group, clusters, order_keys=None, records=0):
    empty = np.array([], dtype=np.int64)
    return ExtractionShardResult(
        day=day,
        group=group,
        clusters=clusters,
        order_keys=order_keys,
        cube_rows=empty,
        cube_cols=empty,
        cube_vals=np.array([], dtype=np.float64),
        records=records,
        started=0.0,
        finished=0.0,
        pid=0,
    )


class TestMergeDayShards:
    def test_whole_day_shard_remaps_positionally(self):
        # worker-local ids 0/1 in the worker's final order
        a = make_cluster({1: 9.0}, {4: 9.0}, cluster_id=0)
        b = make_cluster({2: 3.0}, {2: 3.0}, cluster_id=1)
        ids = ClusterIdGenerator(100)
        merged = merge_day_shards([_shard(0, None, [a, b])], ids)
        assert [c.cluster_id for c in merged] == [100, 101]
        assert merged[0].severity() == 9.0

    def test_group_shards_interleave_by_order_key(self):
        # group 0 holds component ranks 0 and 2; group 1 holds rank 1 —
        # ids must interleave, then sort by (-severity, start_window)
        g0 = [
            make_cluster({0: 1.0}, {7: 1.0}, cluster_id=0),
            make_cluster({4: 5.0}, {9: 5.0}, cluster_id=1),
        ]
        g1 = [make_cluster({2: 2.0}, {3: 2.0}, cluster_id=0)]
        ids = ClusterIdGenerator(10)
        merged = merge_day_shards(
            [
                _shard(0, 0, g0, order_keys=[(0 << 32) | 7, (4 << 32) | 9]),
                _shard(0, 1, g1, order_keys=[(2 << 32) | 3]),
            ],
            ids,
        )
        # component order by key: sensor0 -> id 10, sensor2 -> id 11,
        # sensor4 -> id 12; final order by descending severity
        assert [(c.cluster_id, c.severity()) for c in merged] == [
            (12, 5.0),
            (11, 2.0),
            (10, 1.0),
        ]

    def test_empty_shards_produce_empty_day(self):
        assert merge_day_shards([_shard(0, None, [])], ClusterIdGenerator()) == []
        assert (
            merge_day_shards(
                [_shard(0, 0, [], order_keys=[]), _shard(0, 1, [], order_keys=[])],
                ClusterIdGenerator(),
            )
            == []
        )

    def test_missing_order_keys_rejected(self):
        shards = [_shard(0, 0, [], order_keys=None), _shard(0, 1, [], order_keys=[])]
        with pytest.raises(ValueError, match="order keys"):
            merge_day_shards(shards, ClusterIdGenerator())


class TestAbsorbCubeShard:
    def test_disjoint_cells_accumulate_exactly(self, small_sim):
        cube = SeverityCube(
            small_sim.districts(), small_sim.calendar, small_sim.window_spec
        )
        shard = dataclasses.replace(
            _shard(0, None, [], records=3),
            cube_rows=np.array([0, 2]),
            cube_cols=np.array([0, 1]),
            cube_vals=np.array([1.5, 2.5]),
        )
        absorb_cube_shard(cube, shard)
        assert cube.cell(0, 0) == 1.5
        assert cube.cell(2, 1) == 2.5
        assert cube.records_added == 3

    def test_out_of_range_cells_rejected(self, small_sim):
        cube = SeverityCube(
            small_sim.districts(), small_sim.calendar, small_sim.window_spec
        )
        with pytest.raises(ValueError, match="outside the cube"):
            cube.absorb_cells(
                np.array([9999]), np.array([0]), np.array([1.0]), 1
            )


class TestSimilarityCacheMergeFrom:
    def test_plain_merge_and_counters(self):
        a, b = SimilarityCache(), SimilarityCache()
        b.put(1, 2, 0.5)
        b.get(1, 2)  # hit
        b.get(3, 4)  # miss
        absorbed = a.merge_from(b)
        assert absorbed == 1
        assert a.get(2, 1) == 0.5
        assert (a.hits, a.misses) == (2, 1)  # 1 folded hit + our get

    def test_id_map_renumbers_keys(self):
        a, b = SimilarityCache(), SimilarityCache()
        b.put(1 << 40, 5, 0.25)
        a.merge_from(b, id_map={1 << 40: 7})
        assert a.contains(5, 7)
        assert not a.contains(1 << 40, 5)
