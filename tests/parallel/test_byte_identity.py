"""The tentpole invariant: parallel builds are byte-identical to serial.

Every test here compares *serialized* models (``forest.bin`` /
``cube.bin``), not just cluster sets — float summation order, cluster id
assignment, registry insertion order and provenance all have to line up
for the bytes to match (Property 3 merge algebra + the pinned reduce
order).
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.storage.forest_io import load_forest, save_cube, save_forest

DAYS = range(10)


def _build(sim, catalog, workers, shard_by="day", materialize=False):
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_catalog_parallel(
        catalog, DAYS, workers=workers, shard_by=shard_by, materialize=materialize
    )
    return engine


def _model_bytes(engine, tmp_path, name):
    forest_path = tmp_path / f"{name}.forest.bin"
    cube_path = tmp_path / f"{name}.cube.bin"
    save_forest(engine.forest, forest_path)
    save_cube(engine.cube, cube_path)
    return forest_path.read_bytes(), cube_path.read_bytes()


class TestWorkerCountInvariance:
    def test_day_axis_workers_1_vs_2(self, small_sim, catalog, tmp_path):
        serial = _build(small_sim, catalog, workers=1)
        pooled = _build(small_sim, catalog, workers=2)
        assert _model_bytes(serial, tmp_path, "w1") == _model_bytes(
            pooled, tmp_path, "w2"
        )

    def test_day_district_axis_workers_1_vs_2(self, small_sim, catalog, tmp_path):
        serial = _build(small_sim, catalog, workers=1, shard_by="day-district")
        pooled = _build(small_sim, catalog, workers=2, shard_by="day-district")
        assert _model_bytes(serial, tmp_path, "d1") == _model_bytes(
            pooled, tmp_path, "d2"
        )

    def test_materialized_forest_workers_1_vs_2(self, small_sim, catalog, tmp_path):
        serial = _build(small_sim, catalog, workers=1, materialize=True)
        pooled = _build(small_sim, catalog, workers=2, materialize=True)
        assert _model_bytes(serial, tmp_path, "m1") == _model_bytes(
            pooled, tmp_path, "m2"
        )
        stats = pooled.forest.stats()
        assert stats.num_week_macro > 0 and stats.num_month_macro > 0


def _state_signature(forest):
    """Cluster payload + id maps + registry order, axis-independent."""
    state = forest.export_state()

    def feat(c):
        return (
            c.cluster_id,
            c.level,
            c.members,
            c.spatial.key_array.tobytes(),
            c.spatial.value_array.tobytes(),
            c.temporal.key_array.tobytes(),
            c.temporal.value_array.tobytes(),
        )

    return (
        [feat(c) for c in state["clusters"]],
        state["micro_by_day"],
        state["week_cache"],
        state["month_cache"],
    )


class TestAxisAndLegacyEquivalence:
    def test_day_district_matches_day_axis(self, small_sim, catalog):
        """Different shard plans, one model (only provenance differs)."""
        by_day = _build(small_sim, catalog, workers=1)
        by_group = _build(small_sim, catalog, workers=2, shard_by="day-district")
        assert _state_signature(by_day.forest) == _state_signature(by_group.forest)
        assert by_day.forest.provenance != by_group.forest.provenance

    def test_parallel_matches_legacy_serial_builder(
        self, small_sim, catalog, tmp_path
    ):
        """build_from_catalog and the sharded builder produce one model."""
        legacy = AnalysisEngine.from_simulator(small_sim)
        legacy.build_from_catalog(catalog, DAYS)
        legacy.forest.materialize()
        pooled = _build(small_sim, catalog, workers=2, materialize=True)
        assert _state_signature(legacy.forest) == _state_signature(pooled.forest)
        # align the one intended difference and the bytes must match too
        legacy.forest.set_provenance(pooled.forest.provenance)
        assert _model_bytes(legacy, tmp_path, "legacy") == _model_bytes(
            pooled, tmp_path, "pooled"
        )


class TestEdgeCases:
    def test_single_day_build(self, small_sim, catalog, tmp_path):
        serial = AnalysisEngine.from_simulator(small_sim)
        serial.build_from_catalog_parallel(catalog, [3], workers=1)
        pooled = AnalysisEngine.from_simulator(small_sim)
        pooled.build_from_catalog_parallel(
            catalog, [3], workers=2, shard_by="day-district"
        )
        assert _state_signature(serial.forest) == _state_signature(pooled.forest)
        assert serial.built_days == pooled.built_days == frozenset({3})

    def test_days_outside_catalog_are_skipped(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        report = engine.build_from_catalog_parallel(
            catalog, [0, 1, 10_000], workers=2
        )
        assert report.days_built == 2
        assert engine.built_days == frozenset({0, 1})

    def test_empty_day_list(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        report = engine.build_from_catalog_parallel(catalog, [], workers=2)
        assert report.days_built == 0 and report.shards == 0
        assert engine.forest.days == []

    def test_rejects_zero_workers(self, small_sim, catalog):
        engine = AnalysisEngine.from_simulator(small_sim)
        with pytest.raises(ValueError, match="workers"):
            engine.build_from_catalog_parallel(catalog, DAYS, workers=0)


class TestProvenance:
    def test_recorded_and_round_tripped(self, small_sim, catalog, tmp_path):
        engine = _build(small_sim, catalog, workers=2, shard_by="day-district")
        prov = engine.forest.provenance
        assert prov["shard_by"] == "day-district"
        assert prov["days"] == list(DAYS)
        assert len(prov["groups"]) >= 1
        assert [r[0] for r in prov["day_cluster_ranges"]] == list(DAYS)
        path = tmp_path / "forest.bin"
        save_forest(engine.forest, path)
        loaded = load_forest(path, engine.forest.integrator)
        assert loaded.provenance == prov

    def test_legacy_forest_has_none(self, small_sim, catalog, tmp_path):
        legacy = AnalysisEngine.from_simulator(small_sim)
        legacy.build_from_catalog(catalog, DAYS)
        path = tmp_path / "legacy.bin"
        save_forest(legacy.forest, path)
        assert load_forest(path, legacy.forest.integrator).provenance is None

    def test_engine_json_records_execution(self, small_sim, catalog, tmp_path):
        """Worker count lives in engine.json, never in the forest."""
        import json

        engine = _build(small_sim, catalog, workers=2)
        engine.save(tmp_path / "model")
        meta = json.loads((tmp_path / "model" / "engine.json").read_text())
        assert meta["build"]["workers"] == 2
        assert meta["build"]["shard_by"] == "day"
        assert "workers" not in engine.forest.provenance


class TestQueryParity:
    def test_explain_counts_match_across_worker_counts(
        self, small_sim, catalog, tmp_path
    ):
        serial = _build(small_sim, catalog, workers=1)
        pooled = _build(small_sim, catalog, workers=2)
        results = []
        for engine in (serial, pooled):
            result = engine.query(
                engine.whole_city(), first_day=0, num_days=7, explain=True
            )
            stages = [
                (s.name, {k: v for k, v in s.metrics.items()})
                for s in result.explain.stages
            ]
            results.append(
                (
                    sorted(c.cluster_id for c in result.returned),
                    result.stats.input_clusters,
                    stages,
                )
            )
        assert results[0] == results[1]
