"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.simulate import SimulationConfig


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    code = main(
        ["generate", "--out", str(directory), "--scale", "small", "--months", "1"]
    )
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, trace_dir):
    directory = tmp_path_factory.mktemp("model")
    code = main(
        ["build", "--data", str(trace_dir), "--model", str(directory), "--days", "7"]
    )
    assert code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x", "--scale", "benchmark", "--seed", "3"]
        )
        assert args.scale == "benchmark"
        assert args.seed == 3

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--data", "d", "--model", "m"])
        assert args.strategy == "gui"
        assert args.days == 7
        assert not args.final_check

    def test_common_flags_on_every_subcommand(self):
        parser = build_parser()
        cases = {
            "generate": ["generate", "--out", "x"],
            "build": ["build", "--data", "d", "--model", "m"],
            "query": ["query", "--data", "d", "--model", "m"],
            "info": ["info", "--data", "d"],
            "bench": ["bench"],
            "stats": ["stats", "m.json"],
            "convert": ["convert", "m", "--to", "columnar"],
        }
        for command, argv in cases.items():
            args = parser.parse_args(
                argv + ["--log-level", "debug", "--metrics-out", "m.json"]
            )
            assert args.command == command
            assert args.log_level == "debug"
            assert str(args.metrics_out) == "m.json"


class TestGenerate(object):
    def test_trace_files_exist(self, trace_dir):
        assert (trace_dir / "catalog.json").exists()
        assert (trace_dir / "simulation.json").exists()
        assert (trace_dir / "D1.cps").exists()

    def test_months_validation(self, tmp_path, capsys):
        code = main(["generate", "--out", str(tmp_path), "--months", "99"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert captured.out == ""

    def test_config_is_small_profile(self, trace_dir):
        stored = json.loads((trace_dir / "simulation.json").read_text())
        config = SimulationConfig.from_dict(stored)
        assert config.month_lengths == (31,)


class TestBuildAndQuery:
    def test_model_files(self, model_dir):
        assert (model_dir / "forest.bin").exists()
        assert (model_dir / "cube.bin").exists()
        assert (model_dir / "engine.json").exists()

    def test_query_prints_report(self, trace_dir, model_dir, capsys):
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--strategy", "gui",
                "--final-check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "via gui" in out
        assert "Significant congestion clusters" in out

    def test_query_compare(self, trace_dir, model_dir, capsys):
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "all" in out and "pru" in out

    def test_info(self, trace_dir, capsys):
        assert main(["info", "--data", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "sensors:" in out
        assert "D1" in out

    def test_build_columnar_and_query(self, trace_dir, tmp_path, capsys):
        from repro.storage.columnar import sniff_format

        model = tmp_path / "model"
        code = main(
            [
                "build",
                "--data", str(trace_dir),
                "--model", str(model),
                "--days", "7",
                "--format", "columnar",
            ]
        )
        assert code == 0
        assert "(columnar forest)" in capsys.readouterr().out
        assert sniff_format(model / "forest.bin") == "columnar"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model),
                "--days", "3",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forest_io.bytes_mapped=" in out
        assert "forest_io.bytes_loaded=" in out


class TestConvert:
    @pytest.fixture()
    def copied_model(self, model_dir, tmp_path):
        import shutil

        target = tmp_path / "model"
        shutil.copytree(model_dir, target)
        return target

    def test_round_trip_preserves_bytes(self, copied_model, capsys):
        original = (copied_model / "forest.bin").read_bytes()
        assert main(["convert", str(copied_model), "--to", "columnar"]) == 0
        assert "pickle -> columnar" in capsys.readouterr().out
        assert (copied_model / "forest.bin").read_bytes() != original
        assert main(["convert", str(copied_model), "--to", "pickle"]) == 0
        assert "columnar -> pickle" in capsys.readouterr().out
        assert (copied_model / "forest.bin").read_bytes() == original

    def test_noop_convert(self, copied_model, capsys):
        assert main(["convert", str(copied_model), "--to", "pickle"]) == 0
        assert "already pickle; nothing to do" in capsys.readouterr().out

    def test_accepts_forest_file_path(self, copied_model, capsys):
        path = copied_model / "forest.bin"
        assert main(["convert", str(path), "--to", "columnar"]) == 0
        assert "converted" in capsys.readouterr().out

    def test_missing_model_exits_2(self, tmp_path, capsys):
        code = main(["convert", str(tmp_path / "nope"), "--to", "columnar"])
        assert code == 2
        assert "no forest file" in capsys.readouterr().err

    def test_corrupt_file_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "forest.bin"
        path.write_bytes(b"this is not a forest container")
        code = main(["convert", str(path), "--to", "columnar"])
        assert code == 2
        captured = capsys.readouterr()
        assert "not a forest file" in captured.err
        assert captured.err.count("\n") == 1  # one line, no traceback

    def test_future_version_one_line_error(self, copied_model, capsys):
        assert main(["convert", str(copied_model), "--to", "columnar"]) == 0
        capsys.readouterr()
        path = copied_model / "forest.bin"
        data = bytearray(path.read_bytes())
        data[4] = 9
        path.write_bytes(bytes(data))
        code = main(["convert", str(copied_model), "--to", "pickle"])
        assert code == 2
        captured = capsys.readouterr()
        assert "newer than this build" in captured.err
        assert captured.err.count("\n") == 1


class TestMetricsOut:
    def test_build_writes_extraction_snapshot(
        self, trace_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "build_metrics.json"
        code = main(
            [
                "build",
                "--data", str(trace_dir),
                "--model", str(tmp_path / "model"),
                "--days", "3",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        snapshot = obs.load_snapshot(metrics)
        names = {s["name"] for s in snapshot["spans"]}
        assert {"build.catalog", "extract.day"} <= names
        assert snapshot["counters"]["extract.records"] > 0
        assert snapshot["counters"]["extract.micro_clusters"] > 0

    def test_query_snapshot_and_stats_round_trip(
        self, trace_dir, model_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "query_metrics.json"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        snapshot = obs.load_snapshot(metrics)
        names = {s["name"] for s in snapshot["spans"]}
        assert {"query.run", "query.integrate", "integrate.fixpoint"} <= names
        counters = snapshot["counters"]
        assert "similarity.cache.hits" in counters
        assert "similarity.cache.misses" in counters
        assert counters["integration.comparisons"] > 0
        capsys.readouterr()

        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "integrate.fixpoint" in out
        assert "similarity.cache.hits" in out

        assert main(["stats", str(metrics), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_integration_comparisons_total counter" in out

    def test_bench_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "bench_metrics.json"
        code = main(
            [
                "bench",
                "--clusters", "40",
                "--repeats", "1",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        snapshot = obs.load_snapshot(metrics)
        names = {s["name"] for s in snapshot["spans"]}
        assert {
            "bench.workload",
            "bench.similarity_kernel",
            "bench.integration",
            "bench.naive_fixpoint",
        } <= names

    def test_stats_missing_file(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stats_rejects_non_snapshot(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text('{"workload": {}}')
        code = main(["stats", str(path)])
        assert code == 2
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_stats_corrupt_json_no_traceback(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        code = main(["stats", str(path)])
        assert code == 2
        captured = capsys.readouterr()
        assert "error" in captured.err and str(path) in captured.err
        assert captured.err.count("\n") == 1  # one line, no traceback

    def test_stats_unreadable_path(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path)])  # a directory, not a file
        assert code == 2
        assert "cannot read snapshot" in capsys.readouterr().err

    def test_observability_disabled_without_flag(self, trace_dir, capsys):
        # no --metrics-out: the global registry must stay untouched
        before = obs.registry().snapshot()
        assert main(["info", "--data", str(trace_dir)]) == 0
        assert obs.registry().snapshot() == before


class TestExplainAndTrace:
    def test_query_explain_prints_report(self, trace_dir, model_dir, capsys):
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query explain: strategy=gui" in out
        assert "select" in out and "integrate" in out
        assert "io: model_bytes=" in out

    def test_query_explain_out_json(
        self, trace_dir, model_dir, tmp_path, capsys
    ):
        path = tmp_path / "explain.json"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--explain-out", str(path),
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        names = [s["name"] for s in doc["stages"]]
        assert "select" in names and "integrate" in names
        integrate = next(s for s in doc["stages"] if s["name"] == "integrate")
        assert integrate["comparisons"] > 0
        assert integrate["cache_hits"] + integrate["cache_misses"] > 0
        assert doc["io"]["model_bytes"] > 0

    def test_query_trace_out(self, trace_dir, model_dir, tmp_path, capsys):
        path = tmp_path / "q.trace.json"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--trace-out", str(path),
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {"query.run", "query.integrate"} <= {
            e["name"] for e in complete
        }
        for event in complete:
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)

    def test_stats_converts_snapshot_to_trace(
        self, trace_dir, model_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "m.json"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        trace = tmp_path / "t.trace.json"
        assert main(["stats", str(metrics), "--trace-out", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestProfileFlag:
    def test_query_profile_cprofile(
        self, trace_dir, model_dir, tmp_path, capsys
    ):
        out = tmp_path / "q.prof"
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "3",
                "--profile", "cprofile",
                "--profile-out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "profile (cprofile)" in captured.err
        assert out.exists()

    def test_profile_choices_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--profile", "perf"])


SLO_YAML = "slos:\n  - name: avail\n    kind: availability\n    objective: 0.99\n"


class TestSloCheckCli:
    def _snapshot(self, tmp_path, requests=1000.0, errors=0.0):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                {
                    "counters": {
                        "serve.requests": requests,
                        "serve.errors": errors,
                    },
                    "gauges": {},
                    "histograms": {},
                }
            )
        )
        return path

    def _config(self, tmp_path, text=SLO_YAML):
        path = tmp_path / "slo.yaml"
        path.write_text(text)
        return path

    def test_healthy_snapshot_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "slo", "check", str(self._snapshot(tmp_path)),
                "--config", str(self._config(tmp_path)),
            ]
        )
        assert code == 0
        assert "overall: OK" in capsys.readouterr().out

    def test_burning_snapshot_exits_one(self, tmp_path, capsys):
        snapshot = self._snapshot(tmp_path, requests=1000.0, errors=300.0)
        code = main(
            ["slo", "check", str(snapshot), "--config", str(self._config(tmp_path))]
        )
        assert code == 1
        assert "overall: PAGE" in capsys.readouterr().out

    def test_json_output_round_trips(self, tmp_path, capsys):
        code = main(
            [
                "slo", "check", str(self._snapshot(tmp_path)),
                "--config", str(self._config(tmp_path)),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "OK"
        assert doc["source"] == "lifetime"

    def test_tsdb_directory_target(self, tmp_path, capsys):
        from repro.obs.tsdb import TimeSeriesStore

        segments = tmp_path / "tsdb"
        store = TimeSeriesStore(segment_dir=segments)
        for i in range(10):
            store.ingest(
                {
                    "t": 1_000_000.0 + i * 60,
                    "series": {
                        "serve.requests": float((i + 1) * 60),
                        "serve.errors": 0.0,
                    },
                    "kinds": {
                        "serve.requests": "counter",
                        "serve.errors": "counter",
                    },
                }
            )
        code = main(
            ["slo", "check", str(segments), "--config", str(self._config(tmp_path))]
        )
        assert code == 0
        assert "overall: OK" in capsys.readouterr().out

    def test_snapshot_without_config_exits_two(self, tmp_path, capsys):
        code = main(["slo", "check", str(self._snapshot(tmp_path))])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--config" in err

    def test_missing_config_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "slo", "check", str(self._snapshot(tmp_path)),
                "--config", str(tmp_path / "nope.yaml"),
            ]
        )
        assert code == 2
        assert "no such SLO config" in capsys.readouterr().err

    def test_corrupt_config_exits_two(self, tmp_path, capsys):
        config = self._config(tmp_path, text="slos:\n\t- bad\n")
        code = main(
            ["slo", "check", str(self._snapshot(tmp_path)), "--config", str(config)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_server_exits_two(self, capsys):
        code = main(["slo", "check", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_url_with_config_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "slo", "check", "http://127.0.0.1:9",
                "--config", str(self._config(tmp_path)),
            ]
        )
        assert code == 2
        assert "--config only applies" in capsys.readouterr().err

    def test_empty_tsdb_dir_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "tsdb"
        empty.mkdir()
        code = main(
            ["slo", "check", str(empty), "--config", str(self._config(tmp_path))]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestLoadgenCli:
    def test_unreachable_server_exits_two(self, capsys):
        code = main(
            ["loadgen", "http://127.0.0.1:9", "--duration", "1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "cannot reach server" in err

    def test_open_mode_needs_rate(self, capsys):
        code = main(
            ["loadgen", "http://127.0.0.1:9", "--mode", "open", "--duration", "1"]
        )
        assert code == 2
        assert "positive --rate" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.url == "http://127.0.0.1:8321"
        assert args.mode == "closed"
        assert args.duration == 10.0
        assert args.concurrency == 4
        assert str(args.out) == "BENCH_load.json"

    def test_serve_slo_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "--data", str(tmp_path),
                "--model", str(tmp_path),
                "--slo", "slo.yaml",
                "--tsdb-dir", str(tmp_path / "tsdb"),
                "--sample-interval", "0.5",
            ]
        )
        assert str(args.slo) == "slo.yaml"
        assert args.sample_interval == 0.5

    def test_bad_sample_interval_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--data", str(tmp_path),
                "--model", str(tmp_path),
                "--sample-interval", "0",
            ]
        )
        assert code == 2
        assert "sample-interval" in capsys.readouterr().err

    def test_serve_prof_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "--data", str(tmp_path),
                "--model", str(tmp_path),
                "--prof",
                "--prof-dir", str(tmp_path / "prof"),
                "--prof-hz", "31",
            ]
        )
        assert args.prof is True
        assert args.prof_hz == 31.0
        assert args.prof_dir == tmp_path / "prof"

    def test_prof_dir_without_prof_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--data", str(tmp_path),
                "--model", str(tmp_path),
                "--prof-dir", str(tmp_path / "prof"),
            ]
        )
        assert code == 2
        assert "--prof-dir requires --prof" in capsys.readouterr().err

    def test_bad_prof_hz_exits_two(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--data", str(tmp_path),
                "--model", str(tmp_path),
                "--prof",
                "--prof-hz", "0",
            ]
        )
        assert code == 2
        assert "prof-hz" in capsys.readouterr().err


class TestProfCommand:
    @pytest.fixture()
    def prof_dir(self, tmp_path):
        """Two persisted windows with distinct hot frames."""
        from repro.obs.contprof import ContinuousProfiler

        class _Frame:
            f_back = None

            def __init__(self, name):
                self.f_globals = {"__name__": "app"}
                self.f_code = type("C", (), {"co_name": name})()

        directory = tmp_path / "prof"
        profiler = ContinuousProfiler(
            hz=10, window_seconds=1, segment_dir=directory
        )
        profiler.sample_once(now=0.0, frames={1: _Frame("alpha")})
        profiler.sample_once(now=10.0, frames={1: _Frame("beta")})
        profiler.sample_once(now=20.0, frames={})  # folds window 2
        return directory

    def _ids(self, prof_dir):
        from repro.obs.contprof import load_prof_segments

        return [w.id for w in load_prof_segments(prof_dir)]

    def test_ls_lists_windows(self, prof_dir, capsys):
        assert main(["prof", "ls", "--prof-dir", str(prof_dir)]) == 0
        out = capsys.readouterr().out
        assert "window_id" in out
        for window_id in self._ids(prof_dir):
            assert window_id in out

    def test_show_merges_by_default(self, prof_dir, capsys):
        assert main(["prof", "show", "--prof-dir", str(prof_dir)]) == 0
        out = capsys.readouterr().out
        assert "profile window merged" in out
        assert "app.alpha" in out and "app.beta" in out
        assert "collapsed stacks (flamegraph.pl):" in out

    def test_show_specific_window(self, prof_dir, capsys):
        first = self._ids(prof_dir)[0]
        assert main(["prof", "show", first, "--prof-dir", str(prof_dir)]) == 0
        out = capsys.readouterr().out
        assert "app.alpha" in out and "app.beta" not in out

    def test_show_unknown_window_exits_two(self, prof_dir, capsys):
        code = main(
            ["prof", "show", "pw-999999-nope", "--prof-dir", str(prof_dir)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no profile window" in err and "repro prof ls" in err

    def test_diff_renders_frame_delta(self, prof_dir, capsys):
        first, second = self._ids(prof_dir)
        assert main(
            ["prof", "diff", first, second, "--prof-dir", str(prof_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert f"profile diff {first} -> {second}" in out
        assert "app.alpha" in out and "app.beta" in out
        assert "-100.0%" in out and "+100.0%" in out

    def test_export_collapsed_to_stdout(self, prof_dir, capsys):
        first = self._ids(prof_dir)[0]
        assert main(
            [
                "prof", "export", first,
                "--prof-dir", str(prof_dir),
                "--format", "collapsed",
            ]
        ) == 0
        assert capsys.readouterr().out == "app.alpha 1\n"

    def test_export_speedscope_to_file(self, prof_dir, tmp_path, capsys):
        out_path = tmp_path / "profile.speedscope.json"
        assert main(
            [
                "prof", "export",
                "--prof-dir", str(prof_dir),
                "--format", "speedscope",
                "--out", str(out_path),
            ]
        ) == 0
        assert "speedscope profile written" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["endValue"] == 2

    def test_missing_dir_exits_two(self, tmp_path, capsys):
        code = main(["prof", "ls", "--prof-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
