"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.simulate import SimulationConfig


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    code = main(
        ["generate", "--out", str(directory), "--profile", "small", "--months", "1"]
    )
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, trace_dir):
    directory = tmp_path_factory.mktemp("model")
    code = main(
        ["build", "--data", str(trace_dir), "--model", str(directory), "--days", "7"]
    )
    assert code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x", "--profile", "benchmark", "--seed", "3"]
        )
        assert args.profile == "benchmark"
        assert args.seed == 3

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--data", "d", "--model", "m"])
        assert args.strategy == "gui"
        assert args.days == 7
        assert not args.final_check


class TestGenerate(object):
    def test_trace_files_exist(self, trace_dir):
        assert (trace_dir / "catalog.json").exists()
        assert (trace_dir / "simulation.json").exists()
        assert (trace_dir / "D1.cps").exists()

    def test_months_validation(self, tmp_path, capsys):
        code = main(["generate", "--out", str(tmp_path), "--months", "99"])
        assert code == 2
        assert "error" in capsys.readouterr().out

    def test_config_is_small_profile(self, trace_dir):
        stored = json.loads((trace_dir / "simulation.json").read_text())
        config = SimulationConfig.from_dict(stored)
        assert config.month_lengths == (31,)


class TestBuildAndQuery:
    def test_model_files(self, model_dir):
        assert (model_dir / "forest.bin").exists()
        assert (model_dir / "cube.bin").exists()
        assert (model_dir / "engine.json").exists()

    def test_query_prints_report(self, trace_dir, model_dir, capsys):
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--strategy", "gui",
                "--final-check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "via gui" in out
        assert "Significant congestion clusters" in out

    def test_query_compare(self, trace_dir, model_dir, capsys):
        code = main(
            [
                "query",
                "--data", str(trace_dir),
                "--model", str(model_dir),
                "--days", "7",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "all" in out and "pru" in out

    def test_info(self, trace_dir, capsys):
        assert main(["info", "--data", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "sensors:" in out
        assert "D1" in out
