"""Tests for the high-level analysis engine."""

import pytest

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.core.records import RecordBatch
from repro.simulate import SimulationConfig, TrafficSimulator


@pytest.fixture(scope="module")
def engine(small_sim):
    eng = AnalysisEngine.from_simulator(small_sim)
    eng.build_from_simulator(small_sim, days=range(7))
    return eng


# session-scoped small_sim is defined in conftest; redeclare module fixture
@pytest.fixture(scope="module")
def small_sim():
    return TrafficSimulator(SimulationConfig.small())


class TestBuild:
    def test_built_days(self, engine):
        assert engine.built_days == frozenset(range(7))

    def test_forest_populated(self, engine):
        assert engine.forest.stats().num_micro > 0

    def test_cube_populated(self, engine):
        assert engine.cube.total_severity() > 0

    def test_duplicate_day_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.add_day_records(0, RecordBatch.empty())

    def test_build_from_catalog(self, tmp_path):
        config = SimulationConfig.from_dict(
            {**SimulationConfig.small().to_dict(), "month_lengths": (3,)}
        )
        sim = TrafficSimulator(config)
        catalog = sim.materialize_catalog(tmp_path)
        eng = AnalysisEngine.from_simulator(sim)
        built = eng.build_from_catalog(catalog)
        assert built == 3
        assert eng.built_days == frozenset(range(3))


class TestQuery:
    def test_query_requires_built_days(self, engine):
        with pytest.raises(ValueError):
            engine.query(engine.whole_city(), first_day=0, num_days=30)

    def test_all_strategies_run(self, engine):
        for strategy in ("all", "pru", "gui"):
            result = engine.query(
                engine.whole_city(), 0, 7, strategy=strategy
            )
            assert result.strategy == strategy

    def test_default_delta_s_from_config(self, small_sim):
        eng = AnalysisEngine.from_simulator(
            small_sim, EngineConfig(delta_s=0.10)
        )
        eng.build_from_simulator(small_sim, days=range(2))
        result = eng.query(eng.whole_city(), 0, 2)
        assert result.threshold.delta_s == 0.10

    def test_final_check_guarantees_precision(self, engine):
        result = engine.query(
            engine.whole_city(), 0, 7, strategy="gui", final_check=True
        )
        assert all(result.threshold.is_significant(c) for c in result.returned)

    def test_describe_mentions_highway(self, engine):
        result = engine.query(engine.whole_city(), 0, 7, strategy="all")
        sig = result.significant()
        assert sig, "expected significant clusters in the small world"
        text = engine.describe(sig[0])
        assert "Fwy" in text and "severity" in text


class TestEngineConfig:
    def test_defaults_follow_fig14(self):
        config = EngineConfig()
        assert config.distance_miles == 1.5
        assert config.time_gap_minutes == 15.0
        assert config.similarity_threshold == 0.5
        assert config.balance_function == "avg"
        assert config.delta_s == 0.05

    def test_integrator_built_from_config(self):
        config = EngineConfig(similarity_threshold=0.3, balance_function="max")
        integrator = config.integrator()
        assert integrator.threshold == 0.3
        assert integrator.similarity.name == "max"
