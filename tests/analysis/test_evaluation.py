"""Tests for precision/recall scoring."""

import pytest

from repro.analysis.evaluation import ground_truth, score_strategy
from repro.core.query import AnalyticalQuery, QueryResult, QueryStats
from repro.core.significance import SignificanceThreshold
from repro.spatial.regions import QueryRegion

from tests.conftest import make_cluster


def result_of(strategy, clusters, registry=None, bar_sensors=10):
    region = QueryRegion("r", list(range(bar_sensors)))
    query = AnalyticalQuery.over_days(region, 0, 1)
    return QueryResult(
        query=query,
        strategy=strategy,
        returned=clusters,
        threshold=SignificanceThreshold(0.05, 24.0, bar_sensors),  # bar = 12
        stats=QueryStats(),
        registry=registry or {},
    )


def micro(severity, cid):
    return make_cluster({1: severity}, cluster_id=cid)


def macro(children, cid):
    total = sum(c.severity() for c in children)
    return make_cluster(
        {1: total},
        cluster_id=cid,
        members=tuple(c.cluster_id for c in children),
    )


class TestGroundTruth:
    def test_requires_all_strategy(self):
        with pytest.raises(ValueError):
            ground_truth(result_of("gui", []))

    def test_significant_only(self):
        clusters = [micro(100.0, 1), micro(1.0, 2)]
        truth = ground_truth(result_of("all", clusters))
        assert [c.cluster_id for c in truth] == [1]


class TestScoring:
    def test_perfect_strategy(self):
        big = micro(100.0, 1)
        small = micro(1.0, 2)
        all_result = result_of("all", [big, small])
        score = score_strategy(all_result, all_result)
        assert score.recall == 1.0
        assert score.precision == pytest.approx(0.5)

    def test_empty_truth_gives_full_recall(self):
        all_result = result_of("all", [micro(1.0, 1)])
        score = score_strategy(result_of("pru", []), all_result)
        assert score.recall == 1.0
        assert score.ground_truth == 0

    def test_empty_returned_precision_zero(self):
        all_result = result_of("all", [micro(100.0, 1)])
        score = score_strategy(result_of("pru", []), all_result)
        assert score.precision == 0.0
        assert score.recall == 0.0

    def test_recall_via_leaf_overlap(self):
        m1, m2 = micro(60.0, 1), micro(60.0, 2)
        gt_macro = macro([m1, m2], 10)
        all_result = result_of(
            "all", [gt_macro], registry={1: m1, 2: m2, 10: gt_macro}
        )
        # pru returns a fragment containing only m1, still significant
        fragment = macro([m1], 20)
        pru_result = result_of("pru", [fragment], registry={1: m1, 20: fragment})
        score = score_strategy(pru_result, all_result)
        assert score.recall == 1.0

    def test_insignificant_fragment_does_not_count(self):
        m1, m2 = micro(60.0, 1), micro(60.0, 2)
        gt_macro = macro([m1, m2], 10)
        all_result = result_of(
            "all", [gt_macro], registry={1: m1, 2: m2, 10: gt_macro}
        )
        weak = micro(5.0, 1)  # shares the leaf but below the bar (12)
        pru_result = result_of("pru", [weak], registry={1: weak})
        score = score_strategy(pru_result, all_result)
        assert score.recall == 0.0

    def test_disjoint_leaves_not_retrieved(self):
        m1 = micro(60.0, 1)
        all_result = result_of("all", [m1], registry={1: m1})
        other = micro(60.0, 99)
        score = score_strategy(
            result_of("gui", [other], registry={99: other}), all_result
        )
        assert score.recall == 0.0
        assert score.precision == 1.0

    def test_counts_exposed(self):
        big, small = micro(100.0, 1), micro(1.0, 2)
        all_result = result_of("all", [big, small], registry={1: big, 2: small})
        score = score_strategy(all_result, all_result)
        assert score.returned == 2
        assert score.returned_significant == 1
        assert score.ground_truth == 1
        assert score.retrieved == 1
