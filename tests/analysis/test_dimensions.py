"""Tests for context-dimension joins (incidents)."""

import pytest

from repro.analysis.dimensions import IncidentDimension, match_incidents
from repro.simulate.congestion import IncidentReport
from repro.temporal.windows import WindowSpec

from tests.conftest import line_network, make_cluster


def cluster_at(sensors, start_hour, hours=1.0):
    spec = WindowSpec()
    first = spec.window_at(0, start_hour, 0) % spec.windows_per_day
    windows = {first + k: 5.0 for k in range(int(hours * 12))}
    total = sum(windows.values())
    spatial = {s: total / len(sensors) for s in sensors}
    return make_cluster(spatial, windows)


class TestMatchIncidents:
    def test_colocated_cotemporal_matches(self):
        net = line_network(10)
        cluster = cluster_at([3, 4], start_hour=8)
        incident = IncidentReport(0, 4, 8 * 60 + 10, 30.0)
        matches = match_incidents(cluster, 0, [incident], net)
        assert len(matches) == 1
        assert matches[0].distance_miles == 0.0
        assert matches[0].minutes_apart == 0.0

    def test_far_away_rejected(self):
        net = line_network(10)
        cluster = cluster_at([0, 1], start_hour=8)
        incident = IncidentReport(0, 9, 8 * 60, 30.0)  # 8 miles away
        assert match_incidents(cluster, 0, [incident], net) == []

    def test_wrong_time_rejected(self):
        net = line_network(10)
        cluster = cluster_at([3, 4], start_hour=8)
        incident = IncidentReport(0, 4, 18 * 60, 30.0)  # evening
        assert match_incidents(cluster, 0, [incident], net) == []

    def test_lagged_report_within_tolerance(self):
        net = line_network(10)
        cluster = cluster_at([3, 4], start_hour=8, hours=1.0)
        # incident 20 minutes before the congestion starts
        incident = IncidentReport(0, 4, 7 * 60 + 30, 10.0)
        matches = match_incidents(cluster, 0, [incident], net, max_minutes=30.0)
        assert len(matches) == 1
        assert matches[0].minutes_apart == pytest.approx(20.0)

    def test_ordinal_clipped_to_highway(self):
        net = line_network(10)
        cluster = cluster_at([9], start_hour=8)
        incident = IncidentReport(0, 99, 8 * 60, 30.0)  # bogus ordinal
        matches = match_incidents(cluster, 0, [incident], net)
        assert len(matches) == 1

    def test_sorted_by_distance(self):
        net = line_network(10)
        cluster = cluster_at([3, 4, 5], start_hour=8)
        near = IncidentReport(0, 4, 8 * 60, 20.0)
        far = IncidentReport(0, 6, 8 * 60, 20.0)
        matches = match_incidents(cluster, 0, [near, far], net)
        assert [m.incident for m in matches] == [near, far]


class TestIncidentDimension:
    def test_add_and_count(self):
        net = line_network(10)
        dim = IncidentDimension(net)
        dim.add_day(0, [IncidentReport(0, 1, 60, 30.0)])
        dim.add_day(0, [IncidentReport(0, 2, 90, 30.0)])
        assert dim.total_incidents() == 2
        assert len(dim.day_incidents(0)) == 2
        assert dim.day_incidents(5) == []

    def test_attribute_across_days(self):
        net = line_network(10)
        dim = IncidentDimension(net)
        dim.add_day(0, [IncidentReport(0, 4, 8 * 60, 30.0)])
        dim.add_day(1, [IncidentReport(0, 4, 8 * 60, 30.0)])
        cluster = cluster_at([3, 4], start_hour=8)
        matches = dim.attribute(cluster, [0, 1])
        assert {m.day for m in matches} == {0, 1}

    def test_split_clusters(self):
        net = line_network(10)
        dim = IncidentDimension(net)
        dim.add_day(0, [IncidentReport(0, 4, 8 * 60, 30.0)])
        related_cluster = cluster_at([4], start_hour=8)
        recurring_cluster = cluster_at([9], start_hour=17)
        related, recurring = dim.split_clusters(
            [related_cluster, recurring_cluster], [0]
        )
        assert related == [related_cluster]
        assert recurring == [recurring_cluster]

    def test_simulator_log_joins(self, small_sim):
        # at least some incidents of a simulated day should be attributable
        # to that day's extracted clusters
        import numpy as np

        from repro.core.events import EventExtractor
        from repro.core.records import RecordBatch

        day = 2
        chunk = small_sim.simulate_day(day)
        mask = chunk.atypical_mask()
        batch = RecordBatch(
            chunk.sensor_ids[mask],
            chunk.windows[mask],
            chunk.congested[mask].astype(np.float64),
        )
        clusters = EventExtractor(
            small_sim.network, window_spec=small_sim.window_spec
        ).extract_micro_clusters(batch)
        dim = IncidentDimension(small_sim.network, small_sim.window_spec)
        dim.add_day(day, small_sim.incident_log(day))
        if dim.total_incidents():
            related, _ = dim.split_clusters(clusters, [day])
            assert related, "expected incident congestion to be attributed"
