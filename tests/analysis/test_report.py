"""Tests for analyst reports."""

import pytest

from repro.analysis.report import build_report, describe_cluster, weather_breakdown
from repro.core.query import AnalyticalQuery, QueryResult, QueryStats
from repro.core.significance import SignificanceThreshold
from repro.spatial.regions import QueryRegion
from repro.temporal.windows import WindowSpec

from tests.conftest import line_network, make_cluster


def sample_result():
    region = QueryRegion("r", list(range(10)))
    query = AnalyticalQuery.over_days(region, 0, 1)
    big = make_cluster(
        {1: 182.0, 2: 97.0},
        {97: 150.0, 98: 129.0},
        cluster_id=1,
    )
    small = make_cluster({3: 1.0}, {10: 1.0}, cluster_id=2)
    return QueryResult(
        query=query,
        strategy="all",
        returned=[big, small],
        threshold=SignificanceThreshold(0.05, 24.0, 10),  # bar = 12
        stats=QueryStats(),
    )


class TestDescribeCluster:
    def test_fields(self):
        net = line_network(10)
        cluster = sample_result().returned[0]
        report = describe_cluster(cluster, net, WindowSpec())
        assert report.worst_sensor == 1
        assert report.worst_sensor_severity == 182.0
        assert report.severity == pytest.approx(279.0)
        assert report.num_sensors == 2
        assert report.highways == ("Fwy TestE",)

    def test_start_label_is_8am(self):
        # window 97 = 8:05am
        net = line_network(10)
        cluster = sample_result().returned[0]
        report = describe_cluster(cluster, net, WindowSpec())
        assert report.start_label == "08:05-08:10"

    def test_top_lists(self):
        net = line_network(10)
        report = describe_cluster(sample_result().returned[0], net, WindowSpec(), top_k=1)
        assert report.top_sensors == ((1, 182.0),)
        assert report.top_windows[0][1] == 150.0


class TestBuildReport:
    def test_significant_only(self):
        net = line_network(10)
        report = build_report(sample_result(), net, WindowSpec())
        assert len(report) == 1

    def test_limit(self):
        net = line_network(10)
        report = build_report(sample_result(), net, WindowSpec(), limit=0)
        assert len(report) == 0

    def test_to_text(self):
        net = line_network(10)
        text = build_report(sample_result(), net, WindowSpec()).to_text()
        assert "cluster 1" in text
        assert "worst segment s1" in text

    def test_to_text_empty(self):
        net = line_network(10)
        report = build_report(sample_result(), net, WindowSpec(), limit=0)
        assert "(none)" in report.to_text()


class TestWeatherBreakdown:
    def test_grouping(self):
        severities = {0: 10.0, 1: 20.0, 2: 60.0}
        weather = {0: "clear", 1: "clear", 2: "rain"}
        result = weather_breakdown(severities, weather)
        assert result["clear"] == (2, 15.0)
        assert result["rain"] == (1, 60.0)

    def test_unknown_weather(self):
        result = weather_breakdown({0: 5.0}, {})
        assert result["unknown"] == (1, 5.0)
