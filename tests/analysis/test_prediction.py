"""Tests for the recurrence predictor (the paper's future-work extension)."""

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.prediction import RecurrencePredictor
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.simulate import SimulationConfig, TrafficSimulator
from repro.temporal.hierarchy import Calendar

from tests.conftest import make_cluster


def toy_forest(num_days=14, weekday_only=True):
    """A forest with one recurring event (sensors 1-2, windows 100-101)
    plus one-off noise."""
    calendar = Calendar(month_lengths=(28,), month_names=("m",))
    forest = AtypicalForest(calendar, integrator=ClusterIntegrator(0.5))
    for day in range(num_days):
        clusters = []
        if not (weekday_only and calendar.is_weekend(day)):
            clusters.append(
                make_cluster(
                    {1: 60.0, 2: 40.0},
                    {100: 60.0, 101: 40.0},
                    cluster_id=forest.ids.next_id(),
                )
            )
        # noise at a different place/time each day (never recurring)
        clusters.append(
            make_cluster(
                {50 + day: 10.0},
                {200 + day: 10.0},
                cluster_id=forest.ids.next_id(),
            )
        )
        forest.add_day(day, clusters)
    return forest, calendar


class TestFit:
    def test_learns_the_recurring_pattern(self):
        forest, _ = toy_forest()
        predictor = RecurrencePredictor(forest, min_daily_severity=50.0)
        patterns = predictor.fit(range(14))
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.sensor_ids == frozenset({1, 2})
        assert pattern.core_sensor == 1
        assert pattern.start_window == 100

    def test_weekday_weekend_split(self):
        forest, calendar = toy_forest()
        predictor = RecurrencePredictor(forest)
        pattern = predictor.fit(range(14))[0]
        assert pattern.weekday_probability == pytest.approx(1.0)
        assert pattern.weekend_probability == pytest.approx(0.0)

    def test_mean_severity(self):
        forest, _ = toy_forest()
        predictor = RecurrencePredictor(forest)
        pattern = predictor.fit(range(14))[0]
        assert pattern.mean_severity == pytest.approx(100.0)

    def test_noise_below_support_ignored(self):
        forest, _ = toy_forest()
        predictor = RecurrencePredictor(forest, min_support_days=3)
        patterns = predictor.fit(range(14))
        assert all(p.mean_severity > 50 for p in patterns)

    def test_empty_training_rejected(self):
        forest, _ = toy_forest()
        with pytest.raises(ValueError):
            RecurrencePredictor(forest).fit([])


class TestPredict:
    def test_unfitted_rejected(self):
        forest, _ = toy_forest()
        with pytest.raises(ValueError):
            RecurrencePredictor(forest).predict(15)

    def test_weekday_forecast(self):
        forest, calendar = toy_forest()
        predictor = RecurrencePredictor(forest)
        predictor.fit(range(14))
        weekday = next(d for d in range(14, 21) if not calendar.is_weekend(d))
        forecasts = predictor.predict(weekday)
        assert len(forecasts) == 1
        assert forecasts[0].probability == pytest.approx(1.0)
        assert forecasts[0].expected_severity == pytest.approx(100.0)

    def test_weekend_forecast_suppressed(self):
        forest, calendar = toy_forest()
        predictor = RecurrencePredictor(forest)
        predictor.fit(range(14))
        weekend = next(d for d in range(14, 21) if calendar.is_weekend(d))
        assert predictor.predict(weekend) == []


class TestScore:
    def test_hit_on_recurring_day(self):
        forest, calendar = toy_forest(num_days=21)
        predictor = RecurrencePredictor(forest)
        predictor.fit(range(14))
        weekday = next(d for d in range(14, 21) if not calendar.is_weekend(d))
        score = predictor.score(weekday)
        assert score.hits == 1
        assert score.false_alarms == 0
        assert score.recall == 1.0

    def test_false_alarm_when_event_absent(self):
        forest, calendar = toy_forest(num_days=21, weekday_only=True)
        predictor = RecurrencePredictor(forest)
        predictor.fit(range(14))
        # force a forecast onto a weekend day where the event never fires
        weekend = next(d for d in range(14, 21) if calendar.is_weekend(d))
        score = predictor.score(weekend, min_probability=0.0)
        assert score.false_alarms >= 1


class TestOnSimulatedCity:
    def test_dominant_corridor_predictable(self):
        sim = TrafficSimulator(SimulationConfig.small())
        engine = AnalysisEngine.from_simulator(sim)
        engine.build_from_simulator(sim, days=range(21))
        predictor = RecurrencePredictor(
            engine.forest, min_support_days=5, min_daily_severity=300.0
        )
        patterns = predictor.fit(range(14))
        assert patterns, "expected recurring patterns in the simulated city"
        # the dominant corridor (highways 0/1) must be among the patterns
        dominant = patterns[0]
        highways = {sim.network[s].highway_id for s in dominant.sensor_ids}
        assert highways & {0, 1}
        assert dominant.weekday_probability > 0.5

        # forecasts on held-out weekdays should mostly hit
        scores = [
            predictor.score(day)
            for day in range(14, 21)
            if not sim.calendar.is_weekend(day)
        ]
        assert sum(s.hits for s in scores) >= sum(s.false_alarms for s in scores)
