"""End-to-end pipeline invariants on the small simulated world.

These tests exercise the full Fig. 2 pipeline — simulate, extract,
integrate, query — and check the paper's qualitative claims rather than
individual functions.
"""

import numpy as np
import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.evaluation import score_strategy
from repro.core.records import RecordBatch
from repro.simulate import SimulationConfig, TrafficSimulator
from repro.spatial.regions import QueryRegion


@pytest.fixture(scope="module")
def world():
    sim = TrafficSimulator(SimulationConfig.small())
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_simulator(sim, days=range(14))
    return sim, engine


@pytest.fixture(scope="module")
def results(world):
    _, engine = world
    region = engine.whole_city()
    return {
        s: engine.query(region, 0, 14, strategy=s) for s in ("all", "pru", "gui")
    }


class TestPipelineInvariants:
    def test_severity_conservation(self, world, results):
        # total severity of All's clusters == total atypical severity
        sim, engine = world
        total = sum(
            sim.simulate_day_matrix(d).sum() for d in range(14)
        )
        integrated = sum(c.severity() for c in results["all"].returned)
        assert integrated == pytest.approx(total, rel=1e-6)

    def test_cube_matches_records(self, world):
        sim, engine = world
        total = sum(sim.simulate_day_matrix(d).sum() for d in range(14))
        assert engine.cube.total_severity() == pytest.approx(total, rel=1e-6)

    def test_ground_truth_exists(self, results):
        assert len(results["all"].significant()) >= 2

    def test_input_ordering(self, results):
        # Pru keeps the least, Gui keeps less than All
        assert (
            results["pru"].stats.input_clusters
            < results["gui"].stats.input_clusters
            <= results["all"].stats.input_clusters
        )

    def test_gui_prunes_something(self, results):
        assert results["gui"].stats.pruned_clusters > 0

    def test_all_recall_is_one(self, results):
        assert score_strategy(results["all"], results["all"]).recall == 1.0

    def test_gui_recall_is_one(self, results):
        # the paper's no-false-negative claim (Property 5)
        assert score_strategy(results["gui"], results["all"]).recall == 1.0

    def test_pru_misses_clusters(self, results):
        score = score_strategy(results["pru"], results["all"])
        assert score.recall < 1.0

    def test_pru_precision_competitive(self, results):
        # in the paper Pru has the highest precision; on the tiny test
        # world the margin can vanish, so allow a small tolerance (the
        # benchmark harness checks the full-scale ordering)
        scores = {s: score_strategy(r, results["all"]) for s, r in results.items()}
        assert scores["pru"].precision >= scores["all"].precision - 0.1

    def test_gui_final_check_perfect_precision(self, world):
        _, engine = world
        result = engine.query(
            engine.whole_city(), 0, 14, strategy="gui", final_check=True
        )
        assert all(result.threshold.is_significant(c) for c in result.returned)

    def test_dominant_corridor_found(self, world, results):
        # the dominant AM/PM monsters on corridor 0 must be the top two
        sim, engine = world
        top_two = results["all"].significant()[:2]
        for cluster in top_two:
            highways = {
                engine.network[s].highway_id for s in cluster.spatial
            }
            assert highways & {0, 1}

    def test_morning_evening_separated(self, world, results):
        # Example 2: the AM and PM dominants stay distinct clusters; any
        # sensors they share (absorbed roadside minors near crossings)
        # must carry a negligible share of the severity
        top_two = results["all"].significant()[:2]
        a, b = top_two
        shared = a.sensor_ids & b.sensor_ids
        for cluster in (a, b):
            shared_severity = sum(cluster.spatial[s] for s in shared)
            assert shared_severity < 0.1 * cluster.severity()

    def test_significant_counts_decrease_with_delta_s(self, world):
        _, engine = world
        counts = []
        for delta_s in (0.02, 0.05, 0.10, 0.20):
            result = engine.query(
                engine.whole_city(), 0, 14, strategy="all", delta_s=delta_s
            )
            counts.append(len(result.significant()))
        assert counts == sorted(counts, reverse=True)

    def test_subregion_query(self, world):
        sim, engine = world
        corridor0 = QueryRegion(
            "corridor0",
            list(sim.network.highway_sensors(0)) + list(sim.network.highway_sensors(1)),
        )
        result = engine.query(corridor0, 0, 7, strategy="all")
        for cluster in result.returned:
            assert cluster.intersects_sensors(corridor0.sensor_ids)


class TestStorageRoundTrip:
    def test_catalog_pipeline_equals_direct(self, tmp_path):
        config = SimulationConfig.from_dict(
            {**SimulationConfig.small().to_dict(), "month_lengths": (5,)}
        )
        sim = TrafficSimulator(config)
        catalog = sim.materialize_catalog(tmp_path)

        direct = AnalysisEngine.from_simulator(sim)
        direct.build_from_simulator(sim, days=range(5))
        stored = AnalysisEngine.from_simulator(sim)
        stored.build_from_catalog(catalog)

        r1 = direct.query(direct.whole_city(), 0, 5, strategy="all")
        r2 = stored.query(stored.whole_city(), 0, 5, strategy="all")
        assert sorted(c.severity() for c in r1.returned) == pytest.approx(
            sorted(c.severity() for c in r2.returned)
        )
