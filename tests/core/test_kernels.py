"""Property tests for the array kernels behind the similarity fast path.

The vectorized kernels (:mod:`repro.core.kernels`) and the scalar Eq. 2-4
path promise more than closeness: all severity sums run in ascending-key
order, so scalar, one-vs-many and all-pairs results are *bit-identical*.
These tests pin both contracts — 1e-12 agreement under adversarial
hypothesis inputs for every balance function, and exact equality between
the kernel variants — plus the algebraic properties (commutative /
associative merge, Properties 2-3) under the array representation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.cluster import AtypicalCluster
from repro.core.features import SpatialFeature, TemporalFeature
from repro.core.integration import SimilarityCache, integrate
from repro.core.similarity import (
    BALANCE_FUNCTIONS,
    ClusterSimilarity,
    pairwise_similarity,
    similarity,
)

severities = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
feature_dicts = st.dictionaries(
    st.integers(0, 40), severities, min_size=1, max_size=15
)
window_dicts = st.dictionaries(
    st.integers(0, 25), severities, min_size=1, max_size=10
)


def make_cluster(cid: int, spatial: dict, temporal: dict) -> AtypicalCluster:
    # rescale the temporal severities so both features agree on the total
    # (the Definition 4 invariant AtypicalCluster enforces)
    sf = SpatialFeature(spatial)
    scale = sf.total() / math.fsum(temporal.values())
    tf = TemporalFeature({k: v * scale for k, v in temporal.items()})
    return AtypicalCluster(cluster_id=cid, spatial=sf, temporal=tf)


cluster_pairs = st.tuples(
    feature_dicts, window_dicts, feature_dicts, window_dicts
)
cluster_lists = st.lists(
    st.tuples(feature_dicts, window_dicts), min_size=2, max_size=8
)


# ----------------------------------------------------------------------
# Eq. 3/4 overlap: scalar vs reference vs kernels
# ----------------------------------------------------------------------
class TestOverlap:
    @given(a=feature_dicts, b=feature_dicts)
    def test_overlap_matches_ordered_reference(self, a, b):
        fa, fb = SpatialFeature(a), SpatialFeature(b)
        # the reference accumulates in ascending-key order, the documented
        # convention of every kernel
        expected = 0.0
        for key in sorted(a):
            if key in b:
                expected += a[key]
        assert fa.overlap(fb) == pytest.approx(expected, rel=1e-12, abs=1e-12)

    @given(a=feature_dicts, others=st.lists(feature_dicts, min_size=0, max_size=6))
    def test_batch_overlap_bit_identical_to_scalar(self, a, others):
        fa = SpatialFeature(a)
        fos = [SpatialFeature(o) for o in others]
        own, theirs = kernels.batch_overlap(fa, fos)
        assert own.tolist() == [fa.overlap(fo) for fo in fos]
        assert theirs.tolist() == [fo.overlap(fa) for fo in fos]

    @given(pair=cluster_pairs, others=cluster_lists)
    def test_fused_kernel_bit_identical_to_unfused(self, pair, others):
        a_s, a_t, _, _ = pair
        first, second = SpatialFeature(a_s), TemporalFeature(a_t)
        others_first = [SpatialFeature(s) for s, _ in others]
        others_second = [TemporalFeature(t) for _, t in others]
        fused = kernels.batch_overlap_pair(
            first, second, others_first, others_second
        )
        own_f, theirs_f = kernels.batch_overlap(first, others_first)
        own_s, theirs_s = kernels.batch_overlap(second, others_second)
        assert fused[0].tolist() == own_f.tolist()
        assert fused[1].tolist() == theirs_f.tolist()
        assert fused[2].tolist() == own_s.tolist()
        assert fused[3].tolist() == theirs_s.tolist()

    @given(features=st.lists(feature_dicts, min_size=1, max_size=6))
    def test_pairwise_matrix_bit_identical_to_scalar(self, features):
        fs = [SpatialFeature(f) for f in features]
        matrix = kernels.pairwise_overlap_matrix(fs)
        for i, fi in enumerate(fs):
            for j, fj in enumerate(fs):
                assert matrix[i, j] == fi.overlap(fj)

    def test_pairwise_matrix_fallback_matches_sparse(self, monkeypatch):
        from repro.perf import synthetic_micro_clusters

        fs = [c.spatial for c in synthetic_micro_clusters(num_clusters=40, seed=13)]
        with_scipy = kernels.pairwise_overlap_matrix(fs)
        monkeypatch.setattr(kernels, "_sparse", None)
        without_scipy = kernels.pairwise_overlap_matrix(fs)
        assert with_scipy.tolist() == without_scipy.tolist()

    @given(a=feature_dicts, b=feature_dicts)
    def test_intersects_matches_set_reference(self, a, b):
        fa, fb = SpatialFeature(a), SpatialFeature(b)
        assert fa.intersects(fb) == bool(a.keys() & b.keys())
        assert kernels.sorted_intersects(fa.key_array, fb.key_array) == bool(
            a.keys() & b.keys()
        )


# ----------------------------------------------------------------------
# Eq. 2 similarity: vectorized vs scalar, all five balance functions
# ----------------------------------------------------------------------
class TestSimilarityAgreement:
    @settings(max_examples=40)
    @given(clusters=cluster_lists)
    @pytest.mark.parametrize("balance", sorted(BALANCE_FUNCTIONS))
    def test_pairwise_similarity_within_1e12(self, clusters, balance):
        built = [make_cluster(i, s, t) for i, (s, t) in enumerate(clusters)]
        g = BALANCE_FUNCTIONS[balance]
        matrix = pairwise_similarity(built, balance)
        for i, a in enumerate(built):
            for j, b in enumerate(built):
                if i == j:
                    continue
                assert matrix[i, j] == pytest.approx(
                    similarity(a, b, g), rel=1e-12, abs=1e-12
                )

    @settings(max_examples=40)
    @given(pair=cluster_pairs, others=cluster_lists)
    @pytest.mark.parametrize("balance", sorted(BALANCE_FUNCTIONS))
    def test_batch_within_1e12(self, pair, others, balance):
        a = make_cluster(1000, pair[0], pair[1])
        built = [make_cluster(i, s, t) for i, (s, t) in enumerate(others)]
        measure = ClusterSimilarity(balance)
        values = measure.batch(a, built)
        for value, other in zip(values.tolist(), built):
            assert value == pytest.approx(
                measure(a, other), rel=1e-12, abs=1e-12
            )

    def test_kernels_bit_identical_on_workload(self):
        """On a realistic workload the three paths agree *exactly*."""
        from repro.perf import synthetic_micro_clusters

        clusters = synthetic_micro_clusters(num_clusters=60, seed=11)
        for balance in sorted(BALANCE_FUNCTIONS):
            measure = ClusterSimilarity(balance)
            matrix = measure.matrix(clusters)
            for i, a in enumerate(clusters):
                batch = measure.batch(a, clusters)
                scalar = [measure(a, b) for b in clusters]
                assert batch.tolist() == scalar
                assert matrix[i].tolist() == scalar

    def test_matrix_and_candidates_mask(self):
        from repro.perf import synthetic_micro_clusters

        clusters = synthetic_micro_clusters(num_clusters=40, seed=3)
        measure = ClusterSimilarity("avg")
        sim, mask = measure.matrix_and_candidates(clusters, True)
        assert sim.tolist() == measure.matrix(clusters).tolist()
        for i, a in enumerate(clusters):
            for j, b in enumerate(clusters):
                if i != j:
                    assert mask[i, j] == ClusterSimilarity.can_be_similar(a, b)


# ----------------------------------------------------------------------
# Eq. 5/6 merge algebra under the array representation (Properties 2-3)
# ----------------------------------------------------------------------
class TestMergeAlgebra:
    @given(a=feature_dicts, b=feature_dicts)
    def test_merge_commutative(self, a, b):
        fa, fb = SpatialFeature(a), SpatialFeature(b)
        ab, ba = fa.merge(fb), fb.merge(fa)
        assert ab.key_array.tolist() == ba.key_array.tolist()
        assert ab.value_array.tolist() == ba.value_array.tolist()

    @given(a=feature_dicts, b=feature_dicts, c=feature_dicts)
    def test_merge_associative(self, a, b, c):
        fa, fb, fc = SpatialFeature(a), SpatialFeature(b), SpatialFeature(c)
        left = fa.merge(fb).merge(fc)
        right = fa.merge(fb.merge(fc))
        assert left.key_array.tolist() == right.key_array.tolist()
        for lv, rv in zip(left.value_array, right.value_array):
            assert lv == pytest.approx(rv, rel=1e-12)

    @given(features=st.lists(feature_dicts, min_size=1, max_size=6))
    def test_merge_all_matches_left_fold(self, features):
        # k-way reduceat may group a segment's additions differently than a
        # strict left fold, so 3+ way merges agree to 1e-12, not bitwise;
        # two-way merges (all the engine performs) are exact — see below
        built = [SpatialFeature(f) for f in features]
        merged = SpatialFeature.merge_all(built)
        folded = built[0]
        for nxt in built[1:]:
            folded = folded.merge(nxt)
        assert merged.key_array.tolist() == folded.key_array.tolist()
        for mv, fv in zip(merged.value_array, folded.value_array):
            assert mv == pytest.approx(fv, rel=1e-12)

    @given(a=feature_dicts, b=feature_dicts)
    def test_two_way_merge_all_bit_identical_to_merge(self, a, b):
        fa, fb = SpatialFeature(a), SpatialFeature(b)
        merged = SpatialFeature.merge_all([fa, fb])
        pairwise = fa.merge(fb)
        assert merged.key_array.tolist() == pairwise.key_array.tolist()
        assert merged.value_array.tolist() == pairwise.value_array.tolist()

    @given(a=feature_dicts, b=feature_dicts)
    def test_merge_matches_dict_reference(self, a, b):
        fa, fb = SpatialFeature(a), SpatialFeature(b)
        merged = fa.merge(fb)
        reference = dict(a)
        for key, value in b.items():
            reference[key] = reference.get(key, 0.0) + value
        assert merged.key_array.tolist() == sorted(reference)
        for key, value in zip(merged.key_array.tolist(), merged.value_array):
            assert value == pytest.approx(reference[key], rel=1e-12)
        assert merged.total() == pytest.approx(
            math.fsum(reference.values()), rel=1e-12
        )


# ----------------------------------------------------------------------
# Integration engine equivalence (byte-identical macro-cluster sets)
# ----------------------------------------------------------------------
def _byte_signature(clusters) -> set:
    return {
        (
            c.spatial.key_array.tobytes(),
            c.spatial.value_array.tobytes(),
            c.temporal.key_array.tobytes(),
            c.temporal.value_array.tobytes(),
        )
        for c in clusters
    }


class TestIntegrationEquivalence:
    def test_indexed_engine_byte_identical_to_scalar_reimplementation(self):
        from repro.perf import scalar_indexed_integrate, synthetic_micro_clusters

        clusters = synthetic_micro_clusters(num_clusters=120, seed=5)
        scalar_clusters, scalar_merges, _ = scalar_indexed_integrate(clusters)
        result = integrate(clusters, method="indexed")
        assert result.merges == scalar_merges
        assert _byte_signature(result.clusters) == _byte_signature(
            scalar_clusters
        )

    def test_heap_naive_byte_identical_to_rescan(self):
        from repro.perf import (
            scalar_rescan_naive_integrate,
            synthetic_micro_clusters,
        )

        clusters = synthetic_micro_clusters(num_clusters=80, seed=9)
        rescan_clusters, rescan_merges, _ = scalar_rescan_naive_integrate(
            clusters
        )
        result = integrate(clusters, method="naive")
        assert result.merges == rescan_merges
        assert _byte_signature(result.clusters) == _byte_signature(
            rescan_clusters
        )

    def test_shared_cache_reuses_pair_scores(self):
        from repro.perf import synthetic_micro_clusters

        clusters = synthetic_micro_clusters(num_clusters=60, seed=2)
        cache = SimilarityCache()
        first = integrate(clusters, method="indexed", cache=cache)
        hits_before = cache.hits
        second = integrate(clusters, method="indexed", cache=cache)
        # all original-input pair scores come back from the shared cache
        assert cache.hits > hits_before
        assert _byte_signature(first.clusters) == _byte_signature(
            second.clusters
        )
        assert second.comparisons < first.comparisons
