"""Tests for the atypical cluster model."""

import pytest

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.features import SpatialFeature, TemporalFeature

from tests.conftest import make_cluster


class TestInvariants:
    def test_sf_tf_totals_must_match(self):
        with pytest.raises(ValueError):
            AtypicalCluster(
                cluster_id=0,
                spatial=SpatialFeature({1: 5.0}),
                temporal=TemporalFeature({0: 6.0}),
            )

    def test_rejects_empty_features(self):
        with pytest.raises(ValueError):
            AtypicalCluster(0, SpatialFeature(), TemporalFeature({0: 1.0}))

    def test_tolerates_floating_point_noise(self):
        cluster = AtypicalCluster(
            0,
            SpatialFeature({1: 1.0 / 3 * 3}),
            TemporalFeature({0: 1.0}),
        )
        assert cluster.severity() == pytest.approx(1.0)

    def test_severity_equals_both_totals(self):
        c = make_cluster({1: 3.0, 2: 4.0}, {10: 2.0, 11: 5.0})
        assert c.severity() == pytest.approx(c.spatial.total())
        assert c.severity() == pytest.approx(c.temporal.total())


class TestAccessors:
    def test_sensor_ids(self):
        c = make_cluster({1: 3.0, 5: 4.0}, {0: 7.0})
        assert c.sensor_ids == frozenset({1, 5})

    def test_windows(self):
        c = make_cluster({1: 7.0}, {10: 3.0, 12: 4.0})
        assert c.windows == frozenset({10, 12})

    def test_start_end_window(self):
        c = make_cluster({1: 7.0}, {10: 3.0, 12: 4.0})
        assert c.start_window() == 10
        assert c.end_window() == 12

    def test_most_serious_sensor_answers_example_1(self):
        # "on which road segment is the congestion most serious?"
        c = make_cluster({1: 182.0, 2: 97.0, 3: 33.0}, {0: 312.0})
        assert c.most_serious_sensor() == (1, 182.0)

    def test_peak_window(self):
        c = make_cluster({1: 10.0}, {5: 4.0, 6: 6.0})
        assert c.peak_window() == (6, 6.0)

    def test_is_micro(self):
        assert make_cluster({1: 1.0}).is_micro
        assert not make_cluster({1: 1.0}, members=(1, 2)).is_micro

    def test_intersects_sensors(self):
        c = make_cluster({1: 1.0, 2: 1.0})
        assert c.intersects_sensors([2, 9])
        assert not c.intersects_sensors([8, 9])


class TestIdGenerator:
    def test_monotonic(self):
        gen = ClusterIdGenerator()
        assert gen.next_id() < gen.next_id()

    def test_start_offset(self):
        assert ClusterIdGenerator(100).next_id() == 100

    def test_micro_constructor_uses_generator(self):
        gen = ClusterIdGenerator(50)
        c = AtypicalCluster.micro(
            SpatialFeature({1: 2.0}), TemporalFeature({0: 2.0}), gen
        )
        assert c.cluster_id == 50
        assert c.level == 0

    def test_thread_safety_smoke(self):
        import threading

        gen = ClusterIdGenerator()
        seen = []

        def take():
            for _ in range(200):
                seen.append(gen.next_id())

        threads = [threading.Thread(target=take) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 800
