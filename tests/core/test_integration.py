"""Tests for cluster integration (Algorithm 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterIdGenerator
from repro.core.integration import ClusterIntegrator, integrate
from repro.core.similarity import ClusterSimilarity

from tests.conftest import make_cluster


def chainable(offset=0):
    """Three clusters on shared sensors with overlapping windows."""
    return [
        make_cluster({1 + offset: 10.0, 2 + offset: 5.0}, {100: 10.0, 101: 5.0}),
        make_cluster({1 + offset: 9.0, 2 + offset: 6.0}, {100: 9.0, 101: 6.0}),
        make_cluster({1 + offset: 8.0, 2 + offset: 7.0}, {101: 8.0, 102: 7.0}),
    ]


class TestConstruction:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClusterIntegrator(threshold=1.5)

    def test_method_validation(self):
        with pytest.raises(ValueError):
            ClusterIntegrator(method="quantum")

    def test_accepts_similarity_object(self):
        integrator = ClusterIntegrator(similarity=ClusterSimilarity("max"))
        assert integrator.similarity.name == "max"


class TestBasicBehaviour:
    def test_empty_input(self):
        assert integrate([]).clusters == []

    def test_single_input(self):
        c = make_cluster({1: 1.0})
        assert integrate([c]).clusters == [c]

    def test_similar_clusters_merge(self):
        result = integrate(chainable(), threshold=0.5)
        assert len(result.clusters) == 1
        assert result.merges == 2

    def test_disjoint_clusters_stay(self):
        clusters = [make_cluster({i: 5.0}, {i * 10: 5.0}) for i in range(4)]
        result = integrate(clusters, threshold=0.5)
        assert len(result.clusters) == 4
        assert result.merges == 0

    def test_severity_conserved(self):
        clusters = chainable() + [make_cluster({9: 3.0}, {50: 3.0})]
        total = sum(c.severity() for c in clusters)
        result = integrate(clusters)
        assert sum(c.severity() for c in result.clusters) == pytest.approx(total)

    def test_results_sorted_by_severity(self):
        clusters = chainable() + [make_cluster({9: 1.0}, {50: 1.0})]
        result = integrate(clusters)
        severities = [c.severity() for c in result.clusters]
        assert severities == sorted(severities, reverse=True)

    def test_created_contains_merge_products(self):
        result = integrate(chainable())
        assert len(result.created) == result.merges
        assert result.clusters[0].cluster_id in result.created

    def test_duplicate_ids_rejected(self):
        a = make_cluster({1: 1.0}, cluster_id=5)
        b = make_cluster({2: 1.0}, cluster_id=5)
        with pytest.raises(ValueError):
            integrate([a, b])

    def test_threshold_one_merges_nothing_distinct(self):
        result = integrate(chainable(), threshold=1.0)
        assert result.merges == 0


class TestFixpoint:
    """Algorithm 3 terminates when no pair exceeds delta_sim."""

    @settings(max_examples=30, deadline=None)
    @given(
        specs=st.lists(
            st.tuples(
                st.dictionaries(st.integers(0, 6), st.floats(0.5, 10), min_size=1, max_size=4),
                st.dictionaries(st.integers(0, 6), st.floats(0.5, 10), min_size=1, max_size=4),
            ),
            min_size=0,
            max_size=8,
        ),
        threshold=st.sampled_from([0.3, 0.5, 0.7]),
        method=st.sampled_from(["naive", "indexed"]),
    )
    def test_no_pair_above_threshold_remains(self, specs, threshold, method):
        clusters = [
            make_cluster(sf, {k: v * sum(sf.values()) / sum(tf.values()) for k, v in tf.items()})
            for sf, tf in specs
        ]
        sim = ClusterSimilarity("avg")
        result = integrate(clusters, threshold=threshold, method=method)
        final = result.clusters
        for i in range(len(final)):
            for j in range(i + 1, len(final)):
                assert sim(final[i], final[j]) <= threshold + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        specs=st.lists(
            st.dictionaries(st.integers(0, 6), st.floats(0.5, 10), min_size=1, max_size=4),
            min_size=0,
            max_size=8,
        ),
        threshold=st.sampled_from([0.4, 0.5, 0.6]),
    )
    def test_naive_and_indexed_reach_same_cluster_count(self, specs, threshold):
        def build():
            gen = ClusterIdGenerator()
            return [
                make_cluster(sf, cluster_id=gen.next_id()) for sf in specs
            ]

        naive = integrate(build(), threshold=threshold, method="naive")
        indexed = integrate(build(), threshold=threshold, method="indexed")
        # hard clustering is order-dependent in general (Sec. V-D), but the
        # total severity is conserved and the fixpoint sizes agree on these
        # single-window inputs
        assert sum(c.severity() for c in naive.clusters) == pytest.approx(
            sum(c.severity() for c in indexed.clusters)
        )

    def test_deterministic_across_runs(self):
        def build():
            gen = ClusterIdGenerator()
            return [
                make_cluster({1: 10.0, 2: 5.0}, {0: 15.0}, cluster_id=gen.next_id()),
                make_cluster({1: 9.0, 3: 6.0}, {0: 15.0}, cluster_id=gen.next_id()),
                make_cluster({2: 8.0, 3: 7.0}, {0: 15.0}, cluster_id=gen.next_id()),
                make_cluster({8: 1.0}, {0: 1.0}, cluster_id=gen.next_id()),
            ]

        first = integrate(build(), threshold=0.4)
        second = integrate(build(), threshold=0.4)
        assert [c.spatial for c in first.clusters] == [
            c.spatial for c in second.clusters
        ]


class TestWindowCandidateOptimization:
    def test_window_only_overlap_merges_below_half(self):
        # sensor-disjoint but window-identical clusters merge only when
        # delta_sim < 0.5
        a = make_cluster({1: 10.0}, {0: 10.0})
        b = make_cluster({2: 10.0}, {0: 10.0})
        low = integrate([a, b], threshold=0.4)
        assert low.merges == 1

    def test_window_only_overlap_never_merges_at_half(self):
        a = make_cluster({1: 10.0}, {0: 10.0})
        b = make_cluster({2: 10.0}, {0: 10.0})
        result = integrate([a, b], threshold=0.5)
        assert result.merges == 0

    def test_comparisons_counted(self):
        result = integrate(chainable(), threshold=0.5)
        assert result.comparisons > 0
