"""Tests for significant clusters (Definition 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.significance import SignificanceThreshold, significant_clusters

from tests.conftest import make_cluster


class TestThreshold:
    def test_min_severity_formula(self):
        thr = SignificanceThreshold(delta_s=0.05, length_hours=24.0, num_sensors=100)
        assert thr.min_severity == pytest.approx(0.05 * 24 * 100)

    def test_strict_inequality(self):
        thr = SignificanceThreshold(0.05, 24.0, 100)
        at_bar = make_cluster({1: thr.min_severity})
        above = make_cluster({1: thr.min_severity + 1})
        assert not thr.is_significant(at_bar)
        assert thr.is_significant(above)

    def test_severity_value_check(self):
        thr = SignificanceThreshold(0.05, 24.0, 100)
        assert thr.is_significant_severity(thr.min_severity + 0.1)
        assert not thr.is_significant_severity(thr.min_severity)

    def test_rejects_bad_delta_s(self):
        with pytest.raises(ValueError):
            SignificanceThreshold(0.0, 24.0, 10)
        with pytest.raises(ValueError):
            SignificanceThreshold(1.5, 24.0, 10)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            SignificanceThreshold(0.05, 0.0, 10)

    def test_rejects_bad_sensors(self):
        with pytest.raises(ValueError):
            SignificanceThreshold(0.05, 24.0, 0)

    def test_scaled_rebinds_length(self):
        thr = SignificanceThreshold(0.05, 24.0 * 30, 100)
        daily = thr.scaled(24.0)
        assert daily.delta_s == thr.delta_s
        assert daily.min_severity == pytest.approx(thr.min_severity / 30)

    @given(
        delta_s=st.floats(0.01, 0.5),
        hours=st.floats(1, 10_000),
        sensors=st.integers(1, 5000),
    )
    def test_bar_scales_linearly(self, delta_s, hours, sensors):
        # the relative threshold adapts to the query scale (Def. 5 remark)
        thr = SignificanceThreshold(delta_s, hours, sensors)
        double = SignificanceThreshold(delta_s, hours * 2, sensors)
        assert double.min_severity == pytest.approx(2 * thr.min_severity)


class TestFilter:
    def test_filters_and_sorts(self):
        thr = SignificanceThreshold(0.1, 1.0, 10)  # bar = 1.0
        clusters = [
            make_cluster({1: 0.5}),
            make_cluster({1: 5.0}),
            make_cluster({1: 2.0}),
        ]
        result = significant_clusters(clusters, thr)
        assert [c.severity() for c in result] == [5.0, 2.0]

    def test_empty_input(self):
        thr = SignificanceThreshold(0.1, 1.0, 10)
        assert significant_clusters([], thr) == []

    def test_none_significant(self):
        thr = SignificanceThreshold(0.5, 100.0, 100)
        assert significant_clusters([make_cluster({1: 1.0})], thr) == []
