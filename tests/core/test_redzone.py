"""Tests for red-zone computation and pruning (Property 5, Algorithm 4)."""

import pytest

from repro.core.redzone import compute_red_zones, filter_by_red_zones
from repro.core.significance import SignificanceThreshold
from repro.spatial.regions import DistrictGrid

from tests.conftest import line_network, make_cluster


def grid_with_severities(severities):
    """A 1-row district grid over a line network plus a severity lookup."""
    net = line_network(len(severities) * 2, spacing=1.0)
    grid = DistrictGrid(net, cols=len(severities), rows=1)
    table = {d.district_id: severities[d.district_id] for d in grid}
    return grid, (lambda district: table[district.district_id])


class TestComputeRedZones:
    def test_selects_districts_at_or_above_bar(self):
        grid, severity = grid_with_severities([10.0, 100.0, 60.0])
        thr = SignificanceThreshold(0.25, 24.0, 10)  # bar = exactly 60
        zones = compute_red_zones(list(grid), severity, thr)
        # non-strict comparison keeps the district exactly at the bar
        assert {d.district_id for d in zones.districts} == {1, 2}

    def test_sensor_union(self):
        grid, severity = grid_with_severities([100.0, 0.0 + 1e-9, 100.0])
        thr = SignificanceThreshold(0.1, 24.0, 10)
        zones = compute_red_zones(list(grid), severity, thr)
        expected = set(grid[0].sensor_ids) | set(grid[2].sensor_ids)
        assert zones.sensor_ids == frozenset(expected)

    def test_severities_recorded_for_all(self):
        grid, severity = grid_with_severities([1.0, 2.0, 3.0])
        thr = SignificanceThreshold(0.1, 24.0, 10)
        zones = compute_red_zones(list(grid), severity, thr)
        assert set(zones.severities) == {0, 1, 2}

    def test_no_red_zones(self):
        grid, severity = grid_with_severities([1.0, 2.0])
        thr = SignificanceThreshold(0.5, 24.0, 100)
        zones = compute_red_zones(list(grid), severity, thr)
        assert zones.num_zones == 0


class TestFilterByRedZones:
    def test_keeps_intersecting_prunes_outside(self):
        grid, severity = grid_with_severities([100.0, 0.1, 0.1])
        thr = SignificanceThreshold(0.1, 24.0, 10)
        zones = compute_red_zones(list(grid), severity, thr)
        inside = make_cluster({grid[0].sensor_ids[0]: 5.0})
        straddling = make_cluster(
            {grid[0].sensor_ids[-1]: 5.0, grid[1].sensor_ids[0]: 5.0}
        )
        outside = make_cluster({grid[2].sensor_ids[0]: 5.0})
        kept, pruned = filter_by_red_zones([inside, straddling, outside], zones)
        assert inside in kept
        assert straddling in kept  # Example 7: intersecting clusters stay
        assert outside not in kept
        assert pruned == 1

    def test_empty_zones_prune_everything(self):
        grid, severity = grid_with_severities([0.1, 0.1])
        thr = SignificanceThreshold(0.5, 24.0, 100)
        zones = compute_red_zones(list(grid), severity, thr)
        kept, pruned = filter_by_red_zones([make_cluster({0: 1.0})], zones)
        assert kept == [] and pruned == 1

    def test_zone_covers_method(self):
        grid, severity = grid_with_severities([100.0, 0.1])
        thr = SignificanceThreshold(0.1, 24.0, 10)
        zones = compute_red_zones(list(grid), severity, thr)
        assert zones.covers(make_cluster({grid[0].sensor_ids[0]: 1.0}))
        assert not zones.covers(make_cluster({grid[1].sensor_ids[0]: 1.0}))


class TestProperty5:
    """No significant cluster can hide in a region whose F is below the bar."""

    def test_contained_cluster_guarantee(self):
        # a cluster fully inside district d has severity <= F(d);
        # if F(d) < bar the cluster cannot be significant
        grid, _ = grid_with_severities([1.0, 1.0])
        thr = SignificanceThreshold(0.1, 24.0, 10)  # bar = 24
        cluster = make_cluster({grid[0].sensor_ids[0]: 20.0})
        # F(district 0) must be at least the cluster severity; with
        # F = 20 < 24 the cluster is indeed not significant
        assert not thr.is_significant(cluster)

    def test_significant_contained_cluster_implies_red_district(self):
        thr = SignificanceThreshold(0.1, 24.0, 10)
        cluster_severity = 30.0  # > bar 24
        # the district total is >= any contained cluster's severity, so the
        # district must be red whenever such a cluster is significant
        grid, severity = grid_with_severities([cluster_severity, 0.1])
        zones = compute_red_zones(list(grid), severity, thr)
        assert 0 in {d.district_id for d in zones.districts}
