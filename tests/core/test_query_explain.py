"""Tests for the query explain facility (per-stage cost reports).

The acceptance bar: every count in the explain report must be copied
verbatim from the run's own accounting (``QueryStats`` mirrors of the
``IntegrationResult``), never re-derived.
"""

from __future__ import annotations

import json

import pytest

from repro.core.query import AnalyticalQuery, QueryProcessor, STRATEGIES
from repro.spatial.regions import QueryRegion

from tests.core.test_query import build_world


@pytest.fixture()
def world():
    return build_world()


def run_query(world, strategy, **kwargs):
    net, districts, forest, cube = world
    processor = QueryProcessor(forest, districts, cube)
    query = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
    return processor.run(query, strategy=strategy, explain=True, **kwargs)


class TestAttachment:
    def test_absent_by_default(self, world):
        net, districts, forest, cube = world
        processor = QueryProcessor(forest, districts, cube)
        query = AnalyticalQuery.over_days(
            QueryRegion.whole_network(net), 0, 7
        )
        assert processor.run(query, strategy="all").explain is None

    def test_header_fields(self, world):
        result = run_query(world, "gui")
        explain = result.explain
        assert explain.strategy == "gui"
        assert explain.first_day == 0
        assert explain.num_days == 7
        assert explain.region_sensors == 10
        assert explain.min_severity == result.threshold.min_severity
        assert explain.returned == len(result.returned)
        assert explain.elapsed_seconds == result.stats.elapsed_seconds


class TestExactParity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_integrate_stage_mirrors_stats(self, world, strategy):
        result = run_query(world, strategy)
        stage = result.explain.stage("integrate")
        stats = result.stats
        assert stage is not None
        assert stage.metrics["input_clusters"] == stats.input_clusters
        assert stage.metrics["comparisons"] == stats.comparisons
        assert stage.metrics["merges"] == stats.merges
        assert stage.metrics["fast_rejects"] == stats.fast_rejects
        assert stage.metrics["rounds"] == stats.rounds
        assert stage.metrics["cache_hits"] == stats.cache_hits
        assert stage.metrics["cache_misses"] == stats.cache_misses

    def test_cache_hit_ratio(self, world):
        stage = run_query(world, "all").explain.stage("integrate")
        hits = stage.metrics["cache_hits"]
        looked_up = hits + stage.metrics["cache_misses"]
        expected = round(hits / looked_up, 4) if looked_up else 0.0
        assert stage.metrics["cache_hit_ratio"] == expected

    def test_select_stage_counts_scanned(self, world):
        net, districts, forest, cube = world
        result = run_query(world, "all")
        stage = result.explain.stage("select")
        # the world holds 2 micro-clusters per day over 7 days
        assert stage.metrics["scanned"] == 14
        assert stage.metrics["materialized"] is False


class TestStrategyStages:
    def test_all_has_no_filter_stage(self, world):
        explain = run_query(world, "all").explain
        assert [s.name for s in explain.stages] == ["select", "integrate"]

    def test_pru_reports_pruned(self, world):
        result = run_query(world, "pru")
        stage = result.explain.stage("prune")
        assert stage is not None
        assert stage.metrics["pruned"] == result.stats.pruned_clusters
        assert result.explain.stage("redzone") is None

    def test_gui_reports_red_zones(self, world):
        result = run_query(world, "gui")
        stage = result.explain.stage("redzone")
        assert stage is not None
        assert stage.metrics["red_zones"] == result.stats.red_zones
        assert (
            stage.metrics["candidate_districts"]
            == result.stats.candidate_districts
        )
        assert stage.metrics["pruned"] == result.stats.pruned_clusters

    def test_final_check_stage(self, world):
        result = run_query(world, "all", final_check=True)
        stage = result.explain.stage("final_check")
        assert stage is not None
        assert stage.metrics["removed"] == result.stats.final_check_removed

    def test_stage_seconds_non_negative(self, world):
        explain = run_query(world, "gui").explain
        for stage in explain.stages:
            assert stage.seconds >= 0.0


class TestSerialization:
    def test_to_dict_is_json_serializable(self, world):
        explain = run_query(world, "gui").explain
        doc = json.loads(json.dumps(explain.to_dict()))
        assert doc["version"] == 1
        assert doc["strategy"] == "gui"
        names = [s["name"] for s in doc["stages"]]
        assert names == ["select", "redzone", "integrate"]

    def test_render_mentions_every_stage(self, world):
        explain = run_query(world, "pru").explain
        text = explain.render()
        assert text.startswith("query explain: strategy=pru")
        for stage in explain.stages:
            assert stage.name in text
        assert f"returned={explain.returned}" in text

    def test_render_includes_io_when_set(self, world):
        explain = run_query(world, "all").explain
        explain.io = {"model_bytes": 123, "bytes_read": 0}
        assert "io: model_bytes=123" in explain.render()
