"""Tests for analytical query processing (Sec. IV)."""

import pytest

from repro.core.cluster import ClusterIdGenerator
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.core.query import AnalyticalQuery, QueryProcessor
from repro.spatial.regions import DistrictGrid, QueryRegion
from repro.temporal.hierarchy import Calendar

from tests.conftest import line_network, make_cluster


class FakeSeverityCube:
    """RegionSeverityProvider backed by a plain dict."""

    def __init__(self, per_district_per_day):
        self._table = per_district_per_day

    def district_severity(self, district, days):
        return self._table.get(district.district_id, 0.0) * len(days)


def build_world(num_days=7):
    """A 10-sensor line, 5 districts, one recurring strong event at
    sensors 2-3 (district 1) plus daily noise at sensor 8 (district 4)."""
    net = line_network(10, spacing=1.0)
    districts = DistrictGrid(net, cols=5, rows=1)
    calendar = Calendar(month_lengths=(31,), month_names=("m",))
    forest = AtypicalForest(calendar, integrator=ClusterIntegrator(0.5))
    strong_daily = 30.0
    for day in range(num_days):
        strong = make_cluster(
            {2: strong_daily * 0.6, 3: strong_daily * 0.4},
            {100: strong_daily * 0.5, 101: strong_daily * 0.5},
            cluster_id=forest.ids.next_id(),
        )
        noise = make_cluster(
            {8: 1.0},
            {200 + day % 3: 1.0},
            cluster_id=forest.ids.next_id(),
        )
        forest.add_day(day, [strong, noise])
    cube = FakeSeverityCube({1: strong_daily, 4: 1.0})
    return net, districts, forest, cube


class TestAnalyticalQuery:
    def test_over_days(self):
        region = QueryRegion("r", [1])
        q = AnalyticalQuery.over_days(region, 3, 4)
        assert q.days == (3, 4, 5, 6)

    def test_length_hours(self):
        q = AnalyticalQuery.over_days(QueryRegion("r", [1]), 0, 2)
        assert q.length_hours == 48.0

    def test_rejects_empty_days(self):
        with pytest.raises(ValueError):
            AnalyticalQuery(QueryRegion("r", [1]), ())

    def test_rejects_duplicate_days(self):
        with pytest.raises(ValueError):
            AnalyticalQuery(QueryRegion("r", [1]), (1, 1))

    def test_threshold_binding(self):
        region = QueryRegion("r", [1, 2, 3])
        q = AnalyticalQuery.over_days(region, 0, 2)
        thr = q.threshold(0.05)
        assert thr.num_sensors == 3
        assert thr.length_hours == 48.0


class TestStrategies:
    def test_unknown_strategy(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        with pytest.raises(ValueError):
            qp.run(q, strategy="turbo")

    def test_all_integrates_everything(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = qp.run(q, "all")
        assert result.stats.input_clusters == 14
        assert result.stats.pruned_clusters == 0

    def test_all_finds_recurring_cluster(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        sig = qp.run(q, "all").significant()
        # bar = 0.05 * 168h * 10 sensors = 84 < 210 = 7 * 30
        assert len(sig) == 1
        assert sig[0].severity() == pytest.approx(210.0)

    def test_pru_prunes_daily_insignificant(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = qp.run(q, "pru")
        # daily bar = 0.05 * 24 * 10 = 12; strong (30) kept, noise (1) pruned
        assert result.stats.input_clusters == 7
        assert result.stats.pruned_clusters == 7

    def test_gui_prunes_outside_red_zones(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = qp.run(q, "gui")
        # district 1 (F = 30/day > 12/day bar-rate) is red; district 4 is not
        assert result.stats.red_zones == 1
        assert result.stats.input_clusters == 7
        assert result.stats.pruned_clusters == 7

    def test_gui_recall_matches_all(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        gt = qp.run(q, "all").significant()
        gui = qp.run(q, "gui").significant()
        assert [c.severity() for c in gui] == [c.severity() for c in gt]

    def test_final_check_removes_false_positives(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        unchecked = qp.run(q, "all", final_check=False)
        checked = qp.run(q, "all", final_check=True)
        assert len(checked.returned) <= len(unchecked.returned)
        assert all(checked.threshold.is_significant(c) for c in checked.returned)
        assert checked.stats.final_check_removed == len(unchecked.returned) - len(
            checked.returned
        )

    def test_spatial_restriction(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        region = QueryRegion("noise-only", [8])
        q = AnalyticalQuery.over_days(region, 0, 7)
        result = qp.run(q, "all")
        # only the noise micro-clusters live at sensor 8
        assert result.stats.input_clusters == 7

    def test_missing_days_yield_empty_input(self):
        net, districts, forest, cube = build_world(num_days=3)
        qp = QueryProcessor(forest, districts, cube)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = qp.run(q, "all")
        assert result.stats.input_clusters == 6

    def test_delta_s_override(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        strict = qp.run(q, "all", delta_s=0.9)
        assert strict.significant() == []

    def test_elapsed_time_recorded(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        assert qp.run(q, "all").stats.elapsed_seconds > 0


class TestLeafIds:
    def test_leaf_ids_of_macro(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = qp.run(q, "all")
        macro = result.significant()[0]
        leaves = result.leaf_ids(macro)
        assert len(leaves) == 7  # the seven daily strong micro-clusters

    def test_leaf_ids_of_micro(self):
        net, districts, forest, cube = build_world(num_days=1)
        qp = QueryProcessor(forest, districts, cube)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 1)
        result = qp.run(q, "all")
        micro = [c for c in result.returned if c.is_micro][0]
        assert result.leaf_ids(micro) == frozenset({micro.cluster_id})


class TestMaterializedPath:
    def test_only_all_strategy(self):
        net, districts, forest, cube = build_world()
        qp = QueryProcessor(forest, districts, cube)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        with pytest.raises(ValueError):
            qp.run(q, "gui", use_materialized=True)

    def test_same_severities_as_micro_path(self):
        net, districts, forest, cube = build_world(num_days=14)
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 14)
        micro_path = qp.run(q, "all")
        materialized = qp.run(q, "all", use_materialized=True)
        assert sorted(c.severity() for c in materialized.returned) == pytest.approx(
            sorted(c.severity() for c in micro_path.returned)
        )

    def test_fewer_inputs_with_materialization(self):
        net, districts, forest, cube = build_world(num_days=14)
        # materialize the two covered weeks up front
        forest.week_clusters(0)
        forest.week_clusters(1)
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 14)
        micro_path = qp.run(q, "all")
        materialized = qp.run(q, "all", use_materialized=True)
        assert materialized.stats.input_clusters < micro_path.stats.input_clusters

    def test_partial_week_mixes_levels(self):
        net, districts, forest, cube = build_world(num_days=10)
        qp = QueryProcessor(forest, districts, cube, delta_s=0.05)
        q = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 10)
        materialized = qp.run(q, "all", use_materialized=True)
        micro_path = qp.run(q, "all")
        assert sum(c.severity() for c in materialized.returned) == pytest.approx(
            sum(c.severity() for c in micro_path.returned)
        )
