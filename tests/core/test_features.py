"""Tests for spatial/temporal severity features (Def. 4, Properties 2-3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.features import SeverityFeature, SpatialFeature, TemporalFeature

features = st.dictionaries(
    st.integers(0, 40), st.floats(0.1, 100), min_size=1, max_size=12
).map(SeverityFeature)


class TestConstruction:
    def test_from_mapping(self):
        f = SeverityFeature({1: 2.0, 5: 3.0})
        assert f[1] == 2.0 and f[5] == 3.0

    def test_from_pairs_accumulates_duplicates(self):
        f = SeverityFeature([(1, 2.0), (1, 3.0)])
        assert f[1] == 5.0

    def test_rejects_zero_severity(self):
        with pytest.raises(ValueError):
            SeverityFeature({1: 0.0})

    def test_rejects_negative_severity(self):
        with pytest.raises(ValueError):
            SeverityFeature({1: -1.0})

    def test_empty_allowed(self):
        assert len(SeverityFeature()) == 0

    def test_keys_coerced_to_int(self):
        f = SeverityFeature({1: 2.0})
        assert 1 in f


class TestMappingProtocol:
    def test_len(self):
        assert len(SeverityFeature({1: 1.0, 2: 1.0})) == 2

    def test_contains(self):
        f = SeverityFeature({3: 1.0})
        assert 3 in f and 4 not in f

    def test_get_default(self):
        assert SeverityFeature({1: 2.0}).get(9) == 0.0

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SeverityFeature({1: 2.0})[9]

    def test_equality(self):
        assert SeverityFeature({1: 2.0}) == SeverityFeature({1: 2.0})
        assert SeverityFeature({1: 2.0}) != SeverityFeature({1: 3.0})

    def test_hashable(self):
        assert hash(SeverityFeature({1: 2.0})) == hash(SeverityFeature({1: 2.0}))


class TestSeverityMath:
    def test_total(self):
        assert SeverityFeature({1: 2.0, 2: 3.0}).total() == 5.0

    def test_overlap_asymmetric_numerator(self):
        # Eq. 3 numerator: this side's severity on common keys
        a = SeverityFeature({1: 10.0, 2: 5.0})
        b = SeverityFeature({2: 100.0, 3: 1.0})
        assert a.overlap(b) == 5.0
        assert b.overlap(a) == 100.0

    def test_overlap_disjoint(self):
        a = SeverityFeature({1: 1.0})
        b = SeverityFeature({2: 1.0})
        assert a.overlap(b) == 0.0

    def test_overlap_fraction(self):
        a = SeverityFeature({1: 3.0, 2: 1.0})
        b = SeverityFeature({1: 99.0})
        assert a.overlap_fraction(b) == pytest.approx(0.75)

    def test_overlap_fraction_empty(self):
        assert SeverityFeature().overlap_fraction(SeverityFeature({1: 1.0})) == 0.0

    def test_argmax(self):
        key, sev = SeverityFeature({1: 3.0, 2: 9.0}).argmax()
        assert (key, sev) == (2, 9.0)

    def test_argmax_empty_raises(self):
        with pytest.raises(ValueError):
            SeverityFeature().argmax()

    def test_min_max_key(self):
        f = SeverityFeature({4: 1.0, 9: 1.0, 2: 1.0})
        assert f.min_key() == 2 and f.max_key() == 9

    def test_top(self):
        f = SeverityFeature({1: 5.0, 2: 9.0, 3: 1.0})
        assert f.top(2) == [(2, 9.0), (1, 5.0)]

    def test_restricted(self):
        f = SeverityFeature({1: 2.0, 2: 3.0, 3: 4.0})
        assert f.restricted([2, 3, 7]) == SeverityFeature({2: 3.0, 3: 4.0})


class TestMerge:
    """Eq. 5/6 and the algebraic properties (Properties 2-3)."""

    def test_merge_sums_common_keeps_rest(self):
        a = SeverityFeature({1: 2.0, 2: 3.0})
        b = SeverityFeature({2: 5.0, 3: 7.0})
        merged = a.merge(b)
        assert merged == SeverityFeature({1: 2.0, 2: 8.0, 3: 7.0})

    def test_merge_preserves_total(self):
        a = SeverityFeature({1: 2.0, 2: 3.0})
        b = SeverityFeature({2: 5.0})
        assert a.merge(b).total() == pytest.approx(a.total() + b.total())

    @given(a=features, b=features)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(a=features, b=features, c=features)
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.keys() == right.keys()
        for key in left.keys():
            assert left[key] == pytest.approx(right[key])

    @given(a=features, b=features)
    def test_merge_total_distributive(self, a, b):
        assert a.merge(b).total() == pytest.approx(a.total() + b.total())

    @given(a=features, b=features)
    def test_overlap_bounded_by_total(self, a, b):
        assert 0.0 <= a.overlap(b) <= a.total() + 1e-9

    @given(a=features)
    def test_self_overlap_is_total(self, a):
        assert a.overlap(a) == pytest.approx(a.total())


class TestSubclasses:
    def test_spatial_merge_returns_spatial(self):
        merged = SpatialFeature({1: 1.0}).merge(SpatialFeature({2: 1.0}))
        assert isinstance(merged, SpatialFeature)

    def test_temporal_merge_returns_temporal(self):
        merged = TemporalFeature({1: 1.0}).merge(TemporalFeature({2: 1.0}))
        assert isinstance(merged, TemporalFeature)

    def test_restricted_preserves_type(self):
        assert isinstance(SpatialFeature({1: 1.0}).restricted([1]), SpatialFeature)
        assert isinstance(TemporalFeature({1: 1.0}).restricted([1]), TemporalFeature)
