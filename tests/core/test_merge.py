"""Tests for cluster merging (Algorithm 2, Eq. 5-6, Property 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cluster import ClusterIdGenerator
from repro.core.merge import merge_clusters, merge_many

from tests.conftest import make_cluster

cluster_strategy = st.builds(
    make_cluster,
    spatial=st.dictionaries(st.integers(0, 10), st.floats(0.5, 20), min_size=1, max_size=6),
    temporal=st.none(),
)


class TestMergeClusters:
    def test_eq5_common_sensors_accumulate(self):
        a = make_cluster({1: 2.0, 2: 3.0}, {0: 5.0})
        b = make_cluster({2: 5.0, 3: 7.0}, {0: 12.0})
        merged = merge_clusters(a, b)
        assert merged.spatial[1] == 2.0
        assert merged.spatial[2] == 8.0
        assert merged.spatial[3] == 7.0

    def test_eq6_common_windows_accumulate(self):
        a = make_cluster({1: 5.0}, {10: 2.0, 11: 3.0})
        b = make_cluster({1: 9.0}, {11: 4.0, 12: 5.0})
        merged = merge_clusters(a, b)
        assert merged.temporal[11] == 7.0

    def test_severity_additive(self):
        a = make_cluster({1: 2.0})
        b = make_cluster({2: 5.0})
        assert merge_clusters(a, b).severity() == pytest.approx(7.0)

    def test_fresh_id(self):
        gen = ClusterIdGenerator(1000)
        a = make_cluster({1: 1.0}, cluster_id=1)
        b = make_cluster({2: 1.0}, cluster_id=2)
        merged = merge_clusters(a, b, gen)
        assert merged.cluster_id == 1000

    def test_members_record_provenance(self):
        a = make_cluster({1: 1.0}, cluster_id=1)
        b = make_cluster({2: 1.0}, cluster_id=2)
        assert merge_clusters(a, b).members == (1, 2)

    def test_level_increases(self):
        a = make_cluster({1: 1.0}, level=0)
        b = make_cluster({2: 1.0}, level=2)
        assert merge_clusters(a, b).level == 3

    @given(a=cluster_strategy, b=cluster_strategy)
    def test_property3_commutative(self, a, b):
        ab = merge_clusters(a, b)
        ba = merge_clusters(b, a)
        assert ab.spatial == ba.spatial
        assert ab.temporal == ba.temporal

    @given(a=cluster_strategy, b=cluster_strategy, c=cluster_strategy)
    def test_property3_associative(self, a, b, c):
        left = merge_clusters(merge_clusters(a, b), c)
        right = merge_clusters(a, merge_clusters(b, c))
        assert left.spatial.keys() == right.spatial.keys()
        for key in left.spatial.keys():
            assert left.spatial[key] == pytest.approx(right.spatial[key])


class TestMergeMany:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_many([])

    def test_single_passthrough(self):
        c = make_cluster({1: 1.0})
        assert merge_many([c]) is c

    def test_three_way(self):
        clusters = [make_cluster({i: 1.0}) for i in range(3)]
        merged = merge_many(clusters)
        assert merged.severity() == pytest.approx(3.0)
        assert len(merged.members) == 3

    @given(clusters=st.lists(cluster_strategy, min_size=2, max_size=5))
    def test_matches_pairwise_fold(self, clusters):
        folded = clusters[0]
        for c in clusters[1:]:
            folded = merge_clusters(folded, c)
        bulk = merge_many(clusters)
        assert bulk.spatial.keys() == folded.spatial.keys()
        for key in bulk.spatial.keys():
            assert bulk.spatial[key] == pytest.approx(folded.spatial[key])
