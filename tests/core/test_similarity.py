"""Tests for cluster similarity (Equations 2-4, balance functions)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import (
    BALANCE_FUNCTIONS,
    ClusterSimilarity,
    balance_function,
    similarity,
    spatial_similarity,
    temporal_similarity,
)

from tests.conftest import make_cluster

fractions = st.floats(0.0, 1.0)


class TestBalanceFunctions:
    def test_all_five_present(self):
        assert set(BALANCE_FUNCTIONS) == {"max", "min", "avg", "geo", "har"}

    def test_lookup_unknown_raises(self):
        with pytest.raises(ValueError):
            balance_function("median")

    def test_max(self):
        assert balance_function("max")(0.2, 0.8) == 0.8

    def test_min(self):
        assert balance_function("min")(0.2, 0.8) == 0.2

    def test_avg(self):
        assert balance_function("avg")(0.2, 0.8) == pytest.approx(0.5)

    def test_geo(self):
        assert balance_function("geo")(0.25, 1.0) == pytest.approx(0.5)

    def test_har(self):
        assert balance_function("har")(0.5, 0.5) == pytest.approx(0.5)

    def test_har_zero_safe(self):
        assert balance_function("har")(0.0, 0.0) == 0.0

    @given(p1=fractions, p2=fractions)
    def test_ordering_min_le_others_le_max(self, p1, p2):
        lo = balance_function("min")(p1, p2)
        hi = balance_function("max")(p1, p2)
        for name in ("avg", "geo", "har"):
            value = balance_function(name)(p1, p2)
            assert lo - 1e-12 <= value <= hi + 1e-12

    @given(p1=fractions, p2=fractions)
    def test_symmetry(self, p1, p2):
        for name, g in BALANCE_FUNCTIONS.items():
            assert g(p1, p2) == pytest.approx(g(p2, p1)), name

    @given(p=fractions)
    def test_idempotent_on_equal_args(self, p):
        for name, g in BALANCE_FUNCTIONS.items():
            assert g(p, p) == pytest.approx(p), name

    @given(p1=fractions, p2=fractions)
    def test_zero_on_both_zero(self, p1, p2):
        # g(0, 0) = 0 underpins the sensor-disjoint similarity bound
        for name, g in BALANCE_FUNCTIONS.items():
            assert g(0.0, 0.0) == 0.0, name


class TestSimilarityEquations:
    def test_identical_clusters(self):
        a = make_cluster({1: 3.0, 2: 4.0}, {10: 7.0})
        sim = ClusterSimilarity("avg")
        assert sim(a, a) == pytest.approx(1.0)

    def test_fully_disjoint(self):
        a = make_cluster({1: 3.0}, {10: 3.0})
        b = make_cluster({2: 5.0}, {20: 5.0})
        assert similarity(a, b, balance_function("avg")) == 0.0

    def test_example_5_morning_vs_evening(self):
        # C_A and C_B: same sensors, disjoint time windows -> only the
        # spatial half contributes, similarity <= 0.5 -> not merged at 0.5
        a = make_cluster({1: 182.0, 2: 97.0}, {97: 279.0})
        b = make_cluster({1: 12.0, 2: 51.0}, {220: 63.0})
        sim = ClusterSimilarity("avg")
        assert sim.temporal(a, b) == 0.0
        assert sim.spatial(a, b) == pytest.approx(1.0)
        assert sim(a, b) == pytest.approx(0.5)

    def test_example_5_similar_time_and_sensors_merge(self):
        # C_A and C_C: common sensors and overlapping windows
        a = make_cluster({1: 100.0, 2: 50.0}, {100: 90.0, 101: 60.0})
        c = make_cluster({1: 80.0, 2: 40.0, 9: 30.0}, {101: 100.0, 102: 50.0})
        sim = ClusterSimilarity("avg")
        assert sim(a, c) > 0.5

    def test_spatial_uses_severity_weights_not_counts(self):
        # one shared sensor out of two, but it carries 90% of the severity
        a = make_cluster({1: 90.0, 2: 10.0}, {0: 100.0})
        b = make_cluster({1: 50.0}, {0: 50.0})
        g = balance_function("min")
        assert spatial_similarity(a, b, g) == pytest.approx(0.9)

    def test_temporal_component(self):
        a = make_cluster({1: 10.0}, {0: 6.0, 1: 4.0})
        b = make_cluster({1: 8.0}, {1: 8.0})
        g = balance_function("min")
        assert temporal_similarity(a, b, g) == pytest.approx(0.4)

    def test_eq2_is_average_of_components(self):
        a = make_cluster({1: 10.0, 2: 10.0}, {0: 10.0, 1: 10.0})
        b = make_cluster({1: 10.0}, {0: 10.0})
        sim = ClusterSimilarity("avg")
        assert sim(a, b) == pytest.approx((sim.spatial(a, b) + sim.temporal(a, b)) / 2)

    def test_max_rescues_asymmetric_sizes(self):
        # the paper's motivation: a small cluster inside a large one
        small = make_cluster({1: 10.0}, {0: 10.0})
        large = make_cluster({i: 10.0 for i in range(1, 11)}, {0: 100.0})
        assert ClusterSimilarity("max")(small, large) > ClusterSimilarity("min")(
            small, large
        )

    def test_sensor_disjoint_bounded_by_half(self):
        # the optimization in the integrator relies on this bound
        a = make_cluster({1: 5.0}, {0: 5.0})
        b = make_cluster({2: 5.0}, {0: 5.0})
        for name in BALANCE_FUNCTIONS:
            assert ClusterSimilarity(name)(a, b) <= 0.5


class TestClusterSimilarityWrapper:
    def test_name(self):
        assert ClusterSimilarity("geo").name == "geo"

    def test_custom_callable(self):
        sim = ClusterSimilarity(lambda p1, p2: 0.0)
        a = make_cluster({1: 1.0})
        assert sim(a, a) == 0.0

    def test_can_be_similar_shared_sensor(self):
        a = make_cluster({1: 1.0}, {0: 1.0})
        b = make_cluster({1: 2.0}, {5: 2.0})
        assert ClusterSimilarity.can_be_similar(a, b)

    def test_can_be_similar_shared_window(self):
        a = make_cluster({1: 1.0}, {7: 1.0})
        b = make_cluster({2: 2.0}, {7: 2.0})
        assert ClusterSimilarity.can_be_similar(a, b)

    def test_cannot_be_similar_fully_disjoint(self):
        a = make_cluster({1: 1.0}, {0: 1.0})
        b = make_cluster({2: 2.0}, {5: 2.0})
        assert not ClusterSimilarity.can_be_similar(a, b)

    @given(
        sa=st.dictionaries(st.integers(0, 8), st.floats(0.5, 10), min_size=1, max_size=5),
        sb=st.dictionaries(st.integers(0, 8), st.floats(0.5, 10), min_size=1, max_size=5),
    )
    def test_similarity_in_unit_interval(self, sa, sb):
        a = make_cluster(sa, {0: sum(sa.values())})
        b = make_cluster(sb, {1: sum(sb.values())})
        for name in BALANCE_FUNCTIONS:
            value = ClusterSimilarity(name)(a, b)
            assert -1e-9 <= value <= 1.0 + 1e-9

    @given(
        sa=st.dictionaries(st.integers(0, 8), st.floats(0.5, 10), min_size=1, max_size=5),
        sb=st.dictionaries(st.integers(0, 8), st.floats(0.5, 10), min_size=1, max_size=5),
    )
    def test_similarity_symmetric(self, sa, sb):
        a = make_cluster(sa, {0: sum(sa.values())})
        b = make_cluster(sb, {0: sum(sb.values())})
        for name in BALANCE_FUNCTIONS:
            sim = ClusterSimilarity(name)
            assert sim(a, b) == pytest.approx(sim(b, a))
