"""Tests for the atypical forest (Sec. III-C, Fig. 10)."""

import pytest

from repro.core.cluster import ClusterIdGenerator
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.spatial.regions import QueryRegion
from repro.temporal.hierarchy import Calendar

from tests.conftest import make_cluster


def small_calendar():
    return Calendar(month_lengths=(14, 14), month_names=("m1", "m2"))


def recurring_day(day, gen, sensor=1, windows=(100, 101)):
    """A daily micro-cluster of a recurring event (shared sensors/windows)."""
    return make_cluster(
        {sensor: 6.0, sensor + 1: 4.0},
        {windows[0]: 6.0, windows[1]: 4.0},
        cluster_id=gen.next_id(),
    )


class TestAddAndRetrieve:
    def test_add_day_and_get(self):
        forest = AtypicalForest(small_calendar())
        gen = forest.ids
        clusters = [recurring_day(0, gen)]
        forest.add_day(0, clusters)
        assert forest.day_clusters(0) == clusters

    def test_duplicate_day_rejected(self):
        forest = AtypicalForest(small_calendar())
        forest.add_day(0, [recurring_day(0, forest.ids)])
        with pytest.raises(ValueError):
            forest.add_day(0, [])

    def test_missing_day_is_empty(self):
        forest = AtypicalForest(small_calendar())
        assert forest.day_clusters(5) == []

    def test_micro_clusters_over_days(self):
        forest = AtypicalForest(small_calendar())
        for day in range(3):
            forest.add_day(day, [recurring_day(day, forest.ids)])
        assert len(forest.micro_clusters(range(3))) == 3

    def test_region_filter(self):
        forest = AtypicalForest(small_calendar())
        inside = recurring_day(0, forest.ids, sensor=1)
        outside = recurring_day(0, forest.ids, sensor=50)
        forest.add_day(0, [inside, outside])
        region = QueryRegion("r", [1, 2])
        assert forest.micro_clusters([0], region) == [inside]

    def test_days_property(self):
        forest = AtypicalForest(small_calendar())
        forest.add_day(2, [])
        forest.add_day(0, [])
        assert forest.days == [0, 2]


class TestMaterialization:
    def test_week_integrates_recurring_event(self):
        forest = AtypicalForest(small_calendar(), integrator=ClusterIntegrator(0.5))
        for day in range(7):
            forest.add_day(day, [recurring_day(day, forest.ids)])
        week = forest.week_clusters(0)
        assert len(week) == 1
        assert week[0].severity() == pytest.approx(70.0)

    def test_month_uses_week_level(self):
        forest = AtypicalForest(small_calendar(), integrator=ClusterIntegrator(0.5))
        for day in range(14):
            forest.add_day(day, [recurring_day(day, forest.ids)])
        month = forest.month_clusters(0)
        assert len(month) == 1
        assert month[0].severity() == pytest.approx(140.0)

    def test_cache_invalidated_by_new_day(self):
        forest = AtypicalForest(small_calendar(), integrator=ClusterIntegrator(0.5))
        forest.add_day(0, [recurring_day(0, forest.ids)])
        assert len(forest.week_clusters(0)) == 1
        forest.add_day(1, [recurring_day(1, forest.ids)])
        week = forest.week_clusters(0)
        assert week[0].severity() == pytest.approx(20.0)

    def test_stats(self):
        forest = AtypicalForest(small_calendar(), integrator=ClusterIntegrator(0.5))
        for day in range(7):
            forest.add_day(day, [recurring_day(day, forest.ids)])
        forest.week_clusters(0)
        stats = forest.stats()
        assert stats.num_days == 7
        assert stats.num_micro == 7
        assert stats.num_week_macro == 1


class TestProvenance:
    def test_children_and_leaves(self):
        forest = AtypicalForest(small_calendar(), integrator=ClusterIntegrator(0.5))
        micros = []
        for day in range(3):
            cluster = recurring_day(day, forest.ids)
            micros.append(cluster)
            forest.add_day(day, [cluster])
        week = forest.week_clusters(0)[0]
        leaves = forest.leaves_of(week)
        assert sorted(c.cluster_id for c in leaves) == sorted(
            c.cluster_id for c in micros
        )

    def test_lookup(self):
        forest = AtypicalForest(small_calendar())
        cluster = recurring_day(0, forest.ids)
        forest.add_day(0, [cluster])
        assert forest.lookup(cluster.cluster_id) is cluster

    def test_leaves_of_micro_is_itself(self):
        forest = AtypicalForest(small_calendar())
        cluster = recurring_day(0, forest.ids)
        forest.add_day(0, [cluster])
        assert forest.leaves_of(cluster) == [cluster]

    def test_iteration_order(self):
        forest = AtypicalForest(small_calendar())
        c1 = recurring_day(1, forest.ids)
        c0 = recurring_day(0, forest.ids)
        forest.add_day(1, [c1])
        forest.add_day(0, [c0])
        assert list(forest) == [c0, c1]
