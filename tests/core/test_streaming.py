"""Tests for the online event tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventExtractor, ExtractionParams
from repro.core.records import RecordBatch
from repro.core.streaming import OnlineEventTracker
from repro.temporal.windows import WindowSpec

from tests.conftest import line_network, make_batch, two_road_network


def stream_batch(tracker, batch):
    """Feed a batch window by window; returns all emitted clusters."""
    ordered = batch.sorted_by_window()
    clusters = []
    windows = ordered.windows
    for window in np.unique(windows):
        mask = windows == window
        clusters.extend(tracker.push_window(int(window), ordered.select(mask)))
    clusters.extend(tracker.flush())
    return clusters


def feature_sets(clusters):
    return sorted(
        (tuple(sorted(c.spatial.items())), tuple(sorted(c.temporal.items())))
        for c in clusters
    )


class TestBasics:
    def test_single_event_closes_after_gap(self):
        net = line_network(5)
        tracker = OnlineEventTracker(net)
        closed = tracker.push_window(10, make_batch([(0, 10, 2.0)]))
        assert closed == []
        # 2-window gap keeps it open (interval 10 min < 15)
        assert tracker.push_window(12, RecordBatch.empty()) == []
        # at window 13 the event is 3 windows old -> closed
        closed = tracker.push_window(13, RecordBatch.empty())
        assert len(closed) == 1
        assert closed[0].severity() == 2.0

    def test_flush_emits_open_events(self):
        tracker = OnlineEventTracker(line_network(5))
        tracker.push_window(10, make_batch([(0, 10, 2.0)]))
        clusters = tracker.flush()
        assert len(clusters) == 1
        assert tracker.open_events == []

    def test_out_of_order_windows_rejected(self):
        tracker = OnlineEventTracker(line_network(5))
        tracker.push_window(10, RecordBatch.empty())
        with pytest.raises(ValueError):
            tracker.push_window(9, RecordBatch.empty())

    def test_wrong_window_batch_rejected(self):
        tracker = OnlineEventTracker(line_network(5))
        with pytest.raises(ValueError):
            tracker.push_window(10, make_batch([(0, 11, 1.0)]))

    def test_spatial_growth_joins_event(self):
        # a congestion expanding along the street stays one event
        tracker = OnlineEventTracker(line_network(6, spacing=1.0))
        batch = make_batch([(i, 10 + i, 1.0) for i in range(6)])
        clusters = stream_batch(tracker, batch)
        assert len(clusters) == 1
        assert clusters[0].severity() == 6.0

    def test_bridge_merges_open_events(self):
        # two events start far apart; a middle record merges them
        net = line_network(5, spacing=1.0)
        tracker = OnlineEventTracker(net)
        tracker.push_window(10, make_batch([(0, 10, 1.0), (4, 10, 1.0)]))
        assert len(tracker.open_events) == 2
        closed = tracker.push_window(11, make_batch([(2, 11, 1.0)]))
        assert closed == []
        # record at 2 relates to neither 0 nor 4 (2.0 >= 1.5)... so still 3
        assert len(tracker.open_events) == 3
        # but a record at 1 bridges events at 0 and 2
        tracker.push_window(12, make_batch([(1, 12, 1.0)]))
        assert len(tracker.open_events) == 2

    def test_separate_roads_stay_separate(self):
        tracker = OnlineEventTracker(two_road_network(gap=5.0))
        batch = make_batch([(0, 10, 1.0), (6, 10, 1.0)])
        clusters = stream_batch(tracker, batch)
        assert len(clusters) == 2

    def test_time_of_day_keys(self):
        spec = WindowSpec()
        tracker = OnlineEventTracker(line_network(3))
        window = spec.window_at(3, 8, 5)
        clusters = stream_batch(tracker, make_batch([(0, window, 2.0)]))
        assert clusters[0].temporal.min_key() == spec.window_in_day(window)

    def test_closed_clusters_accumulate(self):
        tracker = OnlineEventTracker(line_network(5))
        stream_batch(tracker, make_batch([(0, 10, 2.0), (0, 100, 3.0)]))
        assert len(tracker.closed_clusters) == 2


class TestBatchEquivalence:
    """The stream must produce the batch extractor's events exactly."""

    @settings(max_examples=40, deadline=None)
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 80), st.floats(0.5, 5)),
            min_size=1,
            max_size=50,
        )
    )
    def test_matches_batch_extractor_line(self, records):
        net = line_network(10, spacing=1.0)
        batch = make_batch(records)
        batch_clusters = EventExtractor(net).extract_micro_clusters(batch)
        stream_clusters = stream_batch(OnlineEventTracker(net), batch)
        assert feature_sets(stream_clusters) == feature_sets(batch_clusters)

    @settings(max_examples=20, deadline=None)
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 60), st.floats(0.5, 5)),
            min_size=1,
            max_size=40,
        ),
        gap=st.floats(0.8, 6.0),
    )
    def test_matches_batch_extractor_two_roads(self, records, gap):
        net = two_road_network(gap=gap)
        batch = make_batch(records)
        batch_clusters = EventExtractor(net).extract_micro_clusters(batch)
        stream_clusters = stream_batch(OnlineEventTracker(net), batch)
        assert feature_sets(stream_clusters) == feature_sets(batch_clusters)

    def test_matches_on_simulated_day(self, small_sim):
        chunk = small_sim.simulate_day(2)
        mask = chunk.atypical_mask()
        batch = RecordBatch(
            chunk.sensor_ids[mask],
            chunk.windows[mask],
            chunk.congested[mask].astype(np.float64),
        )
        batch_clusters = EventExtractor(
            small_sim.network, ExtractionParams(), small_sim.window_spec
        ).extract_micro_clusters(batch)
        tracker = OnlineEventTracker(
            small_sim.network, window_spec=small_sim.window_spec
        )
        stream_clusters = stream_batch(tracker, batch)
        assert feature_sets(stream_clusters) == feature_sets(batch_clusters)

    def test_severity_conserved(self, small_sim):
        chunk = small_sim.simulate_day(1)
        mask = chunk.atypical_mask()
        batch = RecordBatch(
            chunk.sensor_ids[mask],
            chunk.windows[mask],
            chunk.congested[mask].astype(np.float64),
        )
        tracker = OnlineEventTracker(
            small_sim.network, window_spec=small_sim.window_spec
        )
        clusters = stream_batch(tracker, batch)
        assert sum(c.severity() for c in clusters) == pytest.approx(
            batch.total_severity()
        )


class TestFlushNoResurrection:
    """flush() must retire events for good (the live-ingest day close).

    The ingest engine calls flush() once per day and keeps pushing the
    next day's windows into the same network geometry; a record landing
    on a flushed event's frontier must open a fresh event, or the closed
    day's severity would be double-counted into the next one.
    """

    def test_adjacent_record_after_flush_opens_new_event(self):
        tracker = OnlineEventTracker(line_network(5, spacing=1.0))
        tracker.push_window(10, make_batch([(2, 10, 2.0)]))
        flushed = tracker.flush()
        assert len(flushed) == 1
        # spatially adjacent and within the time gap of the flushed
        # event's frontier — still a brand-new event
        assert tracker.push_window(11, make_batch([(3, 11, 1.0)])) == []
        assert len(tracker.open_events) == 1
        (new,) = tracker.flush()
        assert new.cluster_id != flushed[0].cluster_id
        assert new.severity() == 1.0
        assert len(tracker.closed_clusters) == 2

    def test_same_sensor_same_window_after_flush(self):
        tracker = OnlineEventTracker(line_network(5))
        tracker.push_window(10, make_batch([(0, 10, 2.0)]))
        flushed = tracker.flush()
        # the window watermark is non-decreasing, so window 10 may
        # legally arrive again; the same sensor must not re-join
        assert tracker.push_window(10, make_batch([(0, 10, 3.0)])) == []
        (new,) = tracker.flush()
        assert new.severity() == 3.0
        assert new.cluster_id != flushed[0].cluster_id

    def test_flush_is_idempotent(self):
        tracker = OnlineEventTracker(line_network(3))
        tracker.push_window(5, make_batch([(0, 5, 1.0)]))
        assert len(tracker.flush()) == 1
        assert tracker.flush() == []
        assert len(tracker.closed_clusters) == 1
