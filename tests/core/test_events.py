"""Tests for event extraction (Definitions 1-3, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import AtypicalEvent, EventExtractor, ExtractionParams, UnionFind
from repro.core.records import RecordBatch
from repro.temporal.windows import WindowSpec

from tests.conftest import line_network, make_batch, two_road_network


def components(extractor, batch):
    """Record index sets of each extracted event."""
    labels = extractor.label_components(batch)
    by_label = {}
    for i, lab in enumerate(labels):
        by_label.setdefault(int(lab), set()).add(i)
    return sorted(by_label.values(), key=lambda s: min(s))


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(3)
        assert uf.find(0) != uf.find(1)

    def test_union(self):
        uf = UnionFind(3)
        assert uf.union(0, 2)
        assert uf.find(0) == uf.find(2)

    def test_union_same_returns_false(self):
        uf = UnionFind(2)
        uf.union(0, 1)
        assert not uf.union(0, 1)

    def test_transitivity(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_labels_are_canonical(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]


class TestExtractionParams:
    def test_defaults_follow_fig14(self):
        params = ExtractionParams()
        assert params.distance_miles == 1.5
        assert params.time_gap_minutes == 15.0

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            ExtractionParams(distance_miles=0)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            ExtractionParams(time_gap_minutes=-1)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            EventExtractor(line_network(3), method="magic")


class TestDirectRelation:
    """Definition 1: distance < delta_d AND interval < delta_t."""

    def test_same_sensor_adjacent_windows(self):
        ex = EventExtractor(line_network(5))
        batch = make_batch([(0, 10, 1.0), (0, 11, 1.0)])
        assert len(components(ex, batch)) == 1

    def test_same_sensor_gap_too_large(self):
        ex = EventExtractor(line_network(5))
        # delta_t = 15 min -> max gap 2 windows; gap of 3 windows = 15 min
        # is NOT < 15
        batch = make_batch([(0, 10, 1.0), (0, 13, 1.0)])
        assert len(components(ex, batch)) == 2

    def test_gap_at_boundary(self):
        ex = EventExtractor(line_network(5))
        batch = make_batch([(0, 10, 1.0), (0, 12, 1.0)])  # 10 min < 15
        assert len(components(ex, batch)) == 1

    def test_neighbouring_sensors_same_window(self):
        ex = EventExtractor(line_network(5, spacing=1.0))
        batch = make_batch([(0, 10, 1.0), (1, 10, 1.0)])
        assert len(components(ex, batch)) == 1

    def test_distant_sensors_same_window(self):
        ex = EventExtractor(line_network(5, spacing=2.0))
        batch = make_batch([(0, 10, 1.0), (1, 10, 1.0)])  # 2.0 >= 1.5
        assert len(components(ex, batch)) == 2

    def test_distance_strictly_less(self):
        ex = EventExtractor(line_network(5, spacing=1.5))
        batch = make_batch([(0, 10, 1.0), (1, 10, 1.0)])
        assert len(components(ex, batch)) == 2


class TestTransitivity:
    """Definitions 2-3: events close under atypical-relation chains."""

    def test_chain_across_sensors(self):
        # congestion expanding along the street: 0@t10, 1@t11, 2@t12 ...
        ex = EventExtractor(line_network(6, spacing=1.0))
        batch = make_batch([(i, 10 + i, 1.0) for i in range(6)])
        assert len(components(ex, batch)) == 1

    def test_temporal_bridge(self):
        # a and c are not directly related (gap 4 windows) but b bridges
        ex = EventExtractor(line_network(3, spacing=1.0))
        batch = make_batch([(0, 10, 1.0), (0, 12, 1.0), (0, 14, 1.0)])
        assert len(components(ex, batch)) == 1

    def test_spatial_bridge(self):
        # sensors 0 and 2 are 2 miles apart; sensor 1 bridges them
        ex = EventExtractor(line_network(3, spacing=1.0))
        batch = make_batch([(0, 10, 1.0), (2, 10, 1.0), (1, 10, 1.0)])
        assert len(components(ex, batch)) == 1

    def test_two_roads_stay_separate(self):
        ex = EventExtractor(two_road_network(gap=5.0))
        batch = make_batch([(0, 10, 1.0), (1, 10, 1.0), (6, 10, 1.0), (7, 10, 1.0)])
        assert len(components(ex, batch)) == 2

    def test_morning_and_evening_separate(self):
        # paper Example 3: E_A (morning) and E_B (evening) on shared sensors
        ex = EventExtractor(line_network(4, spacing=1.0))
        spec = WindowSpec()
        morning = [(1, spec.window_at(0, 8, 5), 4.0), (2, spec.window_at(0, 8, 10), 5.0)]
        evening = [(1, spec.window_at(0, 18, 20), 2.0), (2, spec.window_at(0, 18, 25), 5.0)]
        assert len(components(ex, make_batch(morning + evening))) == 2


class TestMicroClusters:
    def test_features_aggregate_severity(self):
        ex = EventExtractor(line_network(4, spacing=1.0))
        batch = make_batch([(1, 97, 4.0), (1, 98, 5.0), (2, 98, 5.0)])
        clusters = ex.extract_micro_clusters(batch)
        assert len(clusters) == 1
        c = clusters[0]
        assert c.spatial[1] == 9.0
        assert c.spatial[2] == 5.0
        assert c.severity() == 14.0

    def test_time_of_day_keys_by_default(self):
        ex = EventExtractor(line_network(3))
        spec = WindowSpec()
        window = spec.window_at(3, 8, 5)  # day 3
        clusters = ex.extract_micro_clusters(make_batch([(0, window, 4.0)]))
        assert clusters[0].temporal.min_key() == spec.window_in_day(window)

    def test_absolute_keys_optional(self):
        ex = EventExtractor(line_network(3), time_of_day_features=False)
        spec = WindowSpec()
        window = spec.window_at(3, 8, 5)
        clusters = ex.extract_micro_clusters(make_batch([(0, window, 4.0)]))
        assert clusters[0].temporal.min_key() == window

    def test_clusters_sorted_by_severity(self):
        ex = EventExtractor(line_network(10, spacing=1.0))
        batch = make_batch([(0, 10, 5.0), (0, 11, 5.0), (9, 100, 1.0)])
        clusters = ex.extract_micro_clusters(batch)
        assert clusters[0].severity() >= clusters[1].severity()

    def test_empty_batch(self):
        ex = EventExtractor(line_network(3))
        assert ex.extract_micro_clusters(RecordBatch.empty()) == []

    def test_ids_unique(self):
        ex = EventExtractor(line_network(10, spacing=1.0))
        batch = make_batch([(0, 10, 1.0), (5, 200, 1.0), (9, 400, 1.0)])
        clusters = ex.extract_micro_clusters(batch)
        assert len({c.cluster_id for c in clusters}) == 3


class TestEvents:
    def test_event_is_holistic(self):
        # Property 1: the event stores every record
        ex = EventExtractor(line_network(4, spacing=1.0))
        batch = make_batch([(1, 97, 4.0), (1, 98, 5.0), (2, 98, 5.0)])
        events = ex.extract_events(batch)
        assert len(events) == 1
        assert len(events[0]) == 3

    def test_event_accessors(self):
        ex = EventExtractor(line_network(4, spacing=1.0))
        events = ex.extract_events(make_batch([(1, 97, 4.0), (2, 98, 5.0)]))
        event = events[0]
        assert event.sensor_ids == frozenset({1, 2})
        assert event.windows == frozenset({97, 98})
        assert event.total_severity() == 9.0

    def test_event_to_micro_cluster(self):
        ex = EventExtractor(line_network(4, spacing=1.0))
        event = ex.extract_events(make_batch([(1, 97, 4.0), (2, 98, 5.0)]))[0]
        cluster = event.to_micro_cluster()
        assert cluster.severity() == 9.0

    def test_event_requires_records(self):
        with pytest.raises(ValueError):
            AtypicalEvent(RecordBatch.empty())

    def test_events_sorted_largest_first(self):
        ex = EventExtractor(line_network(10, spacing=1.0))
        batch = make_batch([(0, 10, 5.0), (0, 11, 5.0), (9, 400, 1.0)])
        events = ex.extract_events(batch)
        assert events[0].total_severity() == 10.0


class TestGridVsNaive:
    """The indexed path must agree exactly with the O(n^2) baseline."""

    @settings(max_examples=25, deadline=None)
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 60), st.floats(0.5, 5)),
            min_size=1,
            max_size=40,
        )
    )
    def test_same_components(self, records):
        net = line_network(10, spacing=1.0)
        batch = make_batch(records)
        grid = EventExtractor(net, method="grid")
        naive = EventExtractor(net, method="naive")
        assert components(grid, batch) == components(naive, batch)

    @settings(max_examples=15, deadline=None)
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 40), st.floats(0.5, 5)),
            min_size=1,
            max_size=30,
        ),
        gap=st.floats(1.0, 6.0),
    )
    def test_same_components_two_roads(self, records, gap):
        net = two_road_network(gap=gap)
        batch = make_batch(records)
        grid = EventExtractor(net, method="grid")
        naive = EventExtractor(net, method="naive")
        assert components(grid, batch) == components(naive, batch)
