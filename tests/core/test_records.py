"""Tests for atypical records and columnar batches."""

import numpy as np
import pytest

from repro.core.records import AtypicalRecord, RecordBatch

from tests.conftest import make_batch


class TestAtypicalRecord:
    def test_paper_example(self):
        # <s1, 8:05am-8:10am, 4 min> with 5-minute windows: window 97
        record = AtypicalRecord(1, 97, 4.0)
        assert record.severity == 4.0

    def test_rejects_zero_severity(self):
        with pytest.raises(ValueError):
            AtypicalRecord(1, 0, 0.0)

    def test_rejects_negative_severity(self):
        with pytest.raises(ValueError):
            AtypicalRecord(1, 0, -2.0)

    def test_ordering(self):
        assert AtypicalRecord(1, 2, 1.0) < AtypicalRecord(2, 0, 1.0)


class TestRecordBatch:
    def test_empty(self):
        batch = RecordBatch.empty()
        assert len(batch) == 0
        assert batch.total_severity() == 0.0

    def test_from_records_roundtrip(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0)])
        assert list(batch) == [AtypicalRecord(1, 10, 4.0), AtypicalRecord(2, 11, 5.0)]

    def test_getitem(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0)])
        assert batch[1] == AtypicalRecord(2, 11, 5.0)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch([1, 2], [0], [1.0, 2.0])

    def test_columns_readonly(self):
        batch = make_batch([(1, 10, 4.0)])
        with pytest.raises(ValueError):
            batch.severities[0] = 0.0

    def test_total_severity(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0), (1, 12, 1.0)])
        assert batch.total_severity() == 10.0

    def test_concat(self):
        a = make_batch([(1, 10, 4.0)])
        b = make_batch([(2, 11, 5.0)])
        combined = RecordBatch.concat([a, b])
        assert len(combined) == 2
        assert combined.total_severity() == 9.0

    def test_concat_skips_empty(self):
        combined = RecordBatch.concat([RecordBatch.empty(), make_batch([(1, 1, 1.0)])])
        assert len(combined) == 1

    def test_concat_all_empty(self):
        assert len(RecordBatch.concat([RecordBatch.empty()])) == 0

    def test_select(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0), (3, 12, 6.0)])
        selected = batch.select(np.array([0, 2]))
        assert [r.sensor_id for r in selected] == [1, 3]

    def test_restrict_windows(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0), (3, 20, 6.0)])
        sub = batch.restrict_windows(10, 11)
        assert len(sub) == 2

    def test_restrict_sensors(self):
        batch = make_batch([(1, 10, 4.0), (2, 11, 5.0), (3, 20, 6.0)])
        sub = batch.restrict_sensors([2, 3])
        assert sorted(r.sensor_id for r in sub) == [2, 3]

    def test_sorted_by_window(self):
        batch = make_batch([(1, 20, 4.0), (2, 10, 5.0)])
        assert [r.window for r in batch.sorted_by_window()] == [10, 20]

    def test_validate_accepts_good(self):
        make_batch([(1, 10, 4.0)]).validate()

    def test_validate_rejects_nonpositive_severity(self):
        batch = RecordBatch([1], [0], [0.0])
        with pytest.raises(ValueError):
            batch.validate()

    def test_validate_rejects_negative_window(self):
        batch = RecordBatch([1], [-1], [1.0])
        with pytest.raises(ValueError):
            batch.validate()

    def test_validate_rejects_negative_sensor(self):
        batch = RecordBatch([-1], [0], [1.0])
        with pytest.raises(ValueError):
            batch.validate()
