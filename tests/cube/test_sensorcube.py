"""Tests for the sensor-day cube and the R-tree severity provider."""

import numpy as np
import pytest

from repro.cube.datacube import SeverityCube
from repro.cube.sensorcube import RTreeSeverityProvider, SensorDayCube
from repro.spatial.geometry import BBox
from repro.spatial.regions import DistrictGrid
from repro.temporal.hierarchy import Calendar

from tests.conftest import line_network, make_batch, two_road_network


def build(num_sensors=10, days=(14,)):
    net = line_network(num_sensors, spacing=1.0)
    calendar = Calendar(
        month_lengths=days, month_names=tuple(f"m{i}" for i in range(len(days)))
    )
    return net, calendar, SensorDayCube(net, calendar)


class TestSensorDayCube:
    def test_shape(self):
        _, _, cube = build()
        assert cube.shape == (10, 14)

    def test_accumulates_per_sensor(self):
        _, _, cube = build()
        cube.add_records(make_batch([(3, 10, 4.0), (3, 11, 2.0), (5, 10, 1.0)]))
        assert cube.sensor_severity(3, [0]) == 6.0
        assert cube.sensor_severity(5, [0]) == 1.0

    def test_day_separation(self):
        _, _, cube = build()
        cube.add_records(make_batch([(3, 10, 4.0), (3, 288 + 10, 2.0)]))
        assert cube.sensor_severity(3, [0]) == 4.0
        assert cube.sensor_severity(3, [1]) == 2.0

    def test_beyond_calendar_rejected(self):
        _, _, cube = build()
        with pytest.raises(ValueError):
            cube.add_records(make_batch([(0, 288 * 99, 1.0)]))

    def test_day_weights_skip_zeros(self):
        _, _, cube = build()
        cube.add_records(make_batch([(3, 10, 4.0)]))
        assert cube.day_weights([0]) == {3: 4.0}

    def test_total(self):
        _, _, cube = build()
        cube.add_records(make_batch([(1, 1, 2.0), (2, 2, 3.0)]))
        assert cube.total_severity() == 5.0

    def test_empty_batch(self):
        from repro.core.records import RecordBatch

        _, _, cube = build()
        cube.add_records(RecordBatch.empty())
        assert cube.records_added == 0


class TestRTreeSeverityProvider:
    def test_rectangle_matches_manual_sum(self):
        net, calendar, cube = build()
        cube.add_records(make_batch([(0, 10, 4.0), (4, 10, 6.0), (9, 10, 1.0)]))
        provider = RTreeSeverityProvider(cube, net)
        # sensors 0..4 live at x = 0..4
        assert provider.rectangle_severity(BBox(-1, -1, 4.5, 1), [0]) == 10.0

    def test_day_range_refresh(self):
        net, calendar, cube = build()
        cube.add_records(make_batch([(0, 10, 4.0), (0, 288 + 10, 6.0)]))
        provider = RTreeSeverityProvider(cube, net)
        box = BBox(-1, -1, 99, 1)
        assert provider.rectangle_severity(box, [0]) == 4.0
        assert provider.rectangle_severity(box, [1]) == 6.0
        assert provider.rectangle_severity(box, [0, 1]) == 10.0

    def test_matches_district_cube(self):
        # the R-tree provider must agree with the district severity cube on
        # every district of a tiling grid
        net = two_road_network(gap=3.0)
        calendar = Calendar(month_lengths=(7,), month_names=("m",))
        districts = DistrictGrid(net, cols=3, rows=2)
        district_cube = SeverityCube(districts, calendar)
        sensor_cube = SensorDayCube(net, calendar)
        rng = np.random.default_rng(4)
        records = [
            (int(rng.integers(0, 12)), int(rng.integers(0, 7 * 288)), float(rng.uniform(0.5, 5)))
            for _ in range(200)
        ]
        batch = make_batch(records)
        district_cube.add_records(batch)
        sensor_cube.add_records(batch)
        provider = RTreeSeverityProvider(sensor_cube, net)
        days = list(range(7))
        for district in districts:
            assert provider.district_severity(district, days) == pytest.approx(
                district_cube.district_severity(district, days)
            )

    def test_usable_as_red_zone_provider(self):
        # plug the R-tree provider into the query processor (the Sec. II-A
        # "R-tree rectangles" partition option)
        from repro.core.forest import AtypicalForest
        from repro.core.integration import ClusterIntegrator
        from repro.core.query import AnalyticalQuery, QueryProcessor
        from repro.spatial.regions import QueryRegion

        from tests.conftest import make_cluster

        net = line_network(10, spacing=1.0)
        calendar = Calendar(month_lengths=(7,), month_names=("m",))
        districts = DistrictGrid(net, cols=5, rows=1)
        forest = AtypicalForest(calendar, integrator=ClusterIntegrator(0.5))
        sensor_cube = SensorDayCube(net, calendar)
        for day in range(7):
            cluster = make_cluster(
                {2: 20.0, 3: 10.0}, {100: 30.0}, cluster_id=forest.ids.next_id()
            )
            forest.add_day(day, [cluster])
            sensor_cube.add_records(
                make_batch([(2, day * 288 + 100, 20.0), (3, day * 288 + 100, 10.0)])
            )
        provider = RTreeSeverityProvider(sensor_cube, net)
        processor = QueryProcessor(forest, districts, provider, delta_s=0.05)
        query = AnalyticalQuery.over_days(QueryRegion.whole_network(net), 0, 7)
        result = processor.run(query, "gui")
        assert result.stats.red_zones == 1
        assert len(result.significant()) == 1
