"""Tests for the severity cube (bottom-up aggregation, Property 4)."""

import numpy as np
import pytest

from repro.cube.datacube import SeverityCube
from repro.spatial.regions import DistrictGrid
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

from tests.conftest import line_network, make_batch


def small_cube(num_sensors=10, cols=5, days=(14,)):
    net = line_network(num_sensors, spacing=1.0)
    districts = DistrictGrid(net, cols=cols, rows=1)
    calendar = Calendar(month_lengths=days, month_names=tuple(f"m{i}" for i in range(len(days))))
    return SeverityCube(districts, calendar), districts, calendar


class TestLoading:
    def test_shape(self):
        cube, _, _ = small_cube()
        assert cube.shape == (5, 14)

    def test_add_records_accumulates(self):
        cube, districts, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (1, 20, 5.0)]))
        # sensors 0 and 1 are in district 0; windows 10 and 20 are day 0
        assert cube.cell(0, 0) == 9.0

    def test_records_added_counter(self):
        cube, _, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (1, 20, 5.0)]))
        assert cube.records_added == 2

    def test_empty_batch_noop(self):
        cube, _, _ = small_cube()
        from repro.core.records import RecordBatch

        cube.add_records(RecordBatch.empty())
        assert cube.total_severity() == 0.0

    def test_unknown_sensor_rejected(self):
        cube, _, _ = small_cube()
        with pytest.raises((ValueError, IndexError)):
            cube.add_records(make_batch([(99, 10, 4.0)]))

    def test_window_beyond_calendar_rejected(self):
        cube, _, _ = small_cube()
        with pytest.raises(ValueError):
            cube.add_records(make_batch([(0, 288 * 30, 4.0)]))

    def test_add_readings_allows_zero(self):
        cube, _, _ = small_cube()
        cube.add_readings(
            np.array([0, 1]), np.array([0, 1]), np.array([0.0, 2.0])
        )
        assert cube.total_severity() == 2.0


class TestRollups:
    def test_district_severity(self):
        cube, districts, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (0, 288 + 10, 6.0)]))
        district = districts[0]
        assert cube.district_severity(district, [0]) == 4.0
        assert cube.district_severity(district, [0, 1]) == 10.0

    def test_day_severity_rolls_over_districts(self):
        cube, _, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (9, 12, 6.0)]))
        assert cube.day_severity(0) == 10.0

    def test_week_severity(self):
        cube, _, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (0, 288 * 8, 6.0)]))
        assert cube.week_severity(0) == 4.0
        assert cube.week_severity(1) == 6.0

    def test_month_severity(self):
        cube, _, _ = small_cube(days=(7, 7))
        cube.add_records(make_batch([(0, 10, 4.0), (0, 288 * 10, 6.0)]))
        assert cube.month_severity(0) == 4.0
        assert cube.month_severity(1) == 6.0

    def test_region_severity(self):
        cube, districts, _ = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (4, 10, 6.0), (9, 10, 1.0)]))
        assert cube.region_severity([0, 2], [0]) == 10.0

    def test_region_severity_empty(self):
        cube, _, _ = small_cube()
        assert cube.region_severity([], [0]) == 0.0

    def test_total_is_apex(self):
        cube, districts, cal = small_cube()
        cube.add_records(make_batch([(0, 10, 4.0), (5, 300, 6.0)]))
        total = sum(
            cube.district_severity(d, range(cal.num_days)) for d in districts
        )
        assert cube.total_severity() == pytest.approx(total) == 10.0


class TestDistributivity:
    """Property 4: F combines from disjoint partial loads."""

    def test_combine_matches_single_load(self):
        cube_a, districts, cal = small_cube()
        cube_b = SeverityCube(districts, cal)
        cube_full = SeverityCube(districts, cal)
        part1 = make_batch([(0, 10, 4.0), (3, 400, 2.0)])
        part2 = make_batch([(5, 10, 1.0), (0, 10, 3.0)])
        cube_a.add_records(part1)
        cube_b.add_records(part2)
        from repro.core.records import RecordBatch

        cube_full.add_records(RecordBatch.concat([part1, part2]))
        combined = cube_a.combine(cube_b)
        assert np.allclose(np.asarray(combined.cells()), np.asarray(cube_full.cells()))
        assert combined.records_added == cube_full.records_added

    def test_combine_shape_mismatch(self):
        cube_a, _, _ = small_cube(cols=5)
        cube_b, _, _ = small_cube(cols=2)
        with pytest.raises(ValueError):
            cube_a.combine(cube_b)

    def test_cells_readonly(self):
        cube, _, _ = small_cube()
        with pytest.raises(ValueError):
            cube.cells()[0, 0] = 1.0

    def test_storage_bytes(self):
        cube, _, _ = small_cube()
        assert cube.storage_bytes() == 5 * 14 * 8
