"""Tests for the CubeView baselines (OC / MC / PR)."""

import numpy as np
import pytest

from repro.cube.cubeview import build_cube_mc, build_cube_oc, preprocess
from repro.spatial.regions import DistrictGrid
from repro.storage.codec import ReadingChunk
from repro.storage.dataset import CPSDataset, CPSDatasetWriter, DatasetMeta
from repro.temporal.hierarchy import Calendar

from tests.conftest import line_network


@pytest.fixture()
def world(tmp_path):
    net = line_network(4, spacing=1.0)
    districts = DistrictGrid(net, cols=2, rows=1)
    calendar = Calendar(month_lengths=(2,), month_names=("m",))
    wpd = 288
    path = tmp_path / "d.cps"
    meta = DatasetMeta("D", 4, 0, 2, 5)
    rng = np.random.default_rng(1)
    with CPSDatasetWriter(path, meta) as writer:
        for day in range(2):
            n = 4 * wpd
            congested = np.zeros(n, dtype=np.float32)
            hot = rng.choice(n, size=30, replace=False)
            congested[hot] = rng.uniform(1, 5, size=30).astype(np.float32)
            writer.append_day(
                ReadingChunk(
                    np.repeat(np.arange(4, dtype=np.int32), wpd),
                    np.tile(
                        np.arange(day * wpd, (day + 1) * wpd, dtype=np.int32), 4
                    ),
                    np.full(n, 60.0, dtype=np.float32),
                    congested,
                )
            )
    return CPSDataset(path), districts, calendar


class TestPreprocess:
    def test_selects_only_atypical(self, world):
        dataset, _, _ = world
        result = preprocess([dataset])
        assert result.report.records_scanned == 2 * 4 * 288
        assert result.report.records_aggregated == 60
        assert len(result.all_records()) == 60

    def test_day_subset(self, world):
        dataset, _, _ = world
        result = preprocess([dataset], days=[1])
        assert result.days == [1]

    def test_report_method_name(self, world):
        dataset, _, _ = world
        assert preprocess([dataset]).report.method == "PR"


class TestOCvsMC:
    def test_same_cube_content(self, world):
        # OC aggregates all readings (normal ones contribute 0 severity);
        # MC aggregates the PR output — the cubes must agree exactly
        dataset, districts, calendar = world
        oc_cube, oc_report = build_cube_oc([dataset], districts, calendar)
        pre = preprocess([dataset])
        mc_cube, mc_report = build_cube_mc(pre.batches, districts, calendar)
        assert np.allclose(np.asarray(oc_cube.cells()), np.asarray(mc_cube.cells()))

    def test_oc_scans_everything(self, world):
        dataset, districts, calendar = world
        _, report = build_cube_oc([dataset], districts, calendar)
        assert report.records_scanned == 2 * 4 * 288
        assert report.method == "OC"

    def test_mc_scans_only_atypical(self, world):
        dataset, districts, calendar = world
        pre = preprocess([dataset])
        _, report = build_cube_mc(pre.batches, districts, calendar)
        assert report.records_scanned == 60
        assert report.method == "MC"

    def test_model_bytes_include_sensor_hour_cuboid(self, world):
        # OC materializes the dense sensor x hour aggregates over all
        # readings, so its model dwarfs the district-day severity cube
        dataset, districts, calendar = world
        cube, report = build_cube_oc([dataset], districts, calendar)
        dense = 4 * calendar.num_days * 24 * 16  # sensors x hours x 16 B
        assert report.model_bytes == cube.storage_bytes() + dense
