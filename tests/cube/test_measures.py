"""Tests for the aggregate-measure taxonomy (Gray et al.)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube.measures import (
    AverageMeasure,
    CountMeasure,
    MaxMeasure,
    MedianMeasure,
    MinMeasure,
    SumMeasure,
)

value_lists = st.lists(st.floats(-100, 100), min_size=0, max_size=30)
nonempty_lists = st.lists(st.floats(-100, 100), min_size=1, max_size=30)


def split(values):
    mid = len(values) // 2
    return values[:mid], values[mid:]


class TestDistributive:
    def test_sum_compute(self):
        assert SumMeasure().compute([1, 2, 3]) == 6.0

    def test_count_compute(self):
        assert CountMeasure().compute([5, 5, 5]) == 3.0

    def test_min_compute(self):
        assert MinMeasure().compute([3, -1, 2]) == -1.0

    def test_max_compute(self):
        assert MaxMeasure().compute([3, -1, 2]) == 3.0

    def test_sum_empty(self):
        assert SumMeasure().compute([]) == 0.0

    @given(values=value_lists)
    def test_sum_distributivity(self, values):
        # Property 4's definition: combine(subsets) == whole
        m = SumMeasure()
        left, right = split(values)
        combined = m.combine(
            m.add(m.initial(), np.asarray(left)),
            m.add(m.initial(), np.asarray(right)),
        )
        assert m.finalize(combined) == pytest.approx(m.compute(values))

    @given(values=nonempty_lists)
    def test_min_max_distributivity(self, values):
        for m in (MinMeasure(), MaxMeasure()):
            left, right = split(values)
            state = m.combine(
                m.add(m.initial(), np.asarray(left)),
                m.add(m.initial(), np.asarray(right)),
            )
            assert m.finalize(state) == pytest.approx(m.compute(values))

    @given(values=value_lists)
    def test_count_distributivity(self, values):
        m = CountMeasure()
        left, right = split(values)
        state = m.combine(
            m.add(m.initial(), np.asarray(left)),
            m.add(m.initial(), np.asarray(right)),
        )
        assert m.finalize(state) == len(values)


class TestAlgebraic:
    def test_average(self):
        assert AverageMeasure().compute([2, 4, 6]) == pytest.approx(4.0)

    def test_average_empty(self):
        assert AverageMeasure().compute([]) == 0.0

    def test_components_bounded(self):
        # algebraic = bounded number of distributive arguments (Property 2)
        assert len(AverageMeasure().components) == 2

    @given(values=nonempty_lists)
    def test_average_from_partials(self, values):
        m = AverageMeasure()
        left, right = split(values)
        state = m.combine(
            m.add(m.initial(), np.asarray(left)),
            m.add(m.initial(), np.asarray(right)),
        )
        assert m.finalize(state) == pytest.approx(float(np.mean(values)))

    def test_rejects_empty_components(self):
        from repro.cube.measures import AlgebraicMeasure

        class Hollow(AlgebraicMeasure):
            def finalize(self, state):  # pragma: no cover - never reached
                return 0.0

        with pytest.raises(ValueError):
            Hollow(())


class TestHolistic:
    def test_median(self):
        assert MedianMeasure().compute([1, 9, 3]) == 3.0

    def test_median_empty(self):
        assert MedianMeasure().compute([]) == 0.0

    @given(values=nonempty_lists)
    def test_median_combine_order_irrelevant(self, values):
        m = MedianMeasure()
        left, right = split(values)
        a = m.add(m.initial(), np.asarray(left))
        b = m.add(m.initial(), np.asarray(right))
        assert m.finalize(m.combine(a, b)) == pytest.approx(
            m.finalize(m.combine(b, a))
        )

    @given(values=value_lists)
    def test_state_size_unbounded(self, values):
        # Property 1's criterion: holistic state grows with the data
        m = MedianMeasure()
        state = m.add(m.initial(), np.asarray(values))
        assert m.state_size(state) == len(values)
