"""Tests for time-window arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal.windows import MINUTES_PER_DAY, WindowSpec


class TestWindowSpecConstruction:
    def test_default_is_five_minutes(self):
        assert WindowSpec().width_minutes == 5

    def test_default_windows_per_day(self):
        assert WindowSpec().windows_per_day == 288

    def test_windows_per_hour(self):
        assert WindowSpec().windows_per_hour == 12

    def test_fifteen_minute_windows(self):
        spec = WindowSpec(15)
        assert spec.windows_per_day == 96

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            WindowSpec(0)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            WindowSpec(-5)

    def test_rejects_width_not_dividing_day(self):
        with pytest.raises(ValueError):
            WindowSpec(7)


class TestConversions:
    def test_window_of_minute(self, spec):
        assert spec.window_of_minute(0) == 0
        assert spec.window_of_minute(4) == 0
        assert spec.window_of_minute(5) == 1

    def test_start_and_end_minute(self, spec):
        assert spec.start_minute(3) == 15
        assert spec.end_minute(3) == 20

    def test_day_of_window(self, spec):
        assert spec.day_of_window(0) == 0
        assert spec.day_of_window(287) == 0
        assert spec.day_of_window(288) == 1

    def test_hour_of_day(self, spec):
        # 8:05am window on day 2
        window = spec.window_at(2, 8, 5)
        assert spec.hour_of_day(window) == 8

    def test_minute_of_day(self, spec):
        window = spec.window_at(0, 8, 5)
        assert spec.minute_of_day(window) == 8 * 60 + 5

    def test_window_in_day(self, spec):
        window = spec.window_at(3, 0, 0)
        assert spec.window_in_day(window) == 0
        assert spec.window_in_day(window + 5) == 5

    def test_day_window_range(self, spec):
        rng = spec.day_window_range(2)
        assert rng.start == 2 * 288
        assert len(rng) == 288

    def test_window_at_example(self, spec):
        # the paper's example record covers 8:05am-8:10am
        window = spec.window_at(0, 8, 5)
        assert spec.start_minute(window) == 485

    def test_window_at_rejects_bad_hour(self, spec):
        with pytest.raises(ValueError):
            spec.window_at(0, 24, 0)

    def test_window_at_rejects_bad_minute(self, spec):
        with pytest.raises(ValueError):
            spec.window_at(0, 8, 61)

    def test_hour_of_window_absolute(self, spec):
        assert spec.hour_of_window(spec.window_at(1, 3, 0)) == 27


class TestInterval:
    """Definition 1 relates records via interval(t_i, t_j) < delta_t."""

    def test_same_window_interval_zero(self, spec):
        assert spec.interval_minutes(10, 10) == 0

    def test_adjacent_windows(self, spec):
        assert spec.interval_minutes(10, 11) == 5

    def test_symmetric(self, spec):
        assert spec.interval_minutes(3, 9) == spec.interval_minutes(9, 3)

    def test_windows_within_default_delta_t(self, spec):
        # delta_t = 15 min: gaps of up to 2 windows are strictly below
        assert spec.windows_within(15.0) == 2

    def test_windows_within_non_multiple(self, spec):
        # 12 minutes: gaps of 2 windows = 10 min < 12
        assert spec.windows_within(12.0) == 2

    def test_windows_within_small(self, spec):
        # 5 minutes: only the same window qualifies (interval 0 < 5)
        assert spec.windows_within(5.0) == 0

    def test_windows_within_zero(self, spec):
        assert spec.windows_within(0.0) == -1

    @given(gap=st.integers(0, 1000), minutes=st.floats(0.1, 500))
    def test_windows_within_matches_interval(self, gap, minutes):
        spec = WindowSpec()
        qualifies = spec.interval_minutes(0, gap) < minutes
        assert qualifies == (gap <= spec.windows_within(minutes))


class TestLabels:
    def test_label_contains_day(self, spec):
        assert spec.label(spec.window_at(3, 8, 5)) == "day 3 08:05-08:10"

    def test_label_wraps_midnight(self, spec):
        label = spec.label(spec.window_at(0, 23, 55))
        assert label.endswith("23:55-00:00")

    def test_minutes_per_day_constant(self):
        assert MINUTES_PER_DAY == 1440


class TestWideWindows:
    def test_windows_per_hour_zero_for_wide_windows(self):
        assert WindowSpec(120).windows_per_hour == 0

    def test_wide_window_day_mapping(self):
        spec = WindowSpec(120)
        assert spec.windows_per_day == 12
        assert spec.day_of_window(12) == 1
