"""Tests for the calendar / temporal aggregation hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal.hierarchy import (
    PEMS_CALENDAR,
    PEMS_MONTH_LENGTHS,
    PEMS_MONTH_NAMES,
    Calendar,
)


class TestCalendarBasics:
    def test_default_matches_paper_year(self):
        cal = Calendar()
        assert cal.num_months == 12
        assert cal.num_days == sum(PEMS_MONTH_LENGTHS) == 365

    def test_pems_names(self):
        assert PEMS_MONTH_NAMES[0] == "Oct 2008"
        assert PEMS_MONTH_NAMES[-1] == "Sep 2009"

    def test_num_weeks(self):
        assert Calendar().num_weeks == 53  # ceil(365 / 7)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Calendar(month_lengths=(), month_names=())

    def test_rejects_nonpositive_month(self):
        with pytest.raises(ValueError):
            Calendar(month_lengths=(31, 0), month_names=("a", "b"))

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValueError):
            Calendar(month_lengths=(31,), month_names=("a", "b"))

    def test_module_level_calendar(self):
        assert PEMS_CALENDAR.num_days == 365


class TestMonthMapping:
    def test_first_day_in_first_month(self):
        assert Calendar().month_of_day(0) == 0

    def test_last_day_of_first_month(self):
        assert Calendar().month_of_day(30) == 0

    def test_first_day_of_second_month(self):
        assert Calendar().month_of_day(31) == 1

    def test_last_day_of_year(self):
        assert Calendar().month_of_day(364) == 11

    def test_month_day_range_roundtrip(self):
        cal = Calendar()
        for month in range(cal.num_months):
            for day in cal.month_day_range(month):
                assert cal.month_of_day(day) == month

    def test_month_ranges_partition_year(self):
        cal = Calendar()
        days = [d for m in range(cal.num_months) for d in cal.month_day_range(m)]
        assert days == list(range(cal.num_days))

    def test_day_out_of_range(self):
        with pytest.raises(ValueError):
            Calendar().month_of_day(365)

    def test_negative_day(self):
        with pytest.raises(ValueError):
            Calendar().month_of_day(-1)

    def test_month_out_of_range(self):
        with pytest.raises(ValueError):
            Calendar().month_day_range(12)

    def test_month_name(self):
        assert Calendar().month_name(4) == "Feb 2009"


class TestWeekMapping:
    def test_week_of_day(self):
        cal = Calendar()
        assert cal.week_of_day(0) == 0
        assert cal.week_of_day(6) == 0
        assert cal.week_of_day(7) == 1

    def test_week_day_range(self):
        cal = Calendar()
        assert list(cal.week_day_range(1)) == [7, 8, 9, 10, 11, 12, 13]

    def test_last_week_clipped(self):
        cal = Calendar()
        last = cal.week_day_range(cal.num_weeks - 1)
        assert last.stop == cal.num_days

    def test_week_out_of_range(self):
        with pytest.raises(ValueError):
            Calendar().week_day_range(99)

    def test_weeks_in_days(self):
        cal = Calendar()
        assert cal.weeks_in_days([0, 1, 7, 8, 20]) == [0, 1, 2]


class TestWeekdays:
    def test_first_day_is_wednesday(self):
        # Oct 1, 2008 was a Wednesday (weekday index 2)
        assert Calendar().weekday_of_day(0) == 2

    def test_weekend_detection(self):
        cal = Calendar()
        # day 3 = Saturday, day 4 = Sunday
        assert cal.is_weekend(3)
        assert cal.is_weekend(4)
        assert not cal.is_weekend(5)

    def test_weekday_cycles(self):
        cal = Calendar()
        assert cal.weekday_of_day(7) == cal.weekday_of_day(0)

    @given(day=st.integers(0, 364))
    def test_weekday_in_range(self, day):
        assert 0 <= Calendar().weekday_of_day(day) <= 6

    def test_iter_months_yields_all(self):
        cal = Calendar()
        months = list(cal.iter_months())
        assert len(months) == 12
        assert months[0][1] == range(0, 31)
