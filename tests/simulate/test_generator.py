"""Tests for the trace generator."""

import json

import numpy as np
import pytest

from repro.simulate.generator import SimulationConfig, TrafficSimulator
from repro.storage.catalog import DatasetCatalog


class TestConfig:
    def test_small_profile(self):
        sim = TrafficSimulator(SimulationConfig.small())
        assert 40 <= len(sim.network) <= 200

    def test_benchmark_profile(self):
        sim = TrafficSimulator(SimulationConfig.benchmark())
        assert 300 <= len(sim.network) <= 600

    def test_config_roundtrip(self):
        config = SimulationConfig.small(seed=11)
        restored = SimulationConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored == config

    def test_calendar_matches_month_lengths(self):
        config = SimulationConfig.small()
        assert TrafficSimulator(config).calendar.num_days == sum(
            config.month_lengths
        )


class TestDaySimulation:
    def test_deterministic_per_day(self, small_sim):
        a = small_sim.simulate_day_matrix(3)
        b = small_sim.simulate_day_matrix(3)
        assert np.array_equal(a, b)

    def test_days_differ(self, small_sim):
        a = small_sim.simulate_day_matrix(0)
        b = small_sim.simulate_day_matrix(1)
        assert not np.array_equal(a, b)

    def test_seeds_differ(self):
        a = TrafficSimulator(SimulationConfig.small(seed=1)).simulate_day_matrix(0)
        b = TrafficSimulator(SimulationConfig.small(seed=2)).simulate_day_matrix(0)
        assert not np.array_equal(a, b)

    def test_matrix_shape(self, small_sim):
        matrix = small_sim.simulate_day_matrix(0)
        assert matrix.shape == (len(small_sim.network), 288)

    def test_severity_bounds(self, small_sim):
        matrix = small_sim.simulate_day_matrix(2)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 5.0

    def test_noise_floor_applied(self, small_sim):
        matrix = small_sim.simulate_day_matrix(2)
        positive = matrix[matrix > 0]
        assert positive.min() >= 0.5

    def test_atypical_fraction_in_paper_range(self, small_sim):
        # Fig. 14 reports ~2.3 % - 4 %; weekdays of the synthetic trace
        # should land in a comparable band
        fracs = [small_sim.atypical_fraction(d) for d in (0, 1, 2, 5, 6)]
        # the small profile is denser than the paper's 2-4 % because the
        # same event population sits on a tenth of the sensors; the
        # benchmark profile (used for the experiments) lands at 3-6 %
        assert all(0.005 < f < 0.16 for f in fracs)

    def test_chunk_covers_all_readings(self, small_sim):
        chunk = small_sim.simulate_day(0)
        assert len(chunk) == len(small_sim.network) * 288

    def test_chunk_windows_absolute(self, small_sim):
        chunk = small_sim.simulate_day(2)
        assert chunk.windows.min() == 2 * 288
        assert chunk.windows.max() == 3 * 288 - 1

    def test_congested_speeds_slower(self, small_sim):
        chunk = small_sim.simulate_day(2)
        mask = chunk.congested >= 4.0
        if mask.any():
            assert chunk.speeds[mask].mean() < chunk.speeds[~mask].mean() - 10


class TestHotspotPopulation:
    def test_dominants_on_first_corridor(self, small_sim):
        dominant = [h for h in small_sim.hotspots if h.extent_sensors >= 8.0]
        assert {h.highway_id for h in dominant} == {0, 1}

    def test_am_pm_split(self, small_sim):
        for h in small_sim.hotspots:
            if h.extent_sensors >= 1.5:  # recurring tiers
                if h.highway_id % 2 == 0:
                    assert h.peak_minute < 12 * 60
                else:
                    assert h.peak_minute > 12 * 60

    def test_tier_hotspots_stay_clear_of_crossings(self, small_sim):
        # a recurring hotspot's capped support must not touch a crossing
        net = small_sim.network
        ns_sensors = [
            s for s in net if net.highways[s.highway_id].name[-1] in "NS"
        ]
        for spec in small_sim.hotspots:
            if spec.reach_cap_sensors > 5 or spec.extent_sensors < 1.5:
                continue  # dominants own their crossings; minors are random
            sensors = net.highway_sensors(spec.highway_id)
            lo = max(0, spec.center_ordinal - spec.reach_cap_sensors - 1)
            hi = min(len(sensors) - 1, spec.center_ordinal + spec.reach_cap_sensors + 1)
            for ordinal in range(lo, hi + 1):
                location = net.location(sensors[ordinal])
                for ns in ns_sensors:
                    assert location.distance_to(ns.location) >= 1.49


class TestMaterialization:
    def test_write_month_and_reopen(self, tmp_path):
        config = SimulationConfig.small()
        config = SimulationConfig.from_dict(
            {**config.to_dict(), "month_lengths": (3, 3)}
        )
        sim = TrafficSimulator(config)
        catalog = sim.materialize_catalog(tmp_path)
        assert len(catalog) == 2
        ds = catalog.dataset(0)
        assert ds.meta.num_days == 3
        assert ds.total_readings() == len(sim.network) * 288 * 3

    def test_stored_matches_generated(self, tmp_path):
        config = SimulationConfig.from_dict(
            {**SimulationConfig.small().to_dict(), "month_lengths": (2,)}
        )
        sim = TrafficSimulator(config)
        catalog = sim.materialize_catalog(tmp_path)
        stored = catalog.dataset(0).read_day(1)
        live = sim.simulate_day(1)
        assert np.array_equal(stored.congested, live.congested)
        assert np.array_equal(stored.sensor_ids, live.sensor_ids)

    def test_simulator_rebuild_from_catalog_dir(self, tmp_path):
        config = SimulationConfig.from_dict(
            {**SimulationConfig.small(seed=9).to_dict(), "month_lengths": (2,)}
        )
        sim = TrafficSimulator(config)
        sim.materialize_catalog(tmp_path)
        rebuilt = TrafficSimulator.from_catalog_dir(tmp_path)
        assert rebuilt.config == config
        assert len(rebuilt.network) == len(sim.network)
