"""Tests for the congestion event processes."""

import numpy as np
import pytest

from repro.simulate.congestion import (
    MIN_CONGESTED_MINUTES,
    HotspotSpec,
    IncidentProcess,
    apply_hotspot,
    apply_incidents,
    finalize_day,
)


def spec_with(**overrides):
    base = dict(
        hotspot_id=0,
        highway_id=0,
        center_ordinal=10,
        peak_minute=8 * 60,
        extent_sensors=2.0,
        pulses=1,
        pulse_minutes=60.0,
        gap_minutes=20.0,
        core_intensity=4.5,
        weekday_prob=1.0,
        weekend_prob=0.0,
    )
    base.update(overrides)
    return HotspotSpec(**base)


def fresh_matrix(sensors=20, wpd=288):
    return np.zeros((sensors, wpd))


SENSORS = tuple(range(20))


class TestHotspot:
    def test_active_weekday_produces_congestion(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(0)
        pulses = apply_hotspot(matrix, SENSORS, spec_with(), rng, False, 1.0, 1.0, 5)
        assert pulses == 1
        assert matrix.sum() > 0

    def test_weekend_probability_zero(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(0)
        pulses = apply_hotspot(matrix, SENSORS, spec_with(), rng, True, 1.0, 1.0, 5)
        assert pulses == 0
        assert matrix.sum() == 0

    def test_centered_on_spec(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(1)
        apply_hotspot(matrix, SENSORS, spec_with(start_jitter_minutes=0.1), rng, False, 1.0, 1.0, 5)
        per_sensor = matrix.sum(axis=1)
        assert abs(int(per_sensor.argmax()) - 10) <= 1

    def test_reach_cap(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(2)
        apply_hotspot(
            matrix,
            SENSORS,
            spec_with(extent_sensors=5.0, reach_cap_sensors=2),
            rng,
            False,
            1.0,
            1.0,
            5,
        )
        touched = np.flatnonzero(matrix.sum(axis=1) > 0)
        # cap 2 around center 10 +- wobble 1
        assert touched.min() >= 7 and touched.max() <= 13

    def test_pulses_fragment_in_time(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(3)
        apply_hotspot(
            matrix,
            SENSORS,
            spec_with(pulses=3, pulse_minutes=30.0, gap_minutes=25.0),
            rng,
            False,
            1.0,
            1.0,
            5,
        )
        active = np.flatnonzero(matrix.sum(axis=0) > 0)
        gaps = np.diff(active)
        # at least two quiet gaps longer than delta_t (3 windows)
        assert (gaps > 3).sum() >= 2

    def test_weather_scales_intensity(self):
        totals = []
        for intensity in (1.0, 1.55):
            matrix = fresh_matrix()
            rng = np.random.default_rng(4)
            apply_hotspot(
                matrix, SENSORS, spec_with(), rng, False, intensity, 1.0, 5
            )
            totals.append(matrix.sum())
        assert totals[1] > totals[0]

    def test_episode_gating(self):
        spec = spec_with(episode_weeks_on=1, episode_weeks_off=1)
        assert spec.in_episode(0)  # week 0 on
        assert not spec.in_episode(7)  # week 1 off
        assert spec.in_episode(14)

    def test_episode_disabled_by_default(self):
        assert spec_with().in_episode(123456)

    def test_out_of_episode_no_congestion(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(5)
        spec = spec_with(episode_weeks_on=1, episode_weeks_off=1)
        pulses = apply_hotspot(matrix, SENSORS, spec, rng, False, 1.0, 1.0, 5, day=7)
        assert pulses == 0


class TestIncidents:
    def test_reports_match_congestion(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(6)
        reports = apply_incidents(
            matrix, [SENSORS], IncidentProcess(rate_per_day=3.0), rng, 1.0, 5
        )
        if reports:
            assert matrix.sum() > 0
        for report in reports:
            assert report.highway_id == 0
            assert 0 <= report.center_ordinal < len(SENSORS)
            assert report.duration_minutes > 0

    def test_zero_rate(self):
        matrix = fresh_matrix()
        rng = np.random.default_rng(7)
        reports = apply_incidents(
            matrix, [SENSORS], IncidentProcess(rate_per_day=0.0), rng, 1.0, 5
        )
        assert reports == [] and matrix.sum() == 0

    def test_incident_log_deterministic(self, small_sim):
        assert small_sim.incident_log(3) == small_sim.incident_log(3)


class TestFinalize:
    def test_noise_floor(self):
        matrix = fresh_matrix(2, 4)
        matrix[0, 0] = MIN_CONGESTED_MINUTES / 2
        matrix[1, 1] = 3.0
        finalize_day(matrix, 5)
        assert matrix[0, 0] == 0.0
        assert matrix[1, 1] == 3.0

    def test_cap_at_window_width(self):
        matrix = fresh_matrix(1, 2)
        matrix[0, 0] = 9.5
        finalize_day(matrix, 5)
        assert matrix[0, 0] == 5.0

    def test_negative_clipped(self):
        matrix = fresh_matrix(1, 2)
        matrix[0, 1] = -2.0
        finalize_day(matrix, 5)
        assert matrix[0, 1] == 0.0
