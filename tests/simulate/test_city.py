"""Tests for the synthetic city layout."""

import pytest

from repro.simulate.city import CityLayout, build_highways
from repro.spatial.geometry import polyline_length


class TestCityLayout:
    def test_defaults(self):
        layout = CityLayout()
        assert layout.num_corridors == layout.ew_corridors + layout.ns_corridors
        assert layout.num_highways == 2 * layout.num_corridors

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CityLayout(width_miles=0)


class TestBuildHighways:
    def test_count(self):
        layout = CityLayout(ew_corridors=2, ns_corridors=1)
        assert len(build_highways(layout)) == 6

    def test_directions_paired(self):
        highways = build_highways(CityLayout(ew_corridors=1, ns_corridors=1))
        east, west = highways[0], highways[1]
        assert east.name.endswith("E") and west.name.endswith("W")
        assert east.points == tuple(reversed(west.points))

    def test_ns_names(self):
        highways = build_highways(CityLayout(ew_corridors=1, ns_corridors=1))
        north, south = highways[2], highways[3]
        assert north.name.endswith("N") and south.name.endswith("S")

    def test_deterministic_by_seed(self):
        layout = CityLayout()
        a = build_highways(layout, seed=3)
        b = build_highways(layout, seed=3)
        assert all(x.points == y.points for x, y in zip(a, b))

    def test_ids_dense(self):
        highways = build_highways(CityLayout())
        assert [h.highway_id for h in highways] == list(range(len(highways)))

    def test_length_close_to_nominal(self):
        layout = CityLayout(width_miles=18)
        highways = build_highways(layout, seed=1)
        ew = [h for h in highways if h.name.endswith("E")]
        for highway in ew:
            assert polyline_length(highway.points) == pytest.approx(18, rel=0.05)

    def test_jitter_bounded(self):
        layout = CityLayout(jitter_miles=0.15)
        for highway in build_highways(layout, seed=2):
            if highway.name.endswith(("E", "W")):
                ys = [p.y for p in highway.points]
                assert max(ys) - min(ys) <= 2 * 0.15 + 1e-9

    def test_corridors_spaced_apart(self):
        # adjacent EW corridors must stay further apart than delta_d = 1.5
        layout = CityLayout()
        highways = build_highways(layout, seed=7)
        ew = [h for h in highways if h.name.endswith("E")]
        centers = sorted(sum(p.y for p in h.points) / len(h.points) for h in ew)
        for a, b in zip(centers, centers[1:]):
            assert b - a > 1.5
