"""Tests for the weather context model."""

import pytest

from repro.simulate.weather import WEATHER_STATES, WeatherModel


class TestWeatherModel:
    def test_length(self):
        assert len(WeatherModel(30, seed=1)) == 30

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeatherModel(0)

    def test_deterministic_by_seed(self):
        a = WeatherModel(60, seed=5)
        b = WeatherModel(60, seed=5)
        assert [d.state.name for d in a.states()] == [
            d.state.name for d in b.states()
        ]

    def test_seeds_differ(self):
        a = WeatherModel(120, seed=1)
        b = WeatherModel(120, seed=2)
        assert [d.state.name for d in a.states()] != [
            d.state.name for d in b.states()
        ]

    def test_states_are_known(self):
        model = WeatherModel(100, seed=3)
        for day in model.states():
            assert day.state.name in WEATHER_STATES

    def test_multipliers_match_table(self):
        model = WeatherModel(50, seed=3)
        for day in model.states():
            assert day.state.intensity == WEATHER_STATES[day.state.name]["intensity"]
            assert day.state.activity == WEATHER_STATES[day.state.name]["activity"]

    def test_mostly_clear(self):
        model = WeatherModel(365, seed=7)
        clear = sum(1 for d in model.states() if d.state.name == "clear")
        assert clear > 200  # the chain's stationary distribution is ~70 % clear

    def test_rainy_days_listed(self):
        model = WeatherModel(100, seed=7)
        rainy = set(model.rainy_days())
        for day in range(100):
            assert (model.day(day).state.name != "clear") == (day in rainy)

    def test_storm_multipliers_strongest(self):
        assert WEATHER_STATES["storm"]["intensity"] > WEATHER_STATES["rain"]["intensity"]
        assert WEATHER_STATES["rain"]["intensity"] > WEATHER_STATES["clear"]["intensity"]
