"""Contract, concurrency, telemetry and shutdown tests for repro serve."""

from __future__ import annotations

import io
import json
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.serve import run_top
from repro.serve.handlers import JSON_TYPE, METRICS_TYPE

from .conftest import BUILD_DAYS


def _get(base: str, path: str, headers: dict | None = None):
    req = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _post(base: str, path: str, payload: dict, headers: dict | None = None):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers=headers or {},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestEndpointContracts:
    def test_healthz(self, live_server):
        status, headers, body = _get(live_server.base, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == JSON_TYPE
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["model"]["digest"] == live_server.app.model_digest
        assert doc["model"]["built_days"] == BUILD_DAYS
        assert doc["model"]["micro_clusters"] > 0
        assert doc["uptime_seconds"] >= 0
        assert doc["requests"]["in_flight"] >= 0
        assert doc["observability"] is True

    def test_metrics(self, live_server):
        _get(live_server.base, "/healthz")
        status, headers, body = _get(live_server.base, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_TYPE
        parsed = obs.parse_prometheus_text(body.decode())
        assert parsed["counters"]["repro_serve_requests_total"] == 1
        assert "repro_serve_requests_rate" in parsed["rates"]

    def test_query(self, live_server):
        status, headers, body = _post(
            live_server.base,
            "/query",
            {"first_day": 0, "days": BUILD_DAYS, "explain": True},
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["strategy"] == "gui"
        assert doc["returned"] >= 1
        assert doc["region"] == "city"
        assert doc["report"].startswith("Significant congestion clusters")
        assert len(doc["clusters"]) >= 1
        assert {"select", "integrate"} <= {
            s["name"] for s in doc["explain"]["stages"]
        }
        assert headers["X-Request-Id"] == doc["request_id"]

    def test_query_region_subset(self, live_server):
        status, _, body = _post(
            live_server.base,
            "/query",
            {"days": 2, "sensors": [0, 1, 2, 3, 4]},
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["region"] == "request"
        assert doc["region_sensors"] == 5

    def test_trace_param_isolates_request_spans(self, live_server):
        # warm-up request so the registry holds spans from other requests
        _post(live_server.base, "/query", {"days": 2})
        status, _, body = _post(live_server.base, "/query?trace=1", {"days": 2})
        assert status == 200
        doc = json.loads(body)
        events = doc["trace"]["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans, "expected complete-span events in the trace"
        assert all(
            e["args"].get("request_id") == doc["request_id"] for e in spans
        )


class TestErrors:
    def _expect_error(self, fn, code):
        with pytest.raises(urllib.error.HTTPError) as err:
            fn()
        assert err.value.code == code
        doc = json.loads(err.value.read())
        assert "error" in doc and "request_id" in doc
        return doc

    def test_bad_json_is_400(self, live_server):
        req = urllib.request.Request(
            live_server.base + "/query", data=b"{nope", method="POST"
        )
        doc = self._expect_error(lambda: urllib.request.urlopen(req), 400)
        assert "not valid JSON" in doc["error"]

    def test_unknown_field_is_400(self, live_server):
        self._expect_error(
            lambda: _post(live_server.base, "/query", {"dayz": 7}), 400
        )

    def test_unknown_strategy_is_400(self, live_server):
        self._expect_error(
            lambda: _post(live_server.base, "/query", {"strategy": "magic"}), 400
        )

    def test_unbuilt_days_is_400(self, live_server):
        self._expect_error(
            lambda: _post(
                live_server.base, "/query", {"first_day": 900, "days": 7}
            ),
            400,
        )

    def test_wrong_method_is_405(self, live_server):
        self._expect_error(lambda: _get(live_server.base, "/query"), 405)

    def test_unknown_path_is_404(self, live_server):
        self._expect_error(lambda: _get(live_server.base, "/nope"), 404)


class TestSloEndpoint:
    def _app_with_engine(self, live_server):
        from repro.obs.slo import SLO, SLOConfig, SLOEngine
        from repro.obs.tsdb import TimeSeriesStore
        from repro.serve.handlers import ServeApp

        store = TimeSeriesStore()
        store.sample_registry(live_server.registry)
        engine = SLOEngine(
            SLOConfig(
                slos=(SLO(name="avail", kind="availability", objective=0.99),)
            ),
            store,
        )
        return ServeApp(live_server.app.engine, slo_engine=engine)

    def test_404_without_config_over_http(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server.base, "/slo")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "no SLO config loaded" in body["error"]

    def test_report_served_when_configured(self, live_server):
        app = self._app_with_engine(live_server)
        status, content_type, payload, _ = app.dispatch("GET", "/slo")
        assert status == 200
        assert content_type == JSON_TYPE
        doc = json.loads(payload)
        assert doc["state"] in ("OK", "WARN", "PAGE")
        assert doc["slos"][0]["name"] == "avail"
        assert {w["name"] for w in doc["slos"][0]["windows"]} == {
            "fast",
            "slow",
        }

    def test_post_is_405(self, live_server):
        app = self._app_with_engine(live_server)
        status, _, _, _ = app.dispatch("POST", "/slo", body=b"{}")
        assert status == 405

    def test_slo_report_without_engine_raises(self, live_server):
        with pytest.raises(RuntimeError):
            live_server.app.slo_report()


class TestCliParity:
    def test_query_response_matches_cli_byte_for_byte(
        self, live_server, served_model, capsys
    ):
        from repro.storage.model_cache import clear_model_cache

        # model a separate CLI process: its engine must be its own fresh
        # load, not the server's cached instance (whose cluster-id
        # generator the CLI query would otherwise advance)
        clear_model_cache()
        code = main(
            [
                "query",
                "--data", str(served_model.data),
                "--model", str(served_model.model),
                "--first-day", "0",
                "--days", str(BUILD_DAYS),
            ]
        )
        assert code == 0
        cli_out = capsys.readouterr().out
        # cmd_query prints one header line, then build_report(...).to_text()
        header, _, cli_report = cli_out.partition("\n")
        assert header.startswith("Q(city, days 0..6)")

        _, _, body = _post(
            live_server.base, "/query", {"first_day": 0, "days": BUILD_DAYS}
        )
        doc = json.loads(body)
        assert doc["report"] + "\n" == cli_report


class TestTelemetry:
    def test_concurrent_requests_count_exactly(self, live_server):
        workers, per_worker = 8, 6
        failures = []

        def work():
            for _ in range(per_worker):
                try:
                    status, _, _ = _get(live_server.base, "/healthz")
                    if status != 200:
                        failures.append(status)
                except Exception as exc:  # pragma: no cover - diagnostics
                    failures.append(repr(exc))

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        _, _, body = _get(live_server.base, "/metrics")
        parsed = obs.parse_prometheus_text(body.decode())
        total = workers * per_worker
        # the scrape reads the registry before its own request is counted
        assert parsed["counters"]["repro_serve_requests_total"] == total
        assert parsed["counters"]["repro_serve_requests_healthz_total"] == total
        assert parsed["gauges"]["repro_serve_in_flight"] >= 0
        hist = parsed["histograms"]["repro_serve_request_seconds"]
        assert hist["count"] == total

    def test_metrics_reconcile_scripted_sequence(self, live_server):
        # scripted: 2 queries, 1 healthz, 1 forced error, 1 scrape — then
        # the assertion scrape must reconcile every counter exactly
        _post(live_server.base, "/query", {"days": 2})
        _post(live_server.base, "/query", {"days": 3})
        _get(live_server.base, "/healthz")
        with pytest.raises(urllib.error.HTTPError):
            _post(live_server.base, "/query", {"strategy": "bogus"})
        _get(live_server.base, "/metrics")

        _, _, body = _get(live_server.base, "/metrics")
        c = obs.parse_prometheus_text(body.decode())["counters"]
        assert c["repro_serve_requests_total"] == 5
        assert c["repro_serve_requests_query_total"] == 3
        assert c["repro_serve_requests_healthz_total"] == 1
        assert c["repro_serve_requests_metrics_total"] == 1
        assert c["repro_serve_errors_total"] == 1
        assert c["repro_serve_responses_2xx_total"] == 4
        assert c["repro_serve_responses_4xx_total"] == 1
        assert c.get("repro_serve_responses_5xx_total", 0) == 0
        # health endpoint's independent accounting agrees
        health = live_server.app.health()["requests"]
        assert health["served"] == 6  # includes the assertion scrape
        assert health["errors"] == 1

    def test_stage_costs_aggregate_across_requests(self, live_server):
        for _ in range(2):
            _post(live_server.base, "/query", {"days": 2})
        snap = live_server.registry.snapshot()
        stage_hists = {
            name: h
            for name, h in snap["histograms"].items()
            if name.startswith("query.stage.")
        }
        assert "query.stage.select_seconds" in stage_hists
        assert "query.stage.integrate_seconds" in stage_hists
        for hist in stage_hists.values():
            assert hist["count"] == 2

    def test_correlation_id_reaches_spans_and_logs(self, live_server):
        stream = io.StringIO()
        obs.configure_logging("info", stream=stream)
        try:
            status, headers, body = _post(
                live_server.base,
                "/query",
                {"days": 2},
                headers={"X-Request-Id": "req-test-abc"},
            )
        finally:
            obs.configure_logging("warning", stream=sys.__stderr__)
        assert status == 200
        assert headers["X-Request-Id"] == "req-test-abc"
        assert json.loads(body)["request_id"] == "req-test-abc"

        tagged = [
            s
            for s in live_server.registry.spans
            if s.attrs.get("request_id") == "req-test-abc"
        ]
        assert any(s.name == "query.run" for s in tagged)

        log_lines = [
            line
            for line in stream.getvalue().splitlines()
            if "request_id=req-test-abc" in line
        ]
        assert any("logger=repro.serve.access" in line for line in log_lines)
        assert any("status=200" in line for line in log_lines)

    def test_span_limit_bounds_registry(self, live_server):
        assert live_server.registry._span_limit == 10_000


class TestShutdown:
    def test_stop_drains_in_flight_requests(self, live_server, monkeypatch):
        app = live_server.app
        original = app.health
        release = threading.Event()

        def slow_health():
            release.wait(5)
            return original()

        monkeypatch.setattr(app, "health", slow_health)
        results = []

        def request():
            results.append(_get(live_server.base, "/healthz")[0])

        t = threading.Thread(target=request)
        t.start()
        time.sleep(0.2)  # let the request reach the slow handler

        stopper_done = threading.Event()

        def stop():
            live_server.server.stop(timeout=10)
            stopper_done.set()

        threading.Thread(target=stop).start()
        time.sleep(0.2)
        release.set()  # unblock the in-flight request
        t.join(10)
        assert stopper_done.wait(10)
        # the in-flight request completed despite the shutdown racing it
        assert results == [200]

    def test_new_connections_refused_after_stop(self, live_server):
        assert live_server.server.stop(timeout=10)
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(live_server.base, "/healthz")


class TestTopDashboard:
    def test_repro_top_renders_from_live_scrape(self, live_server):
        _post(live_server.base, "/query", {"days": 2})
        _get(live_server.base, "/healthz")
        out = io.StringIO()
        code = run_top(
            live_server.base + "/metrics",
            interval=0.01,
            iterations=2,
            stream=out,
            clear=False,
        )
        assert code == 0
        text = out.getvalue()
        assert "repro top" in text
        assert "requests  total=" in text
        assert "p50=" in text
        # two requests happened before the first scrape
        assert "total=       2" in text

    def test_top_survives_dead_endpoint(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9/metrics",
            interval=0.01,
            iterations=1,
            stream=out,
            clear=False,
        )
        assert code == 0
        assert "scrape failed" in out.getvalue()


class TestCliParser:
    def test_serve_arguments_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--data", "d",
                "--model", "m",
                "--port", "0",
                "--span-limit", "500",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.span_limit == 500
        assert args.log_level == "info"  # serve defaults to access logging

    def test_top_arguments_parse(self):
        args = build_parser().parse_args(
            ["top", "--url", "http://x/metrics", "--iterations", "3", "--no-clear"]
        )
        assert args.command == "top"
        assert args.iterations == 3
        assert args.no_clear is True
