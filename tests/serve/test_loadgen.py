"""Tests for the HTTP load generator (repro.loadgen)."""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    LoadGenError,
    LoadReport,
    MixItem,
    _expand_schedule,
    build_mix,
    format_report,
    probe_server,
    run_load,
    write_report,
)


class TestBuildMix:
    def test_default_mix_splits_explain_variants(self):
        mix = build_mix(28)
        by_name = {item.name: item for item in mix}
        assert set(by_name) == {
            "day",
            "day+explain",
            "week",
            "week+explain",
            "month",
        }
        # 3/4 of each shape stays plain, the rest asks for explain
        assert by_name["day"].weight == 4
        assert by_name["day+explain"].weight == 2
        assert by_name["day+explain"].body["explain"] is True
        assert by_name["month"].body == {
            "first_day": 0,
            "days": 28,
            "strategy": "gui",
        }

    def test_windows_clamp_to_built_days(self):
        mix = build_mix(1)
        # week and month collapse onto the 1-day window and are dropped
        assert {item.name for item in mix} == {"day", "day+explain"}
        assert all(item.body["days"] == 1 for item in mix)

    def test_no_built_days_raises(self):
        with pytest.raises(LoadGenError, match="no built days"):
            build_mix(0)

    def test_all_zero_weights_raises(self):
        with pytest.raises(LoadGenError, match="mix is empty"):
            build_mix(28, weights={"day": 0, "week": 0, "month": 0})

    def test_explain_disabled(self):
        mix = build_mix(28, explain_every=0)
        assert {item.name for item in mix} == {"day", "week", "month"}
        assert [item.weight for item in mix] == [6, 3, 1]


class TestSchedule:
    def test_length_is_total_weight(self):
        mix = build_mix(28)
        schedule = _expand_schedule(mix)
        assert len(schedule) == sum(item.weight for item in mix)

    def test_interleaves_instead_of_clumping(self):
        mix = [
            MixItem("a", 3, {}),
            MixItem("b", 1, {}),
        ]
        names = [item.name for item in _expand_schedule(mix)]
        assert sorted(names) == ["a", "a", "a", "b"]
        # the light shape lands mid-schedule, not appended at the end
        assert names != ["a", "a", "a", "b"]


class TestLoadReport:
    def _report(self, latencies):
        report = LoadReport(
            mode="closed", url="x", duration_seconds=1.0, concurrency=1,
            target_rate=None,
        )
        report.latencies = list(latencies)
        report.requests = len(report.latencies)
        return report

    def test_quantile_empty(self):
        report = self._report([])
        assert report.quantile(0.5) is None
        doc = report.to_dict()
        assert doc["latency_seconds"]["p50"] is None
        assert doc["latency_seconds"]["max"] is None

    def test_quantile_single_sample(self):
        report = self._report([0.25])
        assert report.quantile(0.5) == 0.25
        assert report.quantile(0.99) == 0.25

    def test_quantile_nearest_rank(self):
        report = self._report([i / 100 for i in range(1, 101)])
        assert report.quantile(0.5) == pytest.approx(0.50, abs=0.011)
        assert report.quantile(0.99) == pytest.approx(0.99, abs=0.011)

    def test_error_rate_and_rates(self):
        report = self._report([0.1, 0.2])
        report.errors = 1
        report.requests = 4
        report.duration_seconds = 2.0
        assert report.error_rate == 0.25
        assert report.achieved_rate == 2.0

    def test_open_mode_document_has_drop_rate(self):
        report = LoadReport(
            mode="open", url="x", duration_seconds=1.0, concurrency=1,
            target_rate=50.0,
        )
        report.scheduled = 50
        report.requests = 40
        doc = report.to_dict()
        assert doc["target_rate"] == 50.0
        assert doc["drop_rate"] == pytest.approx(0.2)
        assert "target_rate" not in self._report([]).to_dict()


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(LoadGenError, match="unknown mode"):
            run_load("http://127.0.0.1:1", mode="bursty")

    def test_bad_duration(self):
        with pytest.raises(LoadGenError, match="duration"):
            run_load("http://127.0.0.1:1", duration=0.0)

    def test_bad_concurrency(self):
        with pytest.raises(LoadGenError, match="concurrency"):
            run_load("http://127.0.0.1:1", concurrency=0)

    def test_open_needs_rate(self):
        with pytest.raises(LoadGenError, match="positive --rate"):
            run_load("http://127.0.0.1:1", mode="open", rate=None)

    def test_unreachable_server(self):
        # nothing listens on the discard port; fail fast, no report
        with pytest.raises(LoadGenError, match="cannot reach server"):
            probe_server("http://127.0.0.1:9", timeout=0.5)


class TestAgainstLiveServer:
    def test_closed_loop_run(self, live_server):
        report = run_load(
            live_server.base,
            mode="closed",
            duration=1.0,
            concurrency=2,
            limit=5,
            timeout=10.0,
        )
        assert report.mode == "closed"
        assert report.requests > 0
        assert report.errors == 0
        assert report.error_rate == 0.0
        assert len(report.latencies) == report.requests
        assert sum(report.mix_counts.values()) == report.requests
        assert report.status_counts.get("200") == report.requests
        assert report.quantile(0.5) > 0.0

    def test_open_loop_run(self, live_server):
        report = run_load(
            live_server.base,
            mode="open",
            duration=1.0,
            rate=10.0,
            concurrency=2,
            limit=5,
            timeout=10.0,
        )
        assert report.mode == "open"
        assert report.scheduled == 10
        assert report.requests == report.scheduled
        assert report.errors == 0
        doc = report.to_dict()
        assert doc["drop_rate"] == 0.0

    def test_report_round_trip(self, live_server, tmp_path):
        report = run_load(
            live_server.base, duration=0.5, concurrency=1, limit=5,
            timeout=10.0,
        )
        out = tmp_path / "BENCH_load.json"
        write_report(report, out)
        doc = json.loads(out.read_text())
        assert doc == report.to_dict()
        text = format_report(report)
        assert "requests=" in text and "latency p50=" in text
