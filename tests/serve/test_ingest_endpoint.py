"""HTTP contract tests for ``POST /ingest`` (the live-forest endpoint)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.ingest import IngestEngine
from repro.ingest.contract import render_ndjson
from repro.serve import QueryServer, ServeApp

from .conftest import BUILD_DAYS


def _request(base, path, data=None, method=None, headers=None):
    req = urllib.request.Request(
        base + path, data=data, headers=headers or {}, method=method
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _error_status(fn):
    with pytest.raises(urllib.error.HTTPError) as err:
        fn()
    return err.value.code


@pytest.fixture()
def ingest_server(served_model, small_sim, tmp_path):
    """A live server with ingest enabled over its own engine instance.

    The engine is loaded directly (not through the process-wide cache)
    because these tests install new days into it.
    """
    registry = obs.MetricsRegistry(span_limit=10_000)
    with obs.activate(registry):
        engine = AnalysisEngine.load(
            served_model.model,
            small_sim.network,
            small_sim.districts(),
            config=EngineConfig(),
        )
        ingest = IngestEngine(engine, max_batch_rows=500)
        snaps = tmp_path / "snaps"
        app = ServeApp(
            engine,
            digest="test",
            model_dir=served_model.model,
            ingest_engine=ingest,
            ingest_snapshot_dir=snaps,
        )
        server = QueryServer(app, port=0)
        server.start_background()
        try:
            yield type(
                "T",
                (),
                {
                    "base": server.url(),
                    "app": app,
                    "ingest": ingest,
                    "engine": engine,
                    "snaps": snaps,
                },
            )
        finally:
            assert server.stop(timeout=10)


def _rows(engine, day, count=3):
    # severities well above delta_s, so the streamed cluster clears the
    # query endpoint's significance filter
    sensor = sorted(s.sensor_id for s in engine.network)[0]
    base = day * engine.window_spec.windows_per_day
    return [(sensor, base + i, 100.0 + i) for i in range(count)]


class TestIngestEndpoint:
    def test_ndjson_batch_accepted(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS)
        status, doc = _request(
            ingest_server.base,
            "/ingest",
            data=render_ndjson(rows),
            headers={"Content-Type": "application/x-ndjson"},
        )
        assert status == 200
        assert doc["accepted"] == len(rows)
        assert doc["rejected"] == 0
        assert doc["open_day"] == BUILD_DAYS
        assert doc["closed_days"] == []
        assert doc["built_days"] == BUILD_DAYS
        assert "request_id" in doc

    def test_json_document_form(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS)
        events = [
            {"sensor": s, "window": w, "severity": sev} for s, w, sev in rows
        ]
        status, doc = _request(
            ingest_server.base,
            "/ingest",
            data=json.dumps({"events": events}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert doc["accepted"] == len(rows)

    def test_contract_violations_counted_not_fatal(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS, count=2)
        body = render_ndjson(rows) + b'{"sensor": -1, "window": 1, "severity": 1}\n'
        status, doc = _request(ingest_server.base, "/ingest", data=body)
        assert status == 200
        assert doc["accepted"] == 2
        assert doc["rejected"] == 1
        assert doc["rejections"] == {"bad-sensor": 1}
        assert ingest_server.ingest.rejected_totals["bad-sensor"] == 1

    def test_unusable_envelope_is_400(self, ingest_server):
        assert (
            _error_status(
                lambda: _request(
                    ingest_server.base,
                    "/ingest",
                    data=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
            )
            == 400
        )

    def test_get_is_405(self, ingest_server):
        assert (
            _error_status(
                lambda: _request(ingest_server.base, "/ingest", method="GET")
            )
            == 405
        )

    def test_not_enabled_is_404(self, live_server):
        assert (
            _error_status(
                lambda: _request(live_server.base, "/ingest", data=b"")
            )
            == 404
        )

    def test_oversized_batch_is_429(self, ingest_server):
        sensor = sorted(
            s.sensor_id for s in ingest_server.engine.network
        )[0]
        base = BUILD_DAYS * ingest_server.engine.window_spec.windows_per_day
        rows = [(sensor, base, 1.0)] * 501
        assert (
            _error_status(
                lambda: _request(
                    ingest_server.base, "/ingest", data=render_ndjson(rows)
                )
            )
            == 429
        )

    def test_flush_closes_day_and_publishes_snapshot(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS)
        status, doc = _request(
            ingest_server.base, "/ingest?flush=1", data=render_ndjson(rows)
        )
        assert status == 200
        assert doc["closed_days"] == [BUILD_DAYS]
        assert doc["open_day"] == BUILD_DAYS + 1
        assert doc["built_days"] == BUILD_DAYS + 1
        assert doc["staleness_seconds"] == 0.0
        # the day close published an atomic snapshot
        assert doc["snapshot"].endswith("model-000001")
        assert (ingest_server.snaps / "current").exists()

        # the new day is queryable immediately after the close
        status, result = _request(
            ingest_server.base,
            "/query",
            data=json.dumps({"first_day": BUILD_DAYS, "days": 1}).encode(),
        )
        assert status == 200
        assert result["returned"] >= 1

    def test_healthz_reports_ingest_subsystem(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS)
        _request(ingest_server.base, "/ingest", data=render_ndjson(rows))
        status, doc = _request(ingest_server.base, "/healthz")
        assert status == 200
        ingest = doc["subsystems"]["ingest"]
        assert ingest["enabled"] is True
        assert ingest["open_day"] == BUILD_DAYS
        assert ingest["accepted"] == len(rows)
        assert ingest["pending_rows"] == len(rows)

    def test_metrics_exported(self, ingest_server):
        rows = _rows(ingest_server.engine, BUILD_DAYS)
        _request(ingest_server.base, "/ingest", data=render_ndjson(rows))
        with urllib.request.urlopen(
            ingest_server.base + "/metrics", timeout=10
        ) as resp:
            parsed = obs.parse_prometheus_text(resp.read().decode())
        assert parsed["counters"]["repro_ingest_events_accepted_total"] == len(
            rows
        )
        assert parsed["gauges"]["repro_ingest_pending_rows"] == len(rows)
