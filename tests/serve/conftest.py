"""Fixtures for the query-service tests: a built model on disk and a
live server over it."""

from __future__ import annotations

import sys
from types import SimpleNamespace

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.serve import QueryServer, ServeApp
from repro.storage.model_cache import clear_model_cache, load_engine_cached

BUILD_DAYS = 7


@pytest.fixture(scope="session")
def served_model(tmp_path_factory, small_sim):
    """A materialized trace plus a saved model over its first week —
    exactly what ``repro serve --data ... --model ...`` consumes."""
    root = tmp_path_factory.mktemp("serve-model")
    data = root / "data"
    small_sim.materialize_catalog(data, months=[0])
    engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
    engine.build_from_simulator(small_sim, range(BUILD_DAYS))
    model = root / "model"
    engine.save(model)
    return SimpleNamespace(data=data, model=model)


@pytest.fixture()
def live_server(served_model, small_sim):
    """A running QueryServer on an ephemeral port with a fresh registry.

    Each test gets its own registry (so counter assertions are exact) but
    shares the process-wide cached engine — the same topology a real
    daemon has.
    """
    registry = obs.MetricsRegistry(span_limit=10_000)
    with obs.activate(registry):
        cached = load_engine_cached(
            served_model.model,
            small_sim.network,
            small_sim.districts(),
            EngineConfig(),
        )
        app = ServeApp(
            cached.engine,
            digest=cached.digest,
            model_dir=cached.model_dir,
            query_lock=cached.query_lock,
        )
        server = QueryServer(app, port=0)
        server.start_background()
        try:
            yield SimpleNamespace(
                server=server, app=app, registry=registry, base=server.url()
            )
        finally:
            assert server.stop(timeout=10)


@pytest.fixture(autouse=True)
def _fresh_model_cache():
    """Isolate the process-wide model cache between tests."""
    clear_model_cache()
    yield
    clear_model_cache()


@pytest.fixture(autouse=True)
def _stable_logging():
    """Keep the logging handler bound to the real stderr.

    The handler is installed once per process; without this it can retain
    a pytest capture stream from an earlier test, which is closed by the
    time the server's shutdown logs fire in fixture teardown.
    """
    obs.configure_logging("warning", stream=sys.__stderr__)
    yield
    obs.configure_logging("warning", stream=sys.__stderr__)
