"""GET /profile, the /healthz subsystems block, and the top panel."""

from __future__ import annotations

import gzip
import json

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.obs.contprof import ContinuousProfiler
from repro.obs.tracestore import TailSampler, TraceStore
from repro.serve import ServeApp
from repro.serve.dashboard import (
    DashboardView,
    fetch_profile,
    profile_url_for,
    render,
)

from .conftest import BUILD_DAYS

QUERY_BODY = json.dumps({"first_day": 0, "days": BUILD_DAYS}).encode()


class _Frame:
    f_back = None
    f_globals = {"__name__": "app"}
    f_code = type("C", (), {"co_name": "work"})()


@pytest.fixture(scope="module")
def built_engine(small_sim):
    engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
    engine.build_from_simulator(small_sim, range(BUILD_DAYS))
    return engine


@pytest.fixture()
def profiled_app(built_engine):
    """An in-process app with a profiler that already holds one sample."""
    registry = obs.MetricsRegistry(span_limit=10_000)
    with obs.activate(registry):
        profiler = ContinuousProfiler(hz=10, window_seconds=3600)
        profiler.sample_once(now=1000.0, frames={1: _Frame()})
        yield ServeApp(built_engine, profiler=profiler)


class TestProfileEndpoint:
    def test_404_when_profiling_off(self, built_engine):
        app = ServeApp(built_engine)
        status, _, payload, _ = app.dispatch("GET", "/profile", {}, b"")
        assert status == 404
        assert b"--prof" in payload

    def test_405_on_post(self, profiled_app):
        status, _, _, _ = profiled_app.dispatch("POST", "/profile", {}, b"")
        assert status == 405

    def test_summary_document(self, profiled_app):
        status, ctype, payload, _ = profiled_app.dispatch(
            "GET", "/profile", {}, b""
        )
        assert status == 200 and ctype.startswith("application/json")
        doc = json.loads(payload)
        assert doc["enabled"] is True
        assert doc["total"] == 1
        assert doc["top"][0]["frame"] == "app.work"
        assert doc["current"]["samples"] == 1

    def test_collapsed_format(self, profiled_app):
        status, ctype, payload, _ = profiled_app.dispatch(
            "GET", "/profile", {"format": "collapsed"}, b""
        )
        assert status == 200 and ctype.startswith("text/plain")
        assert payload.decode() == "app.work 1\n"

    def test_speedscope_format(self, profiled_app):
        status, _, payload, _ = profiled_app.dispatch(
            "GET", "/profile", {"format": "speedscope"}, b""
        )
        assert status == 200
        doc = json.loads(payload)
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["weights"] == [1]

    def test_window_selector(self, profiled_app):
        window_id = profiled_app.profiler.current_window_id()
        status, _, payload, _ = profiled_app.dispatch(
            "GET", "/profile", {"window": window_id}, b""
        )
        assert status == 200
        doc = json.loads(payload)
        assert doc["id"] == window_id
        assert doc["top"][0]["frame"] == "app.work"

    def test_bad_format_and_unknown_window_are_400(self, profiled_app):
        status, _, _, _ = profiled_app.dispatch(
            "GET", "/profile", {"format": "pprof"}, b""
        )
        assert status == 400
        status, _, payload, _ = profiled_app.dispatch(
            "GET", "/profile", {"window": "pw-999999-nope"}, b""
        )
        assert status == 400
        assert b"no such profile window" in payload

    def test_gzip_negotiated(self, profiled_app):
        response = profiled_app.respond(
            "GET", "/profile", {}, b"", headers={"Accept-Encoding": "gzip"}
        )
        assert response.headers.get("Content-Encoding") == "gzip"
        assert json.loads(gzip.decompress(response.payload))["enabled"] is True


class TestHealthzSubsystems:
    def test_uniform_shape_when_everything_off(self, built_engine):
        app = ServeApp(built_engine)
        status, _, payload, _ = app.dispatch("GET", "/healthz", {}, b"")
        assert status == 200
        subsystems = json.loads(payload)["subsystems"]
        assert set(subsystems) == {"tsdb", "traces", "profiler", "ingest"}
        for block in subsystems.values():
            assert block["enabled"] is False
            assert block["segments"] == 0
            assert block["last_flush_age_seconds"] is None

    def test_profiler_block_reports_liveness(self, profiled_app):
        _, _, payload, _ = profiled_app.dispatch("GET", "/healthz", {}, b"")
        block = json.loads(payload)["subsystems"]["profiler"]
        assert block["enabled"] is True
        assert block["running"] is False  # sampled by hand, thread not started
        assert block["hz"] == 10
        assert block["current_window"] is not None

    def test_traces_block_counts_segments(self, built_engine, tmp_path):
        with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
            app = ServeApp(
                built_engine,
                trace_store=TraceStore(segment_dir=tmp_path),
                tail_sampler=TailSampler(latency_threshold=0.0, head_rate=1),
            )
            app.dispatch("POST", "/query", {}, QUERY_BODY)
            _, _, payload, _ = app.dispatch("GET", "/healthz", {}, b"")
        block = json.loads(payload)["subsystems"]["traces"]
        assert block["enabled"] is True
        assert block["kept"] >= 1
        assert block["segments"] == 1
        assert block["last_flush_age_seconds"] is not None
        assert block["last_flush_age_seconds"] < 60.0


class TestDashboardPanel:
    def test_profile_url_rewrite(self):
        assert (
            profile_url_for("http://h:9/metrics") == "http://h:9/profile"
        )
        assert profile_url_for("http://h:9") == "http://h:9/profile"

    def test_fetch_profile_none_on_unreachable(self):
        assert fetch_profile("http://127.0.0.1:9/profile", timeout=0.2) is None

    def test_apply_profile_folds_rows(self):
        view = DashboardView()
        view.apply_profile(
            {
                "total": 10,
                "top": [
                    {"frame": "app.hot", "running": 6, "waiting": 0, "total": 6},
                    {"frame": "app.idle", "running": 0, "waiting": 4, "total": 4},
                ],
            }
        )
        assert view.profile_samples == 10
        assert view.profile_rows[0] == ("app.hot", 6, 0, 0.6)
        text = render(view, "http://h:9/metrics")
        assert "hottest frames (continuous profiler" in text
        assert "app.hot" in text and "60.0%" in text

    def test_none_omits_panel(self):
        view = DashboardView()
        view.apply_profile(None)
        assert view.profile_samples is None
        assert "hottest frames" not in render(view, "http://h:9/metrics")
