"""Tail-sampled tracing through the serving stack: capture, /traces,
content negotiation, gzip, request-id hygiene, SLO exemplars, CLI."""

from __future__ import annotations

import gzip
import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.cli import build_parser, main
from repro.obs.exporters import parse_prometheus_text
from repro.obs.slo import SLO, SLOConfig, SLOEngine, check_doc
from repro.obs.tracestore import TailSampler, TraceRecord, TraceStore
from repro.obs.tsdb import TimeSeriesStore
from repro.serve import ServeApp
from repro.serve.context import sanitize_request_id
from repro.serve.dashboard import (
    DashboardView,
    fetch_traces,
    render,
    traces_url_for,
)

from .conftest import BUILD_DAYS

QUERY_BODY = json.dumps({"first_day": 0, "days": BUILD_DAYS}).encode()


@pytest.fixture(scope="module")
def built_engine(small_sim):
    engine = AnalysisEngine.from_simulator(small_sim, EngineConfig())
    engine.build_from_simulator(small_sim, range(BUILD_DAYS))
    return engine


@pytest.fixture()
def traced_app(built_engine):
    """An in-process app with a keep-everything sampler, registry active."""
    registry = obs.MetricsRegistry(span_limit=10_000)
    with obs.activate(registry):
        store = TraceStore()
        app = ServeApp(
            built_engine,
            trace_store=store,
            tail_sampler=TailSampler(latency_threshold=0.0, head_rate=1),
        )
        yield app


class TestSanitizeRequestId:
    def test_clean_id_unchanged(self):
        assert sanitize_request_id("req-test-abc") == "req-test-abc"

    def test_hostile_characters_dropped(self):
        hostile = 'req\n500 injected="yes"\r x'
        assert sanitize_request_id(hostile) == "req500injectedyesx"

    def test_clamped_to_max_length(self):
        assert sanitize_request_id("a" * 200) == "a" * 64

    def test_nothing_valid_becomes_none(self):
        assert sanitize_request_id("\n\r<>!") is None
        assert sanitize_request_id("") is None
        assert sanitize_request_id(None) is None


class TestCapturePipeline:
    def test_kept_request_lands_in_store_with_spans(self, traced_app):
        status, _, _, rid = traced_app.dispatch(
            "POST", "/query", {}, QUERY_BODY, request_id="req-keep-1"
        )
        assert status == 200 and rid == "req-keep-1"
        record = traced_app.trace_store.get("req-keep-1")
        assert record is not None
        assert record.endpoint == "query"
        assert record.status == 200
        assert "head" in record.reasons
        names = {s["name"] for s in record.spans}
        assert "serve.request" in names and "query.run" in names
        # every captured span belongs to this request
        assert all(
            s["attrs"].get("request_id") == "req-keep-1" for s in record.spans
        )

    def test_error_kept_even_when_sampler_would_drop(self, built_engine):
        with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
            app = ServeApp(
                built_engine,
                trace_store=TraceStore(),
                tail_sampler=TailSampler(latency_threshold=-1.0, head_rate=0),
            )
            status, _, _, rid = app.dispatch("POST", "/query", {}, b"{not json")
            assert status == 400
            record = app.trace_store.get(rid)
            assert record is not None and record.reasons == ("error",)

    def test_fast_clean_request_dropped(self, built_engine):
        with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
            app = ServeApp(
                built_engine,
                trace_store=TraceStore(),
                tail_sampler=TailSampler(latency_threshold=30.0, head_rate=0),
            )
            status, _, _, rid = app.dispatch("GET", "/healthz", {}, b"")
            assert status == 200
            assert app.trace_store.get(rid) is None
            assert len(app.trace_store) == 0
            registry = obs.registry()
            snapshot = registry.snapshot()
            assert snapshot["counters"]["trace.requests"] == 1
            assert snapshot["counters"]["trace.dropped"] == 1

    def test_no_capture_without_store(self, built_engine):
        with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
            app = ServeApp(built_engine)
            status, _, _, _ = app.dispatch("GET", "/healthz", {}, b"")
            assert status == 200
            assert app.trace_store is None
            snapshot = obs.registry().snapshot()
            assert "trace.requests" not in snapshot["counters"]


class TestTracesEndpoint:
    def test_document_shape(self, traced_app):
        traced_app.dispatch(
            "POST", "/query", {}, QUERY_BODY, request_id="req-t-1"
        )
        status, ctype, payload, _ = traced_app.dispatch(
            "GET", "/traces", {"sort": "duration", "limit": "5"}, b""
        )
        assert status == 200 and ctype.startswith("application/json")
        doc = json.loads(payload)
        assert doc["version"] == 1
        assert doc["sort"] == "duration"
        assert doc["kept"] >= 1 and doc["count"] >= 1
        row = doc["traces"][0]
        assert isinstance(row["spans"], int)  # summaries, not span trees
        assert {"request_id", "endpoint", "status", "seconds", "reasons"} <= set(row)

    def test_sort_recent(self, traced_app):
        traced_app.dispatch("GET", "/healthz", {}, b"", request_id="req-r-1")
        traced_app.dispatch("GET", "/healthz", {}, b"", request_id="req-r-2")
        _, _, payload, _ = traced_app.dispatch(
            "GET", "/traces", {"sort": "recent", "limit": "2"}, b""
        )
        ids = [t["request_id"] for t in json.loads(payload)["traces"]]
        # the /traces request itself is not yet captured when it renders
        assert ids == ["req-r-2", "req-r-1"]

    def test_bad_params_are_400(self, traced_app):
        for params in ({"limit": "zero"}, {"sort": "sideways"}):
            status, _, payload, _ = traced_app.dispatch(
                "GET", "/traces", params, b""
            )
            assert status == 400, params
            assert "error" in json.loads(payload)

    def test_post_is_405(self, traced_app):
        status, _, _, _ = traced_app.dispatch("POST", "/traces", {}, b"{}")
        assert status == 405

    def test_404_without_store(self, built_engine):
        with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
            app = ServeApp(built_engine)
            status, _, payload, _ = app.dispatch("GET", "/traces", {}, b"")
            assert status == 404
            assert "tracing is not enabled" in json.loads(payload)["error"]

    def test_over_http(self, live_server):
        # live_server has no trace store: the endpoint 404s over the wire
        req = urllib.request.Request(live_server.base + "/traces")
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404


class TestContentNegotiation:
    def test_default_metrics_still_prometheus_parseable(self, traced_app):
        traced_app.dispatch("POST", "/query", {}, QUERY_BODY)
        status, ctype, payload, _ = traced_app.dispatch(
            "GET", "/metrics", {}, b""
        )
        assert status == 200
        assert "openmetrics" not in ctype
        parsed = parse_prometheus_text(payload.decode())
        assert "repro_serve_requests_total" in parsed["counters"]
        assert "# EOF" not in payload.decode()

    def test_openmetrics_needs_accept_header(self, traced_app):
        traced_app.dispatch(
            "POST", "/query", {}, QUERY_BODY, request_id="req-om-1"
        )
        status, ctype, payload, _ = traced_app.dispatch(
            "GET",
            "/metrics",
            {},
            b"",
            headers={"Accept": "application/openmetrics-text"},
        )
        assert status == 200
        assert ctype.startswith("application/openmetrics-text")
        text = payload.decode()
        assert text.endswith("# EOF\n")
        exemplar_lines = [l for l in text.splitlines() if "# {trace_id=" in l]
        assert exemplar_lines, "histogram buckets should carry exemplars"
        assert any('trace_id="req-om-1"' in l for l in exemplar_lines)

    def test_gzip_negotiated_on_eligible_paths(self, traced_app):
        traced_app.dispatch("POST", "/query", {}, QUERY_BODY)
        response = traced_app.respond(
            "GET", "/metrics", {}, b"", headers={"Accept-Encoding": "gzip"}
        )
        assert response.headers.get("Content-Encoding") == "gzip"
        assert response.headers.get("Vary") == "Accept-Encoding"
        assert b"repro_serve_requests" in gzip.decompress(response.payload)

    def test_gzip_skipped_without_header_or_on_other_paths(self, traced_app):
        plain = traced_app.respond("GET", "/metrics", {}, b"", headers={})
        assert "Content-Encoding" not in plain.headers
        health = traced_app.respond(
            "GET", "/healthz", {}, b"", headers={"Accept-Encoding": "gzip"}
        )
        assert "Content-Encoding" not in health.headers

    def test_gzip_respects_qvalue_zero(self, traced_app):
        response = traced_app.respond(
            "GET", "/metrics", {}, b"", headers={"Accept-Encoding": "gzip;q=0"}
        )
        assert "Content-Encoding" not in response.headers

    def test_gzip_over_http(self, live_server):
        with urllib.request.urlopen(live_server.base + "/healthz", timeout=10):
            pass
        req = urllib.request.Request(
            live_server.base + "/metrics",
            headers={"Accept-Encoding": "gzip"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Encoding"] == "gzip"
            body = gzip.decompress(resp.read())
        assert b"repro_serve_requests_total" in body


class TestSLOExemplars:
    @staticmethod
    def _paging_engine(trace_store):
        config = SLOConfig(
            slos=(SLO(name="availability", kind="availability", objective=0.99),)
        )
        store = TimeSeriesStore()
        t0 = 1_700_000_000.0
        req = err = 0.0
        for minute in range(120):
            req += 60.0
            err += 30.0
            store.ingest(
                {
                    "t": t0 + (minute + 1) * 60.0,
                    "series": {"serve.requests": req, "serve.errors": err},
                    "kinds": {
                        "serve.requests": "counter",
                        "serve.errors": "counter",
                    },
                }
            )
        return SLOEngine(config, store, trace_store=trace_store), t0 + 7200

    def test_page_alert_carries_errored_trace_ids(self):
        traces = TraceStore()
        for i in range(3):
            traces.add(
                TraceRecord(
                    request_id=f"req-err-{i}",
                    endpoint="query",
                    status=500,
                    seconds=0.01,
                    start=float(i),
                    reasons=("error",),
                ),
                persist=False,
            )
        engine, now = self._paging_engine(traces)
        doc = engine.evaluate(now=now).to_dict()
        entry = doc["slos"][0]
        assert entry["state"] == "PAGE"
        assert "req-err-2" in entry["exemplar_trace_ids"]
        code, lines = check_doc(doc)
        assert code == 1
        assert any("exemplars: " in line for line in lines)

    def test_ok_slo_carries_no_exemplars(self):
        traces = TraceStore()
        traces.add(
            TraceRecord(
                request_id="req-x",
                endpoint="query",
                status=500,
                seconds=0.01,
                start=0.0,
                reasons=("error",),
            ),
            persist=False,
        )
        config = SLOConfig(
            slos=(SLO(name="availability", kind="availability", objective=0.99),)
        )
        store = TimeSeriesStore()
        t0 = 1_700_000_000.0
        req = 0.0
        for minute in range(120):
            req += 60.0
            store.ingest(
                {
                    "t": t0 + (minute + 1) * 60.0,
                    "series": {"serve.requests": req, "serve.errors": 0.0},
                    "kinds": {
                        "serve.requests": "counter",
                        "serve.errors": "counter",
                    },
                }
            )
        engine = SLOEngine(config, store, trace_store=traces)
        doc = engine.evaluate(now=t0 + 7200).to_dict()
        assert doc["slos"][0]["state"] == "OK"
        assert doc["slos"][0]["exemplar_trace_ids"] == []

    def test_page_exemplar_resolves_through_trace_cli(self, tmp_path, capsys):
        """Acceptance: a PAGE alert's exemplar id resolves via repro trace
        show against the persisted trace directory."""
        trace_dir = tmp_path / "traces"
        traces = TraceStore(segment_dir=trace_dir)
        traces.add(
            TraceRecord(
                request_id="req-rootcause",
                endpoint="query",
                status=500,
                seconds=0.8,
                start=12.0,
                reasons=("error", "slow"),
                spans=[
                    {"id": 1, "parent": -1, "name": "serve.request",
                     "depth": 0, "start": 0.0, "seconds": 0.8,
                     "attrs": {"request_id": "req-rootcause"}},
                    {"id": 2, "parent": 1, "name": "query.run", "depth": 1,
                     "start": 0.1, "seconds": 0.7,
                     "attrs": {"request_id": "req-rootcause"}},
                ],
            )
        )
        engine, now = self._paging_engine(traces)
        doc = engine.evaluate(now=now).to_dict()
        exemplars = doc["slos"][0]["exemplar_trace_ids"]
        assert doc["slos"][0]["state"] == "PAGE" and exemplars
        code = main(
            ["trace", "show", exemplars[0], "--trace-dir", str(trace_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace req-rootcause" in out
        assert "query.run" in out


class TestDashboardTracesPanel:
    def test_traces_url_for(self):
        assert (
            traces_url_for("http://h:1/metrics") == "http://h:1/traces"
        )
        assert traces_url_for("http://h:1") == "http://h:1/traces"

    def test_apply_and_render(self):
        view = DashboardView()
        view.apply_traces(
            {
                "kept": 7,
                "traces": [
                    {
                        "request_id": "req-slow-1",
                        "endpoint": "query",
                        "status": 200,
                        "seconds": 0.912,
                        "reasons": ["slow", "head"],
                    }
                ],
            }
        )
        text = render(view)
        assert "slowest recent traces (kept 7)" in text
        assert "req-slow-1" in text and "slow,head" in text

    def test_apply_none_omits_panel(self):
        view = DashboardView()
        view.apply_traces(None)
        assert "slowest recent traces" not in render(view)

    def test_empty_rows_render_placeholder(self):
        view = DashboardView()
        view.apply_traces({"kept": 0, "traces": []})
        assert "(none kept yet)" in render(view)

    def test_fetch_traces_none_on_dead_endpoint(self):
        assert fetch_traces("http://127.0.0.1:9/traces", timeout=0.2) is None


class TestTraceCLI:
    def _seed_store(self, tmp_path):
        trace_dir = tmp_path / "traces"
        store = TraceStore(segment_dir=trace_dir)
        for i, seconds in enumerate([0.3, 0.1, 0.6]):
            store.add(
                TraceRecord(
                    request_id=f"req-cli-{i}",
                    endpoint="query",
                    status=200 if i else 500,
                    seconds=seconds,
                    start=float(i),
                    reasons=("slow",),
                    spans=[
                        {"id": 1, "parent": -1, "name": "serve.request",
                         "depth": 0, "start": 0.0, "seconds": seconds,
                         "attrs": {}},
                    ],
                )
            )
        return trace_dir

    def test_parser_accepts_all_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "ls", "--trace-dir", "t", "--sort", "recent", "--limit", "3"]
        )
        assert args.trace_command == "ls" and args.sort == "recent"
        args = parser.parse_args(["trace", "show", "req-1", "--trace-dir", "t"])
        assert args.trace_command == "show" and args.request_id == "req-1"
        args = parser.parse_args(["trace", "profile", "--trace-dir", "t"])
        assert args.trace_command == "profile" and args.limit is None
        args = parser.parse_args(
            ["trace", "export", "req-1", "--trace-dir", "t", "--out", "o.json"]
        )
        assert args.trace_command == "export"

    def test_serve_tracing_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--data", "d", "--model", "m",
                "--trace-dir", "traces",
                "--trace-threshold", "0.1",
                "--trace-head-sample", "5",
            ]
        )
        assert str(args.trace_dir) == "traces"
        assert args.trace_threshold == 0.1
        assert args.trace_head_sample == 5
        defaults = build_parser().parse_args(
            ["serve", "--data", "d", "--model", "m"]
        )
        assert defaults.trace_dir is None
        assert defaults.trace_threshold == 0.5
        assert defaults.trace_head_sample == 10

    def test_ls_sorts_by_duration(self, tmp_path, capsys):
        trace_dir = self._seed_store(tmp_path)
        assert main(["trace", "ls", "--trace-dir", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        rows = [l for l in out.splitlines() if "req-cli-" in l]
        assert "req-cli-2" in rows[0] and "req-cli-1" in rows[-1]

    def test_show_renders_tree(self, tmp_path, capsys):
        trace_dir = self._seed_store(tmp_path)
        assert main(["trace", "show", "req-cli-0", "--trace-dir", str(trace_dir)]) == 0
        assert "serve.request" in capsys.readouterr().out

    def test_profile_aggregates(self, tmp_path, capsys):
        trace_dir = self._seed_store(tmp_path)
        assert main(["trace", "profile", "--trace-dir", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out and "count" in out

    def test_export_writes_chrome_trace(self, tmp_path, capsys):
        trace_dir = self._seed_store(tmp_path)
        out_path = tmp_path / "chrome.json"
        code = main(
            ["trace", "export", "req-cli-1", "--trace-dir", str(trace_dir),
             "--out", str(out_path)]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert any(e.get("name") == "serve.request" for e in doc["traceEvents"])

    def test_unknown_id_exits_2(self, tmp_path, capsys):
        trace_dir = self._seed_store(tmp_path)
        assert main(["trace", "show", "nope", "--trace-dir", str(trace_dir)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_dir_exits_2(self, tmp_path, capsys):
        code = main(["trace", "ls", "--trace-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
