"""Pure-function tests for the repro top dashboard."""

from __future__ import annotations

import pytest

from repro.serve.dashboard import (
    DashboardState,
    DashboardView,
    counter_delta,
    delta_histogram,
    histogram_quantile,
    render,
    slo_url_for,
)


def _hist(buckets, counts, total=None, count=None):
    return {
        "buckets": list(buckets),
        "counts": list(counts),
        "sum": total if total is not None else 0.0,
        "count": count if count is not None else sum(counts),
    }


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        assert histogram_quantile(_hist([0.1, 1.0], [0, 0, 0]), 0.5) is None

    def test_interpolates_inside_bucket(self):
        # 10 observations all inside (0, 0.1]: p50 sits at rank 5 of 10,
        # interpolated to the middle of the bucket
        h = _hist([0.1, 1.0], [10, 0, 0])
        assert histogram_quantile(h, 0.5) == pytest.approx(0.05)
        assert histogram_quantile(h, 1.0) == pytest.approx(0.1)

    def test_spans_buckets(self):
        h = _hist([0.1, 0.2, 0.4], [5, 5, 10, 0])
        # rank 10 of 20 lands exactly at the end of the second bucket
        assert histogram_quantile(h, 0.5) == pytest.approx(0.2)
        # rank 15 is halfway through the third bucket's 10 observations
        assert histogram_quantile(h, 0.75) == pytest.approx(0.3)

    def test_overflow_clamps_to_last_bound(self):
        h = _hist([0.1, 0.2], [1, 1, 8])  # 8 of 10 beyond the last bucket
        assert histogram_quantile(h, 0.99) == pytest.approx(0.2)


class TestDeltaHistogram:
    def test_first_scrape_falls_back_to_lifetime(self):
        cur = _hist([1.0], [3, 0], total=1.5)
        assert delta_histogram(cur, None) is cur

    def test_delta_between_scrapes(self):
        prev = _hist([1.0], [3, 1], total=5.0)
        cur = _hist([1.0], [7, 1], total=8.0)
        d = delta_histogram(cur, prev)
        assert d["counts"] == [4, 0]
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(3.0)

    def test_counter_reset_falls_back(self):
        prev = _hist([1.0], [9, 0], total=9.0)
        cur = _hist([1.0], [2, 0], total=2.0)  # server restarted
        assert delta_histogram(cur, prev) is cur

    def test_changed_buckets_fall_back(self):
        prev = _hist([1.0], [3, 0])
        cur = _hist([2.0], [5, 0])
        assert delta_histogram(cur, prev) is cur


def _scrape(requests=10.0, errors=1.0, with_windows=True, counts=(8, 2, 0)):
    parsed = {
        "counters": {
            "repro_serve_requests_total": requests,
            "repro_serve_errors_total": errors,
            "repro_model_cache_hits_total": 3.0,
            "repro_model_cache_misses_total": 1.0,
        },
        "gauges": {"repro_serve_in_flight": 1.0},
        "rates": {},
        "histograms": {
            "repro_serve_request_seconds": _hist([0.01, 0.1], counts, total=0.5),
            "repro_query_stage_select_seconds": _hist([0.01], [4, 0], total=0.2),
            "repro_query_stage_integrate_seconds": _hist([0.01], [4, 0], total=0.9),
        },
        "summaries": {},
    }
    if with_windows:
        parsed["rates"] = {
            "repro_serve_requests_rate": {"60s": 0.5, "300s": 0.1},
            "repro_serve_errors_rate": {"60s": 0.05, "300s": 0.01},
        }
    return parsed


class TestDashboardState:
    def test_prefers_window_rates(self):
        view = DashboardState().update(_scrape(), now=100.0)
        assert view.request_rate == pytest.approx(0.5)
        assert view.error_rate == pytest.approx(0.05)
        assert view.rate_source == "window=60s"

    def test_falls_back_to_scrape_deltas(self):
        state = DashboardState()
        state.update(_scrape(requests=10, with_windows=False), now=100.0)
        view = state.update(_scrape(requests=20, with_windows=False), now=110.0)
        assert view.request_rate == pytest.approx(1.0)
        assert view.rate_source == "delta"

    def test_latency_quantiles_use_scrape_delta(self):
        state = DashboardState()
        first = state.update(_scrape(counts=(8, 2, 0)), now=100.0)
        assert not first.latency_recent  # lifetime on the first scrape
        second = state.update(_scrape(counts=(8, 6, 0)), now=110.0)
        assert second.latency_recent
        assert second.latency_count == 4
        # all 4 new observations landed in the (0.01, 0.1] bucket
        assert second.p50 > 0.01

    def test_caches_and_stages(self):
        view = DashboardState().update(_scrape(), now=100.0)
        assert ("model cache", 3.0, 1.0) in view.caches
        # hottest stage first (integrate: 0.9s > select: 0.2s)
        assert [s[0] for s in view.stages] == ["integrate", "select"]

    def test_storage_counters(self):
        parsed = _scrape()
        parsed["counters"]["repro_model_open_opens_total"] = 2.0
        parsed["counters"]["repro_model_open_bytes_mapped_total"] = 4096.0
        parsed["counters"]["repro_query_io_bytes_loaded_total"] = 1024.0
        parsed["counters"]["repro_query_io_groups_loaded_total"] = 3.0
        view = DashboardState().update(parsed, now=100.0)
        assert ("model opens", 2.0) in view.storage
        assert ("bytes faulted", 1024.0) in view.storage

    def test_storage_absent_without_counters(self):
        view = DashboardState().update(_scrape(), now=100.0)
        assert view.storage == []


class TestRender:
    def test_renders_all_panels(self):
        view = DashboardState().update(_scrape(), now=100.0)
        text = render(view, source="http://x/metrics")
        assert "repro top — http://x/metrics" in text
        assert "requests  total=      10" in text
        assert "ratio=10.00%" in text
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "model cache" in text and "hit-ratio= 75.0%" in text
        assert "hottest query stages" in text
        assert text.index("integrate") < text.index("select")

    def test_renders_storage_panel(self):
        parsed = _scrape()
        parsed["counters"]["repro_model_open_opens_total"] = 2.0
        parsed["counters"]["repro_model_open_bytes_mapped_total"] = 4096.0
        parsed["counters"]["repro_query_io_bytes_loaded_total"] = 1536.0
        view = DashboardState().update(parsed, now=100.0)
        text = render(view)
        assert "storage engine" in text
        assert "bytes mapped" in text and "4.0KB" in text
        assert "bytes faulted" in text and "1.5KB" in text

    def test_render_without_traffic(self):
        view = DashboardState().update(
            {"counters": {}, "gauges": {}, "rates": {}, "histograms": {}},
            now=1.0,
        )
        text = render(view)
        assert "requests  total=       0" in text
        assert "p50=-" in text


class TestHistogramQuantileEdges:
    def test_single_bucket_histogram(self):
        # one finite bound, everything inside it: quantiles interpolate
        # within the only bucket
        h = _hist([0.5], [8, 0])
        assert histogram_quantile(h, 0.5) == pytest.approx(0.25)
        assert histogram_quantile(h, 1.0) == pytest.approx(0.5)

    def test_single_observation(self):
        h = _hist([0.1, 1.0], [0, 1, 0])
        assert histogram_quantile(h, 0.5) == pytest.approx(0.55)

    def test_everything_in_overflow(self):
        # all mass past the last finite bound clamps to that bound
        h = _hist([0.1, 1.0], [0, 0, 5])
        assert histogram_quantile(h, 0.5) == pytest.approx(1.0)
        assert histogram_quantile(h, 0.99) == pytest.approx(1.0)


class TestCounterDelta:
    def test_first_scrape_has_no_baseline(self):
        assert counter_delta(7.0, None) == (7.0, False)

    def test_normal_growth(self):
        assert counter_delta(12.0, 10.0) == (2.0, False)

    def test_reset_rebaselines_to_current(self):
        # server restarted: 10 -> 3 means 3 new requests, not -7
        assert counter_delta(3.0, 10.0) == (3.0, True)


class TestCounterResetInTop:
    def test_restart_rebaselines_rates(self):
        state = DashboardState()
        state.update(_scrape(requests=500.0, errors=50.0, with_windows=False), now=100.0)
        # the server restarted between scrapes: totals fell to near zero
        view = state.update(
            _scrape(requests=8.0, errors=1.0, with_windows=False), now=110.0
        )
        assert view.rate_source == "delta (reset)"
        # post-reset values over 10s, never a clamped 0.0 or negative
        assert view.request_rate == pytest.approx(0.8)
        assert view.error_rate == pytest.approx(0.1)

    def test_no_reset_keeps_plain_delta(self):
        state = DashboardState()
        state.update(_scrape(requests=10.0, errors=1.0, with_windows=False), now=100.0)
        view = state.update(
            _scrape(requests=30.0, errors=1.0, with_windows=False), now=110.0
        )
        assert view.rate_source == "delta"
        assert view.request_rate == pytest.approx(2.0)


def _slo_doc(state="PAGE"):
    return {
        "version": 1,
        "state": state,
        "source": "tsdb",
        "slos": [
            {
                "name": "availability",
                "state": state,
                "description": "99.00% of requests succeed",
                "windows": [
                    {"name": "fast", "short_burn": 19.9, "long_burn": 15.0},
                    {"name": "slow", "short_burn": 8.0, "long_burn": 6.5},
                ],
            },
            {
                "name": "fast-queries",
                "state": "OK",
                "description": "95.0% of requests under 0.5s",
                "windows": [
                    {"name": "fast", "short_burn": 0.1, "long_burn": 0.0},
                ],
            },
        ],
    }


class TestSloPanel:
    def test_slo_url_for(self):
        assert slo_url_for("http://h:1/metrics") == "http://h:1/slo"
        assert slo_url_for("http://h:1/") == "http://h:1/slo"

    def test_apply_slo_none_omits_panel(self):
        view = DashboardView()
        view.apply_slo(None)
        assert view.slo_state is None
        assert render(view).count("alerts (SLO)") == 0

    def test_apply_slo_builds_rows(self):
        view = DashboardView()
        view.apply_slo(_slo_doc())
        assert view.slo_state == "PAGE"
        state, name, burns, desc = view.slo_rows[0]
        assert (state, name) == ("PAGE", "availability")
        # worst of short/long burn per window pair
        assert "fast=19.9x" in burns and "slow=8.0x" in burns
        assert "99.00%" in desc

    def test_render_alerts_panel(self):
        view = DashboardState().update(_scrape(), now=100.0)
        view.apply_slo(_slo_doc(state="WARN"))
        text = render(view)
        assert "alerts (SLO)  overall: WARN" in text
        assert "availability" in text and "fast-queries" in text


class TestIngestPanel:
    def _scrape_with_ingest(self):
        parsed = _scrape()
        parsed["gauges"]["repro_ingest_built_days"] = 3.0
        parsed["gauges"]["repro_ingest_pending_rows"] = 42.0
        parsed["gauges"]["repro_ingest_staleness_seconds"] = 17.5
        parsed["counters"]["repro_ingest_events_accepted_total"] = 1200.0
        parsed["counters"]["repro_ingest_events_rejected_total"] = 7.0
        parsed["counters"]["repro_ingest_days_closed_total"] = 3.0
        parsed["counters"]["repro_ingest_snapshots_total"] = 2.0
        return parsed

    def test_ingest_metrics_collected(self):
        view = DashboardState().update(self._scrape_with_ingest(), now=100.0)
        assert ("built days", 3.0) in view.ingest
        assert ("accepted", 1200.0) in view.ingest
        assert ("staleness", 17.5) in view.ingest

    def test_ingest_absent_without_metrics(self):
        # a batch-only server emits none of the ingest series, so the
        # panel disappears entirely
        view = DashboardState().update(_scrape(), now=100.0)
        assert view.ingest == []
        assert "live ingest" not in render(view)

    def test_renders_ingest_panel(self):
        view = DashboardState().update(self._scrape_with_ingest(), now=100.0)
        text = render(view)
        assert "live ingest" in text
        assert "accepted" in text and "1200" in text
        assert "staleness" in text and "17.500s" in text
