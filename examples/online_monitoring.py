"""Online monitoring and next-day forecasting.

Run with::

    python examples/online_monitoring.py

Two extensions built on the cluster model:

1. **Streaming extraction** — the control room receives readings window by
   window; :class:`OnlineEventTracker` maintains open events incrementally
   and emits each micro-cluster the moment the event ends (quiet for
   ``delta_t``), producing exactly the batch extractor's clusters without
   ever holding a full day of records.
2. **Recurrence prediction** (the paper's stated future work) — learn the
   recurring congestion patterns from two weeks of history and forecast
   the following days, scoring the forecasts against what actually
   happened.
"""

import numpy as np

from repro import AnalysisEngine, SimulationConfig, TrafficSimulator
from repro.analysis.prediction import RecurrencePredictor
from repro.core.records import RecordBatch
from repro.core.streaming import OnlineEventTracker
from repro.temporal.windows import WindowSpec


def stream_one_day(sim: TrafficSimulator, day: int) -> None:
    """Replay one day through the online tracker, reporting live."""
    chunk = sim.simulate_day(day)
    mask = chunk.atypical_mask()
    batch = RecordBatch(
        chunk.sensor_ids[mask],
        chunk.windows[mask],
        chunk.congested[mask].astype(np.float64),
    ).sorted_by_window()

    tracker = OnlineEventTracker(sim.network, window_spec=sim.window_spec)
    spec = sim.window_spec
    emitted = 0
    for window in range(day * spec.windows_per_day, (day + 1) * spec.windows_per_day):
        window_mask = batch.windows == window
        closed = tracker.push_window(window, batch.select(window_mask))
        for cluster in closed:
            if cluster.severity() >= 100:
                minute = spec.minute_of_day(window)
                print(
                    f"  [{minute // 60:02d}:{minute % 60:02d}] event closed: "
                    f"{cluster.severity():.0f} min over "
                    f"{len(cluster.spatial)} sensors"
                )
        emitted += len(closed)
    emitted += len(tracker.flush())
    print(f"  ... {emitted} events emitted over the day")


def main() -> None:
    sim = TrafficSimulator(SimulationConfig.small())

    print("=== Streaming extraction, day 2 (events >= 100 min shown live) ===")
    stream_one_day(sim, 2)

    print("\n=== Learning recurring patterns from days 0-13 ===")
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_simulator(sim, days=range(21))
    predictor = RecurrencePredictor(
        engine.forest, min_support_days=5, min_daily_severity=300.0
    )
    patterns = predictor.fit(range(14))
    spec = WindowSpec()
    for pattern in patterns[:5]:
        minute = spec.minute_of_day(pattern.start_window)
        print(
            f"  pattern {pattern.pattern_id}: ~{pattern.mean_severity:.0f} min/day "
            f"around {minute // 60:02d}:{minute % 60:02d}, "
            f"P(weekday)={pattern.weekday_probability:.2f}, "
            f"P(weekend)={pattern.weekend_probability:.2f}"
        )

    print("\n=== Forecasting days 14-20 and scoring against reality ===")
    total_hits = total_misses = total_false = 0
    for day in range(14, 21):
        score = predictor.score(day, min_probability=0.5)
        label = "weekend" if sim.calendar.is_weekend(day) else "weekday"
        print(
            f"  day {day} ({label}): hits={score.hits} "
            f"misses={score.misses} false alarms={score.false_alarms}"
        )
        total_hits += score.hits
        total_misses += score.misses
        total_false += score.false_alarms
    recall = total_hits / max(total_hits + total_misses, 1)
    precision = total_hits / max(total_hits + total_false, 1)
    print(f"\nweek-ahead forecast: recall {recall:.2f}, precision {precision:.2f}")


if __name__ == "__main__":
    main()
