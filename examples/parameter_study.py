"""Parameter study — how the thresholds shape the clustering.

Run with::

    python examples/parameter_study.py

A compact version of the paper's Sec. V-C on the small profile: sweeps
``delta_t`` (event fragmentation), ``delta_sim`` x balance function
(integration aggressiveness) and ``delta_s`` (significance), printing the
resulting cluster counts so the parameter intuition is visible at a
glance.
"""

import numpy as np

from repro import AnalysisEngine, SimulationConfig, TrafficSimulator
from repro.analysis.engine import EngineConfig
from repro.core.integration import ClusterIntegrator
from repro.core.significance import SignificanceThreshold

DAYS = 7


def build(sim, **config_overrides):
    engine = AnalysisEngine.from_simulator(sim, EngineConfig(**config_overrides))
    engine.build_from_simulator(sim, days=range(DAYS))
    return engine


def main() -> None:
    sim = TrafficSimulator(SimulationConfig.small())
    n = len(sim.network)
    print(f"Small city: {n} sensors, {DAYS} days\n")

    print("delta_t sweep (minutes) — fragmentation of events into micro-clusters")
    print(f"{'delta_t':>8}  {'micro-clusters':>14}")
    for delta_t in (15, 20, 40, 80):
        engine = build(sim, time_gap_minutes=float(delta_t))
        print(f"{delta_t:>8}  {engine.forest.stats().num_micro:>14}")

    base = build(sim)
    micro = base.forest.micro_clusters(range(DAYS))
    bar = SignificanceThreshold(0.05, DAYS * 24.0, n)

    print("\ndelta_sim x g sweep — macro-clusters after integration")
    header = f"{'delta_sim':>9}  " + "  ".join(f"{g:>5}" for g in ("min", "avg", "max"))
    print(header)
    for delta_sim in (0.2, 0.4, 0.5, 0.7, 0.9):
        counts = []
        for g in ("min", "avg", "max"):
            result = ClusterIntegrator(delta_sim, g).integrate(micro)
            counts.append(len(result.clusters))
        print(f"{delta_sim:>9.1f}  " + "  ".join(f"{c:>5}" for c in counts))

    print("\ndelta_s sweep — significant clusters in the 7-day city query")
    print(f"{'delta_s':>8}  {'bar (min)':>10}  {'significant':>11}")
    for delta_s in (0.02, 0.05, 0.10, 0.20):
        result = base.query(
            base.whole_city(), 0, DAYS, strategy="all", delta_s=delta_s
        )
        print(
            f"{delta_s:>8.0%}  {result.threshold.min_severity:>10.0f}  "
            f"{len(result.significant()):>11}"
        )

    print("\nTakeaways (matching Sec. V-C): larger delta_t merges the")
    print("stop-and-go pulses; max is the most aggressive balance function;")
    print("the number of significant clusters is governed by delta_s.")


if __name__ == "__main__":
    main()
