"""Battlefield surveillance — a second CPS domain on the same API.

Run with::

    python examples/battlefield_surveillance.py

The paper lists battlefield surveillance among the CPS applications and
names intruder detection as future work built on the same model. This
example shows the library is domain-agnostic: the "road network" becomes
a perimeter of patrol lines with acoustic sensors, atypical records are
detection readings (seconds of signal per window, scaled to minutes), and
atypical clusters summarize incursion events — where the perimeter is
probed, at what hour, and which post sees the most activity.

No traffic simulator involved: the incursions are generated directly as
record batches, demonstrating the raw ``AnalysisEngine`` ingestion path.
"""

import numpy as np

from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.core.records import RecordBatch
from repro.spatial.geometry import Point
from repro.spatial.network import Highway, Sensor, SensorNetwork
from repro.spatial.regions import DistrictGrid
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec


def perimeter_network() -> SensorNetwork:
    """Four patrol lines forming a 12 x 8 km perimeter box (km ~ miles
    here; only relative distances matter)."""
    lines = [
        Highway(0, "North fence", (Point(0, 8), Point(12, 8))),
        Highway(1, "South fence", (Point(0, 0), Point(12, 0))),
        Highway(2, "West fence", (Point(0, 0), Point(0, 8))),
        Highway(3, "East fence", (Point(12, 0), Point(12, 8))),
    ]
    sensors = []
    sid = 0
    for line in lines:
        start, end = line.points
        length = start.distance_to(end)
        count = int(length) + 1
        for k in range(count):
            frac = k / max(count - 1, 1)
            sensors.append(
                Sensor(
                    sid,
                    Point(
                        start.x + frac * (end.x - start.x),
                        start.y + frac * (end.y - start.y),
                    ),
                    line.highway_id,
                    frac * length,
                    k,
                )
            )
            sid += 1
    return SensorNetwork(sensors, lines)


def simulate_incursions(network: SensorNetwork, days: int, seed: int = 3):
    """Nightly probing of the north-east corner plus random false alarms."""
    rng = np.random.default_rng(seed)
    spec = WindowSpec()
    north = network.highway_sensors(0)
    probe_site = north[-4:]  # the north-east corner posts
    for day in range(days):
        sensors, windows, severity = [], [], []
        # recurring probe around 02:00, most nights
        if rng.random() < 0.8:
            start = spec.window_at(day, 2, 0) + int(rng.integers(-3, 4))
            for step in range(int(rng.integers(4, 9))):
                for offset, sensor in enumerate(probe_site):
                    signal = 4.5 - 0.8 * abs(offset - step % len(probe_site))
                    if signal > 0.4:
                        sensors.append(sensor)
                        windows.append(start + step)
                        severity.append(min(5.0, signal + rng.uniform(0, 0.4)))
        # sporadic false alarms (wildlife) anywhere, any hour
        for _ in range(int(rng.poisson(2.0))):
            sensor = int(rng.integers(0, len(network)))
            window = spec.window_at(day, int(rng.integers(0, 24)), 0)
            sensors.append(sensor)
            windows.append(window)
            severity.append(float(rng.uniform(0.5, 2.0)))
        yield day, RecordBatch(
            np.array(sensors, dtype=np.int32),
            np.array(windows, dtype=np.int32),
            np.array(severity, dtype=np.float64),
        )


def main() -> None:
    network = perimeter_network()
    districts = DistrictGrid(network, cols=3, rows=2)
    calendar = Calendar(month_lengths=(14,), month_names=("exercise",))
    engine = AnalysisEngine(
        network,
        districts,
        calendar,
        config=EngineConfig(distance_miles=1.6, delta_s=0.02),
    )

    print(f"Perimeter: {len(network)} acoustic posts on 4 patrol lines")
    for day, batch in simulate_incursions(network, days=14):
        engine.add_day_records(day, batch)
    print(f"Ingested 14 days, {engine.forest.stats().num_micro} micro-clusters")

    result = engine.query(
        engine.whole_city(), 0, 14, strategy="gui", final_check=True
    )
    print(f"\nSignificant incursion clusters: {len(result.returned)}")
    for cluster in result.returned:
        post, seconds = cluster.most_serious_sensor()
        line = network.highways[network[post].highway_id].name
        spec = WindowSpec()
        minute = spec.minute_of_day(cluster.start_window())
        print(
            f"  cluster {cluster.cluster_id}: {cluster.severity():.0f} signal-min "
            f"over {len(cluster.spatial)} posts on '{line}', "
            f"recurring around {minute // 60:02d}:{minute % 60:02d}, "
            f"hottest post s{post} ({seconds:.0f} min)"
        )

    # the recurring 02:00 probe must dominate; false alarms stay trivial
    assert result.returned, "expected the nightly probe to be significant"
    top = result.returned[0]
    assert top.spatial.keys() <= set(network.highway_sensors(0)), (
        "the significant cluster should sit on the north fence"
    )
    print("\nThe nightly north-east probe was isolated from the noise. Done.")


if __name__ == "__main__":
    main()
