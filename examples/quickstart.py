"""Quickstart: simulate a week of traffic, find the significant congestions.

Run with::

    python examples/quickstart.py

Builds the atypical forest over seven days of the small synthetic city,
answers the whole-city analytical query with the red-zone guided strategy,
and prints the Example-1 style report (where / when / worst segment).
"""

from repro import AnalysisEngine, SimulationConfig, TrafficSimulator
from repro.analysis.report import build_report


def main() -> None:
    print("Simulating one week of the small synthetic city...")
    sim = TrafficSimulator(SimulationConfig.small())
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_simulator(sim, days=range(7))
    stats = engine.forest.stats()
    print(
        f"  {len(sim.network)} sensors, {stats.num_micro} micro-clusters "
        f"extracted over {stats.num_days} days"
    )

    print("\nRunning Q(whole city, 7 days) with red-zone guided clustering...")
    result = engine.query(
        engine.whole_city(), first_day=0, num_days=7, strategy="gui",
        final_check=True,
    )
    print(
        f"  kept {result.stats.input_clusters} micro-clusters "
        f"({result.stats.pruned_clusters} pruned by "
        f"{result.stats.red_zones} red zones), "
        f"{result.stats.merges} merges, "
        f"{result.stats.elapsed_seconds * 1000:.0f} ms"
    )

    print()
    report = build_report(result, engine.network, sim.window_spec)
    print(report.to_text())


if __name__ == "__main__":
    main()
