"""Highway traffic monitoring — the paper's motivating CPS application.

Run with::

    python examples/traffic_monitoring.py [work_dir]

Reproduces the workflow of Example 1 end to end:

1. materialize one month of raw readings to disk (the massive-data path),
2. build the atypical forest + severity cube from the stored dataset,
3. answer the transportation officer's questions — where do congestions
   happen, when do they start, which segment is worst — for the month,
4. compare the All / Pru / Gui query strategies on the same query,
5. join the weather context dimension (Sec. V-D).
"""

import sys
import tempfile
from pathlib import Path

from repro import AnalysisEngine, SimulationConfig, TrafficSimulator
from repro.analysis.evaluation import score_strategy
from repro.analysis.report import build_report, weather_breakdown


def main(work_dir: Path) -> None:
    config = SimulationConfig.from_dict(
        {**SimulationConfig.small(seed=11).to_dict(), "month_lengths": (31,)}
    )
    sim = TrafficSimulator(config)

    print(f"Materializing one month of readings under {work_dir} ...")
    catalog = sim.materialize_catalog(work_dir)
    dataset = catalog.dataset(0)
    print(
        f"  {dataset.total_readings():,} readings "
        f"({dataset.file_size_bytes() / 1e6:.0f} MB), "
        f"{len(dataset.atypical_records()):,} atypical records"
    )

    print("\nConstructing the atypical forest from the stored dataset ...")
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_catalog(catalog)

    print("\n=== Monthly congestion report (guided clustering) ===")
    result = engine.query(
        engine.whole_city(), 0, 31, strategy="gui", final_check=True
    )
    report = build_report(result, engine.network, sim.window_spec, limit=5)
    print(report.to_text())

    print("\n=== Strategy comparison on the same query ===")
    results = {
        s: engine.query(engine.whole_city(), 0, 31, strategy=s)
        for s in ("all", "pru", "gui")
    }
    print(f"{'strategy':>8}  {'time':>8}  {'inputs':>6}  {'precision':>9}  {'recall':>6}")
    for strategy in ("all", "pru", "gui"):
        r = results[strategy]
        score = score_strategy(r, results["all"])
        print(
            f"{strategy:>8}  {r.stats.elapsed_seconds:7.2f}s  "
            f"{r.stats.input_clusters:6d}  {score.precision:9.2f}  {score.recall:6.2f}"
        )

    print("\n=== Congestion by weather (context dimension join) ===")
    day_severity = {day: engine.cube.day_severity(day) for day in range(31)}
    weather = {day: sim.weather.day(day).state.name for day in range(31)}
    for state, (days, mean) in sorted(weather_breakdown(day_severity, weather).items()):
        print(f"  {state:>6}: {days:2d} days, avg {mean:7.0f} congested minutes/day")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-traffic-") as tmp:
            main(Path(tmp))
