"""The severity cube: bottom-up aggregation over pre-defined hierarchies.

Sec. II-A: "Some existing methods aggregate the severity measures in a
bottom-up style ... They pre-define aggregation hierarchies on temporal,
spatial and other related dimensions and accumulate the value of severity
measure following such hierarchies."

The :class:`SeverityCube` materializes the base cuboid ``(district, day)``
of the total-severity measure ``F`` and answers rollups along the
pre-defined hierarchies (district -> city, day -> week -> month). It is

* the core of the CubeView baselines (OC / MC, Fig. 15-16), and
* the :class:`~repro.core.query.RegionSeverityProvider` that guides the
  red-zone computation of Algorithm 4.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.records import RecordBatch
from repro.spatial.regions import District, DistrictGrid
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

__all__ = ["SeverityCube"]


class SeverityCube:
    """Base cuboid ``district x day`` of total severity, with rollups.

    The cube is distributive (Property 4): a cell is the plain sum of its
    records' severities, and every rollup is a sum of cells.
    """

    def __init__(
        self,
        districts: DistrictGrid,
        calendar: Calendar,
        window_spec: WindowSpec = WindowSpec(),
    ):
        self._districts = districts
        self._calendar = calendar
        self._spec = window_spec
        self._cells = np.zeros(
            (len(districts), calendar.num_days), dtype=np.float64
        )
        self._district_of_sensor = np.full(
            max(s.sensor_id for s in districts.network) + 1, -1, dtype=np.int64
        )
        for sensor_id, district_id in districts.sensor_district_map().items():
            self._district_of_sensor[sensor_id] = district_id
        self._records_added = 0

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._cells.shape

    @property
    def records_added(self) -> int:
        return self._records_added

    @property
    def calendar(self) -> Calendar:
        return self._calendar

    def cells(self) -> np.ndarray:
        """Read-only view of the base cuboid."""
        view = self._cells.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_records(self, batch: RecordBatch) -> None:
        """Accumulate a batch of atypical records into the base cuboid."""
        self.add_readings(batch.sensor_ids, batch.windows, batch.severities)

    def add_readings(
        self,
        sensor_ids: np.ndarray,
        windows: np.ndarray,
        severities: np.ndarray,
    ) -> None:
        """Accumulate raw reading columns; zero severities are allowed.

        The OC baseline routes *every* reading (normal ones carry zero
        severity) through this path, so the aggregation work is
        proportional to the full trace.
        """
        if len(sensor_ids) == 0:
            return
        district_ids = self._district_of_sensor[np.asarray(sensor_ids)]
        if np.any(district_ids < 0):
            raise ValueError("record references a sensor outside the district grid")
        days = np.asarray(windows) // self._spec.windows_per_day
        if int(days.max()) >= self._calendar.num_days:
            raise ValueError("record window beyond the cube's calendar")
        np.add.at(self._cells, (district_ids, days), np.asarray(severities, dtype=np.float64))
        self._records_added += len(sensor_ids)

    # ------------------------------------------------------------------
    # Base lookups and rollups
    # ------------------------------------------------------------------
    def cell(self, district_id: int, day: int) -> float:
        return float(self._cells[district_id, day])

    def district_severity(self, district: District, days: Sequence[int]) -> float:
        """``F(W_i, T)`` — the RegionSeverityProvider protocol method."""
        day_idx = np.asarray(list(days), dtype=np.int64)
        return float(self._cells[district.district_id, day_idx].sum())

    def day_severity(self, day: int) -> float:
        """City-wide total for one day (rollup over districts)."""
        return float(self._cells[:, day].sum())

    def week_severity(self, week: int, district_id: Optional[int] = None) -> float:
        days = np.asarray(list(self._calendar.week_day_range(week)), dtype=np.int64)
        if district_id is None:
            return float(self._cells[:, days].sum())
        return float(self._cells[district_id, days].sum())

    def month_severity(self, month: int, district_id: Optional[int] = None) -> float:
        days = np.asarray(list(self._calendar.month_day_range(month)), dtype=np.int64)
        if district_id is None:
            return float(self._cells[:, days].sum())
        return float(self._cells[district_id, days].sum())

    def total_severity(self) -> float:
        """``F`` over the whole cube (apex cuboid)."""
        return float(self._cells.sum())

    def region_severity(self, district_ids: Iterable[int], days: Sequence[int]) -> float:
        """``F(W, T)`` for a union of pre-defined districts."""
        rows = np.asarray(list(district_ids), dtype=np.int64)
        cols = np.asarray(list(days), dtype=np.int64)
        if len(rows) == 0 or len(cols) == 0:
            return 0.0
        return float(self._cells[np.ix_(rows, cols)].sum())

    # ------------------------------------------------------------------
    def combine(self, other: "SeverityCube") -> "SeverityCube":
        """Distributivity in action: cell-wise sum of two disjoint loads."""
        if self.shape != other.shape:
            raise ValueError("cannot combine cubes with different shapes")
        result = SeverityCube(self._districts, self._calendar, self._spec)
        result._cells = self._cells + other._cells
        result._records_added = self._records_added + other._records_added
        return result

    def absorb_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        records_added: int,
    ) -> None:
        """Accumulate pre-aggregated cells from a disjoint partition.

        Used by the parallel builder's reducer: each shard ships the
        non-zero ``(district, day)`` cells it computed locally, and
        because shards never share a cell, plain ``+=`` onto the zero-
        initialized cuboid reproduces the serial load bit-for-bit (the
        distributivity of Property 4 without reassociating any float
        additions).
        """
        if len(rows) == 0:
            self._records_added += int(records_added)
            return
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if int(rows.max()) >= self._cells.shape[0] or int(cols.max()) >= self._cells.shape[1]:
            raise ValueError("absorbed cells fall outside the cube")
        self._cells[rows, cols] += np.asarray(values, dtype=np.float64)
        self._records_added += int(records_added)

    def import_cells(self, cells: np.ndarray, records_added: int) -> None:
        """Restore a persisted base cuboid (see repro.storage.forest_io)."""
        if cells.shape != self._cells.shape:
            raise ValueError("imported cells have the wrong shape")
        self._cells = np.array(cells, dtype=np.float64)
        self._records_added = int(records_added)

    def storage_bytes(self) -> int:
        """Size of the materialized base cuboid (model-size accounting)."""
        return int(self._cells.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SeverityCube({self.shape[0]} districts x {self.shape[1]} days, "
            f"{self._records_added} records)"
        )
