"""Bottom-up cube substrate: measures, severity cube and CubeView baselines."""

from repro.cube.cubeview import (
    ConstructionReport,
    PreprocessResult,
    build_cube_mc,
    build_cube_oc,
    preprocess,
)
from repro.cube.datacube import SeverityCube
from repro.cube.sensorcube import RTreeSeverityProvider, SensorDayCube
from repro.cube.measures import (
    AlgebraicMeasure,
    AverageMeasure,
    CountMeasure,
    DistributiveMeasure,
    HolisticMeasure,
    MaxMeasure,
    Measure,
    MedianMeasure,
    MinMeasure,
    SumMeasure,
)

__all__ = [
    "ConstructionReport",
    "PreprocessResult",
    "build_cube_mc",
    "build_cube_oc",
    "preprocess",
    "SeverityCube",
    "RTreeSeverityProvider",
    "SensorDayCube",
    "AlgebraicMeasure",
    "AverageMeasure",
    "CountMeasure",
    "DistributiveMeasure",
    "HolisticMeasure",
    "MaxMeasure",
    "Measure",
    "MedianMeasure",
    "MinMeasure",
    "SumMeasure",
]
