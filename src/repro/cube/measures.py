"""Aggregate measure taxonomy (Gray et al., used by Properties 1, 2 and 4).

The paper's correctness arguments lean on the classic data-cube measure
classification:

* **distributive** — computable by combining the measure of disjoint
  subsets (sum, count, min, max). The total severity ``F(W, T)`` is
  distributive (Property 4), which is what makes the red-zone guidance
  cheap.
* **algebraic** — computable from a bounded number of distributive
  arguments (average = sum/count). The spatial/temporal features of
  atypical clusters are algebraic (Property 2).
* **holistic** — no constant-size sub-aggregate suffices (median, the raw
  atypical *event* of Property 1).

These classes implement the taxonomy as composable aggregators so the cube
can be parameterized by measure, and so the test suite can check the
distributivity/algebraicity claims directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Generic, Iterable, List, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "Measure",
    "DistributiveMeasure",
    "SumMeasure",
    "CountMeasure",
    "MinMeasure",
    "MaxMeasure",
    "AlgebraicMeasure",
    "AverageMeasure",
    "HolisticMeasure",
    "MedianMeasure",
]

State = TypeVar("State")


class Measure(ABC, Generic[State]):
    """An aggregate measure with explicit partial-aggregation state."""

    name: str = "measure"

    @abstractmethod
    def initial(self) -> State:
        """State of the empty aggregate."""

    @abstractmethod
    def add(self, state: State, values: np.ndarray) -> State:
        """Fold a batch of values into ``state``."""

    @abstractmethod
    def combine(self, left: State, right: State) -> State:
        """Combine the states of two disjoint subsets."""

    @abstractmethod
    def finalize(self, state: State) -> float:
        """The measure value of the aggregated set."""

    def compute(self, values: Iterable[float]) -> float:
        """One-shot aggregation of a value collection."""
        arr = np.asarray(list(values), dtype=np.float64)
        return self.finalize(self.add(self.initial(), arr))


class DistributiveMeasure(Measure[float]):
    """A measure whose state *is* its value: combine == the measure itself."""

    def finalize(self, state: float) -> float:
        return float(state)


class SumMeasure(DistributiveMeasure):
    """Total severity — the ``F(W, T)`` measure of Property 4."""

    name = "sum"

    def initial(self) -> float:
        return 0.0

    def add(self, state: float, values: np.ndarray) -> float:
        return state + float(values.sum()) if len(values) else state

    def combine(self, left: float, right: float) -> float:
        return left + right


class CountMeasure(DistributiveMeasure):
    name = "count"

    def initial(self) -> float:
        return 0.0

    def add(self, state: float, values: np.ndarray) -> float:
        return state + float(len(values))

    def combine(self, left: float, right: float) -> float:
        return left + right


class MinMeasure(DistributiveMeasure):
    name = "min"

    def initial(self) -> float:
        return float("inf")

    def add(self, state: float, values: np.ndarray) -> float:
        return min(state, float(values.min())) if len(values) else state

    def combine(self, left: float, right: float) -> float:
        return min(left, right)


class MaxMeasure(DistributiveMeasure):
    name = "max"

    def initial(self) -> float:
        return float("-inf")

    def add(self, state: float, values: np.ndarray) -> float:
        return max(state, float(values.max())) if len(values) else state

    def combine(self, left: float, right: float) -> float:
        return max(left, right)


@dataclass(frozen=True)
class _AlgebraicState:
    """Bounded tuple of distributive sub-states (the ``m`` arguments)."""

    parts: Tuple[float, ...]


class AlgebraicMeasure(Measure[_AlgebraicState]):
    """A measure computed from a bounded vector of distributive states."""

    def __init__(self, components: Sequence[DistributiveMeasure]):
        if not components:
            raise ValueError("algebraic measure needs at least one component")
        self._components = tuple(components)

    @property
    def components(self) -> Tuple[DistributiveMeasure, ...]:
        return self._components

    def initial(self) -> _AlgebraicState:
        return _AlgebraicState(tuple(c.initial() for c in self._components))

    def add(self, state: _AlgebraicState, values: np.ndarray) -> _AlgebraicState:
        return _AlgebraicState(
            tuple(
                c.add(part, values)
                for c, part in zip(self._components, state.parts)
            )
        )

    def combine(self, left: _AlgebraicState, right: _AlgebraicState) -> _AlgebraicState:
        return _AlgebraicState(
            tuple(
                c.combine(a, b)
                for c, a, b in zip(self._components, left.parts, right.parts)
            )
        )


class AverageMeasure(AlgebraicMeasure):
    """Mean severity: the canonical algebraic measure (sum / count)."""

    name = "avg"

    def __init__(self) -> None:
        super().__init__((SumMeasure(), CountMeasure()))

    def finalize(self, state: _AlgebraicState) -> float:
        total, count = state.parts
        return total / count if count else 0.0


class HolisticMeasure(Measure[List[float]]):
    """A measure that must retain the full value multiset (Property 1)."""

    def initial(self) -> List[float]:
        return []

    def add(self, state: List[float], values: np.ndarray) -> List[float]:
        return state + [float(v) for v in values]

    def combine(self, left: List[float], right: List[float]) -> List[float]:
        return left + right

    def state_size(self, state: List[float]) -> int:
        """Storage needed by the state — unbounded for holistic measures."""
        return len(state)


class MedianMeasure(HolisticMeasure):
    """Exact median — the textbook holistic measure, kept for tests that
    contrast it with the algebraic cluster features."""

    name = "median"

    def finalize(self, state: List[float]) -> float:
        if not state:
            return 0.0
        return float(np.median(np.asarray(state)))
