"""Sensor-level severity cube with R-tree range aggregation.

Sec. VI surveys spatial OLAP baselines built on aggregation R-trees
(Papadias et al.): rectangle hierarchies over the raw sensors instead of
pre-defined zipcode areas. This module provides that substrate:

* :class:`SensorDayCube` — the finest practical cuboid, ``sensor x day``
  total severity (the district cube of :mod:`repro.cube.datacube` is its
  rollup);
* :class:`RTreeSeverityProvider` — answers ``F(W, T)`` for *arbitrary*
  rectangles through an aggregation R-tree over the sensor points, and
  implements the
  :class:`~repro.core.query.RegionSeverityProvider` protocol so the
  red-zone filter can run on R-tree rectangles instead of the district
  grid (the paper's remark that regions may be partitioned "by zipcode
  areas, streets, highway mileages, or the R-tree rectangles").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.records import RecordBatch
from repro.spatial.geometry import BBox
from repro.spatial.network import SensorNetwork
from repro.spatial.regions import District
from repro.spatial.rtree import RTree
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

__all__ = ["SensorDayCube", "RTreeSeverityProvider"]


class SensorDayCube:
    """Total severity per ``(sensor, day)`` — the finest base cuboid."""

    def __init__(
        self,
        network: SensorNetwork,
        calendar: Calendar,
        window_spec: WindowSpec = WindowSpec(),
    ):
        self._network = network
        self._calendar = calendar
        self._spec = window_spec
        self._cells = np.zeros((len(network), calendar.num_days), dtype=np.float64)
        self._records_added = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._cells.shape

    @property
    def records_added(self) -> int:
        return self._records_added

    def add_records(self, batch: RecordBatch) -> None:
        if not len(batch):
            return
        days = batch.windows // self._spec.windows_per_day
        if int(days.max()) >= self._calendar.num_days:
            raise ValueError("record window beyond the cube's calendar")
        np.add.at(self._cells, (batch.sensor_ids, days), batch.severities)
        self._records_added += len(batch)

    def sensor_severity(self, sensor_id: int, days: Sequence[int]) -> float:
        idx = np.asarray(list(days), dtype=np.int64)
        return float(self._cells[sensor_id, idx].sum())

    def day_weights(self, days: Sequence[int]) -> Dict[int, float]:
        """Per-sensor totals over ``days`` (weights for the R-tree)."""
        idx = np.asarray(list(days), dtype=np.int64)
        totals = self._cells[:, idx].sum(axis=1)
        return {int(s): float(v) for s, v in enumerate(totals) if v > 0}

    def total_severity(self) -> float:
        return float(self._cells.sum())

    def storage_bytes(self) -> int:
        return int(self._cells.nbytes)


class RTreeSeverityProvider:
    """``F(W, T)`` over arbitrary rectangles via an aggregation R-tree.

    The R-tree is built once over the fixed sensor points; per query-day
    range, the per-sensor weights are refreshed from the sensor-day cube
    and range aggregates reuse subtree sums (fully contained nodes answer
    without descending).
    """

    def __init__(self, cube: SensorDayCube, network: SensorNetwork, fanout: int = 16):
        self._cube = cube
        self._network = network
        self._tree = RTree(
            [(s.sensor_id, s.location) for s in network], fanout=fanout
        )
        self._weights_key: Optional[tuple] = None

    @property
    def tree(self) -> RTree:
        return self._tree

    def _refresh(self, days: Sequence[int]) -> None:
        key = tuple(days)
        if key != self._weights_key:
            self._tree.set_weights(self._cube.day_weights(days))
            self._weights_key = key

    # ------------------------------------------------------------------
    def rectangle_severity(self, bbox: BBox, days: Sequence[int]) -> float:
        """``F(W, T)`` for an arbitrary rectangle ``W``."""
        self._refresh(days)
        total, _ = self._tree.range_aggregate(bbox)
        return total

    def district_severity(self, district: District, days: Sequence[int]) -> float:
        """RegionSeverityProvider protocol: aggregate the district's box.

        District cells are half-open tiles, so the aggregate uses the
        R-tree's half-open mode — boundary sensors are counted exactly
        once across adjacent regions, matching the district cube.
        """
        self._refresh(days)
        total, _ = self._tree.range_aggregate(district.bbox, closed=False)
        return total
