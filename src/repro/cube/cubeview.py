"""CubeView-style bottom-up baselines (Sec. V-A).

Two model-construction baselines from the evaluation:

* **OC** (original CubeView): scans *all* raw readings of the trace and
  aggregates them into a severity cube over the pre-defined hierarchies.
* **MC** (modified CubeView): the same aggregation restricted to the
  atypical records selected by the **PR** pre-processing step, which is
  also implemented here (PR is shared with the atypical-cluster method:
  "the pre-processing step only needs to carry out once for constructing
  different models").

Both return the constructed :class:`~repro.cube.datacube.SeverityCube`
together with cost accounting (wall time, records scanned), feeding the
Fig. 15 / Fig. 16 experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.records import RecordBatch
from repro.cube.datacube import SeverityCube
from repro.spatial.regions import DistrictGrid
from repro.storage.dataset import CPSDataset
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

__all__ = ["ConstructionReport", "preprocess", "build_cube_oc", "build_cube_mc"]


@dataclass
class ConstructionReport:
    """Cost accounting of one model-construction run."""

    method: str
    elapsed_seconds: float
    records_scanned: int
    records_aggregated: int
    model_bytes: int


@dataclass
class PreprocessResult:
    """Outcome of the PR step: per-day atypical batches."""

    batches: List[RecordBatch]
    days: List[int]
    report: ConstructionReport

    def all_records(self) -> RecordBatch:
        return RecordBatch.concat(self.batches)


def preprocess(
    datasets: Sequence[CPSDataset],
    days: Optional[Sequence[int]] = None,
) -> PreprocessResult:
    """PR: scan the raw trace once and select the atypical records.

    This is the step whose cost tracks OC in Fig. 15 (both must scan the
    full dataset), but it runs once and feeds every downstream model.
    """
    started = time.perf_counter()
    batches: List[RecordBatch] = []
    day_list: List[int] = []
    scanned = 0
    kept = 0
    for dataset in datasets:
        wanted = (
            dataset.days if days is None else [d for d in days if d in dataset.days]
        )
        for day, chunk in dataset.scan(wanted):
            scanned += len(chunk)
            mask = chunk.atypical_mask()
            batch = RecordBatch(
                chunk.sensor_ids[mask],
                chunk.windows[mask],
                chunk.congested[mask].astype(np.float64),
            )
            kept += len(batch)
            batches.append(batch)
            day_list.append(day)
    elapsed = time.perf_counter() - started
    report = ConstructionReport(
        method="PR",
        elapsed_seconds=elapsed,
        records_scanned=scanned,
        records_aggregated=kept,
        model_bytes=sum(len(b) * 16 for b in batches),
    )
    return PreprocessResult(batches=batches, days=day_list, report=report)


def build_cube_oc(
    datasets: Sequence[CPSDataset],
    districts: DistrictGrid,
    calendar: Calendar,
    window_spec: WindowSpec = WindowSpec(),
) -> tuple[SeverityCube, ConstructionReport]:
    """OC: aggregate *every* raw reading bottom-up into the severity cube.

    Normal readings carry zero severity but must still be scanned and
    routed through the aggregation hierarchy — exactly why OC is an order
    of magnitude slower than the atypical-data methods in Fig. 15.
    """
    started = time.perf_counter()
    cube = SeverityCube(districts, calendar, window_spec)
    # The original CubeView materializes aggregates over *all* traffic
    # readings at sensor x hour granularity (speed sums and reading
    # counts) — that dense cuboid is what makes the OC model an order of
    # magnitude larger than the atypical-only models in Fig. 16.
    num_sensors = len(districts.network)
    hours = calendar.num_days * 24
    windows_per_hour = max(1, window_spec.windows_per_hour)
    speed_sum = np.zeros((num_sensors, hours), dtype=np.float64)
    reading_count = np.zeros((num_sensors, hours), dtype=np.int64)
    scanned = 0
    for dataset in datasets:
        for _day, chunk in dataset.scan():
            scanned += len(chunk)
            cube.add_readings(
                chunk.sensor_ids,
                chunk.windows,
                chunk.congested.astype(np.float64),
            )
            hour_idx = chunk.windows // windows_per_hour
            np.add.at(speed_sum, (chunk.sensor_ids, hour_idx), chunk.speeds)
            np.add.at(reading_count, (chunk.sensor_ids, hour_idx), 1)
    elapsed = time.perf_counter() - started
    report = ConstructionReport(
        method="OC",
        elapsed_seconds=elapsed,
        records_scanned=scanned,
        records_aggregated=scanned,
        model_bytes=cube.storage_bytes() + speed_sum.nbytes + reading_count.nbytes,
    )
    return cube, report


def build_cube_mc(
    batches: Iterable[RecordBatch],
    districts: DistrictGrid,
    calendar: Calendar,
    window_spec: WindowSpec = WindowSpec(),
) -> tuple[SeverityCube, ConstructionReport]:
    """MC: aggregate the pre-selected atypical records into the cube.

    Consumes the PR output, so its cost is proportional to the 2-5 %
    atypical fraction rather than the full trace.
    """
    started = time.perf_counter()
    cube = SeverityCube(districts, calendar, window_spec)
    aggregated = 0
    for batch in batches:
        cube.add_records(batch)
        aggregated += len(batch)
    elapsed = time.perf_counter() - started
    report = ConstructionReport(
        method="MC",
        elapsed_seconds=elapsed,
        records_scanned=aggregated,
        records_aggregated=aggregated,
        model_bytes=cube.storage_bytes(),
    )
    return cube, report
