"""Deterministic reduction of shard results into the canonical model.

The reducer is what turns "parallel" into "byte-identical". Workers
compute clusters under worker-local (or temporary) ids; this module
replays the serial run's id assignment and registration order exactly:

* :func:`merge_day_shards` — combine one day's extraction shards into
  the day's canonical micro-cluster list. Ids are drawn from the
  forest's generator in whole-day component-rank order (reconstructed
  from the shards' order keys), and the final list is stable-sorted by
  ``(-severity, start_window)`` — precisely what
  :meth:`~repro.core.events.EventExtractor.extract_micro_clusters`
  produces in process.
* :func:`absorb_cube_shard` — accumulate a shard's severity-cube cells.
  Shards are cell-disjoint (day shards own whole columns, district
  groups own disjoint rows), so each base-cuboid cell is written by
  exactly one shard and carries the bit-exact serial sum.
* :func:`install_integration_shard` — remap a worker-side Algorithm 3
  result (week/month materialization) onto real forest ids and install
  it. Temporary merge-product ids are remapped in creation order, which
  is the order the serial run would have drawn them in; the shard's
  similarity memo is folded into the forest's shared cache under the
  remapped ids.

Everything here is pure sequential bookkeeping — the reducer's cost is
proportional to the number of clusters, not records.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.forest import AtypicalForest
from repro.core.integration import SimilarityCache
from repro.cube.datacube import SeverityCube
from repro.parallel.worker import (
    TEMP_ID_BASE,
    ExtractionShardResult,
    IntegrationShardResult,
)

__all__ = [
    "merge_day_shards",
    "absorb_cube_shard",
    "install_integration_shard",
]


def merge_day_shards(
    shards: Sequence[ExtractionShardResult],
    ids: ClusterIdGenerator,
) -> List[AtypicalCluster]:
    """One day's canonical micro-cluster list from its extraction shards.

    ``shards`` must all belong to the same day and arrive in canonical
    group order (the builder guarantees this regardless of completion
    order). For a single whole-day shard the worker-local ids *are* the
    component ranks, so the remap is positional. For district-group
    shards, the whole-day component rank of every cluster is the rank of
    its order key (the minimum packed node key of its component — see
    ``extract_micro_clusters_ordered``), which is comparable across
    groups because the groups partition the day's sensors.
    """
    if len(shards) == 1 and shards[0].group is None:
        shard = shards[0]
        # worker-local ids are 0..n-1 in component-rank order; draw the
        # real ids in that order, then keep the worker's already-final
        # (-severity, start_window) arrangement
        id_map = {
            local: ids.next_id() for local in range(len(shard.clusters))
        }
        return [
            replace(c, cluster_id=id_map[c.cluster_id]) for c in shard.clusters
        ]
    keyed: List[tuple[int, AtypicalCluster]] = []
    for shard in shards:
        if shard.order_keys is None:
            raise ValueError(
                "multi-shard day reduction requires order keys "
                f"(day {shard.day}, group {shard.group})"
            )
        keyed.extend(zip(shard.order_keys, shard.clusters))
    # order keys are min-of-component node keys over disjoint components,
    # hence unique; ranking them restores the whole-day component order
    keyed.sort(key=lambda pair: pair[0])
    merged = [
        replace(cluster, cluster_id=ids.next_id()) for _, cluster in keyed
    ]
    # ...and the serial extractor's final arrangement is a stable sort of
    # the id-ordered list by (-severity, start_window)
    merged.sort(key=lambda c: (-c.severity(), c.start_window()))
    return merged


def absorb_cube_shard(cube: SeverityCube, shard: ExtractionShardResult) -> None:
    """Accumulate one shard's non-zero base-cuboid cells.

    Exactness argument: the shard computed each of its cells with the
    same ``np.add.at`` record order the serial cube uses, shards never
    share a cell, and adding a shard value onto the cell's initial 0.0 is
    exact — so the assembled cuboid equals the serial one bit-for-bit
    (Property 4's distributivity, realized without reassociating floats).
    """
    cube.absorb_cells(shard.cube_rows, shard.cube_cols, shard.cube_vals, shard.records)


def install_integration_shard(
    forest: AtypicalForest,
    shard: IntegrationShardResult,
) -> List[AtypicalCluster]:
    """Remap one worker-side week/month materialization and install it.

    The worker numbered merge products from ``TEMP_ID_BASE`` in creation
    order. Drawing real ids from the forest generator in that same order
    reproduces the serial id sequence (Algorithm 3's merge order is
    deterministic and id-order-isomorphic under the temp scheme — see
    :func:`repro.parallel.worker.run_integration_shard`). Survivor
    clusters keep their ids and are resolved through :meth:`~repro.core.
    forest.AtypicalForest.lookup` so the registry keeps its original
    objects.
    """
    id_map: Dict[int, int] = {}
    remapped: Dict[int, AtypicalCluster] = {}
    created: List[AtypicalCluster] = []
    for cluster in shard.created:
        real_id = forest.ids.next_id()
        id_map[cluster.cluster_id] = real_id
        renumbered = replace(
            cluster,
            cluster_id=real_id,
            members=tuple(id_map.get(m, m) for m in cluster.members),
        )
        remapped[cluster.cluster_id] = renumbered
        created.append(renumbered)
    clusters = [
        remapped[c.cluster_id]
        if c.cluster_id >= TEMP_ID_BASE
        else forest.lookup(c.cluster_id)
        for c in shard.clusters
    ]
    shadow = SimilarityCache()
    shadow._store = dict(shard.cache_entries)
    shadow.hits = shard.cache_hits
    shadow.misses = shard.cache_misses
    forest.similarity_cache.merge_from(shadow, id_map)
    if shard.kind == "week":
        forest.install_week(shard.key, clusters, created)
    elif shard.kind == "month":
        forest.install_month(shard.key, clusters, created)
    else:
        raise ValueError(f"unknown integration shard kind: {shard.kind!r}")
    return clusters
