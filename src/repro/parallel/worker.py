"""Worker-side execution: what runs inside the process pool.

Workers are initialized with the catalog directory, the engine
configuration and a :class:`WorkerSnapshot` of the deployment — record
data never crosses the process boundary. The snapshot carries the sensor
network, calendar and window spec the parent already holds, so a worker
rebuilds only the cheap derived objects (the district grid partition and
the event extractor) instead of re-reading the simulation catalog per
process; the first task records the remaining setup cost as
``init_seconds`` so the builder can publish
``parallel.worker_init_seconds``. Each worker reads its shards' records
straight from the on-disk datasets, so the parent sends a
few-hundred-byte :class:`~repro.parallel.sharding.ShardSpec` per task.

Shard results travel back through the columnar spill path: a pool worker
writes its clusters and cube cells as one
:mod:`repro.storage.columnar` column group in a scratch file and returns
a tiny :class:`ShardResultRef`, so cluster objects are never pickled
through the pool pipe; the parent maps the scratch file and decodes it
with owned copies (:func:`load_shard_result`). The in-process
``workers=1`` path skips the spill entirely.

Two task kinds exist:

* :func:`run_extraction_shard` — Algorithm 1 over one shard's records
  (plus the shard's severity-cube cells, Property 4's distributive
  measure). Micro-clusters are numbered from a worker-local
  :class:`~repro.core.cluster.ClusterIdGenerator`; the reducer remaps
  them onto the canonical id sequence.
* :func:`run_integration_shard` — Algorithm 3 over one week/month
  shard's input clusters during forest materialization, using the
  incremental indexed engine and a private
  :class:`~repro.core.integration.SimilarityCache`. Merge products are
  numbered from a temporary id base far above any real id; the reducer
  remaps them in creation order, which reproduces the serial id sequence
  exactly (merging is order-deterministic given the tie-breaking rules,
  and Property 3 makes the merged features independent of who computed
  them).

Timings are ``time.perf_counter()`` pairs. On Linux that clock is
``CLOCK_MONOTONIC`` with a system-wide epoch, so the parent can place
worker spans truthfully on its own trace timeline (see
:func:`repro.obs.external_span`).
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.engine import EngineConfig
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.events import EventExtractor
from repro.core.integration import ClusterIntegrator, SimilarityCache
from repro.core.records import RecordBatch
from repro.cube.datacube import SeverityCube
from repro.parallel.sharding import ShardSpec
from repro.spatial.regions import DistrictGrid
from repro.storage.catalog import DatasetCatalog
from repro.storage.columnar import (
    ColumnContainer,
    ContainerWriter,
    cluster_columns,
    clusters_from_columns,
)

__all__ = [
    "WorkerSnapshot",
    "ExtractionShardResult",
    "ShardResultRef",
    "IntegrationShardTask",
    "IntegrationShardResult",
    "init_worker",
    "configure",
    "run_extraction_shard",
    "run_extraction_shard_spill",
    "load_shard_result",
    "run_integration_shard",
]

#: Worker-local merge products are numbered from here upward — far above
#: any id a real forest can reach — so the reducer can tell "temporary,
#: remap me" ids from final micro/macro ids by a single comparison.
TEMP_ID_BASE = 1 << 40


@dataclass(frozen=True)
class WorkerSnapshot:
    """The deployment objects a worker needs, shipped through init once.

    Carries exactly what is cheaper to pickle than to rebuild: the sensor
    network (tens of KB), the calendar and the window spec. The district
    grid is deliberately *not* shipped — its partition arrays unpickle
    slower than :class:`~repro.spatial.regions.DistrictGrid` rebuilds
    them deterministically from the network and shape, so only
    ``(cols, rows)`` crosses the process boundary. Byte identity is safe:
    the rebuild is the same constructor the parent ran.
    """

    network: object
    calendar: object
    window_spec: object
    district_cols: int
    district_rows: int

    @classmethod
    def from_engine(cls, engine) -> "WorkerSnapshot":
        """Snapshot the deployment of an :class:`AnalysisEngine`."""
        cols, rows = engine.districts.shape
        return cls(
            network=engine.network,
            calendar=engine.calendar,
            window_spec=engine.window_spec,
            district_cols=cols,
            district_rows=rows,
        )


@dataclass(frozen=True)
class ExtractionShardResult:
    """One extraction shard's output, ready for the deterministic reduce.

    ``clusters`` carry worker-local ids (0, 1, ... in component order);
    ``order_keys`` align with ``clusters`` and are only present for
    sub-day shards (see
    :meth:`~repro.core.events.EventExtractor.extract_micro_clusters_ordered`).
    ``cube_rows``/``cube_cols``/``cube_vals`` are the shard's non-zero
    ``(district, day)`` severity cells — shards are cell-disjoint, so the
    reducer assembles the base cuboid exactly (Property 4).
    """

    day: int
    group: Optional[int]
    clusters: List[AtypicalCluster]
    order_keys: Optional[List[int]]
    cube_rows: np.ndarray
    cube_cols: np.ndarray
    cube_vals: np.ndarray
    records: int
    started: float
    finished: float
    pid: int
    init_seconds: float = 0.0


@dataclass(frozen=True)
class ShardResultRef:
    """A pointer to one shard result spilled to a columnar scratch file.

    This is all that crosses the pool pipe on the spill path — a path and
    the shard identity for error messages. The parent materializes the
    real :class:`ExtractionShardResult` with :func:`load_shard_result`.
    """

    path: str
    day: int
    group: Optional[int]


@dataclass(frozen=True)
class IntegrationShardTask:
    """One materialization shard: integrate ``clusters`` (Algorithm 3)."""

    kind: str  # "week" | "month"
    key: int
    clusters: List[AtypicalCluster]


@dataclass(frozen=True)
class IntegrationShardResult:
    """Algorithm 3 output of one week/month shard.

    ``created`` lists intermediate merge products in creation order with
    temporary ids (>= :data:`TEMP_ID_BASE`); ``clusters`` is the final
    macro-cluster set (survivor micros keep their real ids).
    ``cache_entries`` ships the worker's similarity memo for
    :meth:`~repro.core.integration.SimilarityCache.merge_from`.
    """

    kind: str
    key: int
    clusters: List[AtypicalCluster]
    created: List[AtypicalCluster]
    merges: int
    comparisons: int
    fast_rejects: int
    rounds: int
    cache_entries: Dict[Tuple[int, int], float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    started: float = 0.0
    finished: float = 0.0
    pid: int = 0


class _WorkerState:
    """Per-process deployment, built lazily on the first task.

    With a :class:`WorkerSnapshot` the catalog directory is opened but
    the simulation config is never re-read — the network/calendar/spec
    come from the parent and only the derived district grid and extractor
    are rebuilt. Without one (legacy callers) the full
    ``TrafficSimulator.from_catalog_dir`` path runs. ``init_seconds`` is
    the wall time this constructor took, surfaced per worker as the
    ``parallel.worker_init_seconds`` metric.
    """

    def __init__(
        self,
        data_dir: str,
        config: EngineConfig,
        snapshot: Optional[WorkerSnapshot] = None,
    ):
        started = time.perf_counter()
        self.config = config
        self.catalog = DatasetCatalog(data_dir)
        if snapshot is not None:
            self.network = snapshot.network
            self.calendar = snapshot.calendar
            self.spec = snapshot.window_spec
            self.districts = DistrictGrid(
                self.network, snapshot.district_cols, snapshot.district_rows
            )
        else:
            from repro.simulate import TrafficSimulator

            simulator = TrafficSimulator.from_catalog_dir(data_dir)
            self.network = simulator.network
            self.calendar = simulator.calendar
            self.spec = simulator.window_spec
            self.districts = simulator.districts()
        self.extractor = EventExtractor(
            self.network,
            config.extraction_params(),
            self.spec,
            method=config.extraction_method,
        )
        self.init_seconds = time.perf_counter() - started


_INIT: Optional[Tuple[str, dict, Optional[WorkerSnapshot], Optional[str]]] = None
_STATE: Optional[_WorkerState] = None


def init_worker(
    data_dir: str,
    config_dict: dict,
    snapshot: Optional[WorkerSnapshot] = None,
    spill_dir: Optional[str] = None,
) -> None:
    """``ProcessPoolExecutor`` initializer: remember what to build.

    ``snapshot`` ships the parent's deployment objects so the worker
    skips re-reading the catalog's simulation config; ``spill_dir`` is
    where :func:`run_extraction_shard_spill` writes its scratch files.
    The heavy work (opening the catalog, building the grid index)
    happens lazily on the first task, so initialization failures surface
    as task exceptions with usable tracebacks instead of an opaque
    ``BrokenProcessPool``.
    """
    global _INIT, _STATE
    _INIT = (str(data_dir), dict(config_dict), snapshot, spill_dir)
    _STATE = None


def configure(
    data_dir: str,
    config_dict: dict,
    snapshot: Optional[WorkerSnapshot] = None,
    spill_dir: Optional[str] = None,
) -> None:
    """In-process variant of :func:`init_worker` (the ``--workers 1`` path)."""
    init_worker(data_dir, config_dict, snapshot, spill_dir)


def _state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        if _INIT is None:
            raise RuntimeError(
                "parallel worker used before init_worker/configure"
            )
        data_dir, config_dict, snapshot, _ = _INIT
        _STATE = _WorkerState(data_dir, EngineConfig(**config_dict), snapshot)
    return _STATE


def _shard_batch(state: _WorkerState, shard: ShardSpec) -> RecordBatch:
    """The shard's records: the day's PR output, group-filtered if needed."""
    dataset = state.catalog.dataset_for_day(shard.day)
    if dataset is None:
        raise ValueError(f"day {shard.day} not found in catalog")
    batch = dataset.atypical_day(shard.day)
    if shard.sensor_ids is None:
        return batch
    members = np.asarray(shard.sensor_ids, dtype=batch.sensor_ids.dtype)
    mask = np.isin(batch.sensor_ids, members)
    return batch.select(mask)


def run_extraction_shard(shard: ShardSpec) -> ExtractionShardResult:
    """Algorithm 1 over one shard, plus its severity-cube cells.

    Whole-day shards use the plain extractor (ids in component order are
    already the canonical within-day order); sub-day shards use the
    ordered variant so the reducer can reconstruct whole-day component
    ranks across groups.
    """
    started = time.perf_counter()
    state = _state()
    batch = _shard_batch(state, shard)
    ids = ClusterIdGenerator(0)
    # a no-op inside pool processes (observability is per-process and off
    # there — the parent synthesizes parallel.shard spans instead), but on
    # the workers=1 in-process path this keeps the serial builder's span
    # taxonomy: one extract.day per day under build.catalog
    with obs.span("extract.day") as sp:
        if shard.group is None:
            clusters = state.extractor.extract_micro_clusters(batch, ids)
            order_keys: Optional[List[int]] = None
        else:
            clusters, order_keys = (
                state.extractor.extract_micro_clusters_ordered(batch, ids)
            )
        sp.set(
            day=shard.day,
            group=shard.group,
            records=len(batch),
            clusters=len(clusters),
        )
    cube = SeverityCube(state.districts, state.calendar, state.spec)
    cube.add_records(batch)
    cells = cube.cells()
    rows, cols = np.nonzero(cells)
    return ExtractionShardResult(
        day=shard.day,
        group=shard.group,
        clusters=clusters,
        order_keys=order_keys,
        cube_rows=rows,
        cube_cols=cols,
        cube_vals=np.ascontiguousarray(cells[rows, cols]),
        records=len(batch),
        started=started,
        finished=time.perf_counter(),
        pid=os.getpid(),
        init_seconds=state.init_seconds,
    )


def run_extraction_shard_spill(shard: ShardSpec) -> ShardResultRef:
    """Run one extraction shard and spill the result to columnar scratch.

    Pool workers use this entry point: the clusters and cube cells are
    written as a single column group in the configured spill directory
    and only a :class:`ShardResultRef` returns through the pipe — no
    cluster objects are ever pickled. Timings, worker identity and
    ``init_seconds`` ride along in the group metadata.
    """
    if _INIT is None or _INIT[3] is None:
        raise RuntimeError("spill path used without a configured spill_dir")
    spill_dir = _INIT[3]
    result = run_extraction_shard(shard)
    columns = cluster_columns(result.clusters)
    columns.append(("crow", np.asarray(result.cube_rows, dtype=np.int64)))
    columns.append(("ccol", np.asarray(result.cube_cols, dtype=np.int64)))
    columns.append(("cval", np.asarray(result.cube_vals, dtype=np.float64)))
    if result.order_keys is not None:
        columns.append(
            ("okey", np.asarray(result.order_keys, dtype=np.int64))
        )
    writer = ContainerWriter()
    writer.add_group(
        "shard",
        result.day,
        columns,
        rows=len(result.clusters),
        meta={
            "day": result.day,
            "group": result.group,
            "records": result.records,
            "started": result.started,
            "finished": result.finished,
            "pid": result.pid,
            "init_seconds": result.init_seconds,
            "ordered": result.order_keys is not None,
        },
    )
    path = Path(spill_dir) / (
        f"shard-{result.day}-{result.group if result.group is not None else 'all'}"
        f"-{os.getpid()}-{uuid.uuid4().hex[:8]}.col"
    )
    writer.write(path)
    return ShardResultRef(path=str(path), day=result.day, group=result.group)


def load_shard_result(ref: ShardResultRef) -> ExtractionShardResult:
    """Materialize a spilled shard result in the parent process.

    Decodes with owned copies: the scratch directory is deleted when the
    build finishes, so nothing downstream may keep views into the
    mapping.
    """
    container = ColumnContainer(ref.path)
    meta = container.groups[0].meta
    clusters = clusters_from_columns(container, 0, copy=True)
    order_keys: Optional[List[int]] = None
    if meta.get("ordered"):
        order_keys = [int(k) for k in container.column(0, "okey")]
    return ExtractionShardResult(
        day=int(meta["day"]),
        group=meta["group"],
        clusters=clusters,
        order_keys=order_keys,
        cube_rows=container.column(0, "crow", copy=True),
        cube_cols=container.column(0, "ccol", copy=True),
        cube_vals=container.column(0, "cval", copy=True),
        records=int(meta["records"]),
        started=float(meta["started"]),
        finished=float(meta["finished"]),
        pid=int(meta["pid"]),
        init_seconds=float(meta["init_seconds"]),
    )


def run_integration_shard(
    task: IntegrationShardTask,
    threshold: float,
    balance: str,
    method: str,
) -> IntegrationShardResult:
    """Algorithm 3 over one materialization shard, under temporary ids.

    Runs the same configured
    :class:`~repro.core.integration.ClusterIntegrator` the forest would
    use, with merge products numbered from :data:`TEMP_ID_BASE`. Because
    every input id is below the base and creation order is deterministic,
    the id *order* is isomorphic to the serial run's — which is all the
    integrator's tie-breaking (lowest-id pair first, final sort by
    ``(-severity, id)``) depends on — so the reducer's in-order remap
    reproduces the serial result exactly.
    """
    started = time.perf_counter()
    integrator = ClusterIntegrator(threshold, balance, method)
    cache = SimilarityCache()
    result = integrator.integrate(
        task.clusters, ClusterIdGenerator(TEMP_ID_BASE), cache
    )
    return IntegrationShardResult(
        kind=task.kind,
        key=task.key,
        clusters=result.clusters,
        created=list(result.created.values()),
        merges=result.merges,
        comparisons=result.comparisons,
        fast_rejects=result.fast_rejects,
        rounds=result.rounds,
        cache_entries=dict(cache._store),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        started=started,
        finished=time.perf_counter(),
        pid=os.getpid(),
    )
