"""Worker-side execution: what runs inside the process pool.

Workers are initialized with the catalog directory and the engine
configuration only — record data never crosses the process boundary.
Each worker lazily rebuilds the deployment
(:meth:`~repro.simulate.generator.TrafficSimulator.from_catalog_dir`)
and reads its shards' records straight from the on-disk datasets, so the
parent sends a few-hundred-byte :class:`~repro.parallel.sharding.ShardSpec`
per task and receives the extracted micro-clusters back.

Two task kinds exist:

* :func:`run_extraction_shard` — Algorithm 1 over one shard's records
  (plus the shard's severity-cube cells, Property 4's distributive
  measure). Micro-clusters are numbered from a worker-local
  :class:`~repro.core.cluster.ClusterIdGenerator`; the reducer remaps
  them onto the canonical id sequence.
* :func:`run_integration_shard` — Algorithm 3 over one week/month
  shard's input clusters during forest materialization, using the
  incremental indexed engine and a private
  :class:`~repro.core.integration.SimilarityCache`. Merge products are
  numbered from a temporary id base far above any real id; the reducer
  remaps them in creation order, which reproduces the serial id sequence
  exactly (merging is order-deterministic given the tie-breaking rules,
  and Property 3 makes the merged features independent of who computed
  them).

Timings are ``time.perf_counter()`` pairs. On Linux that clock is
``CLOCK_MONOTONIC`` with a system-wide epoch, so the parent can place
worker spans truthfully on its own trace timeline (see
:func:`repro.obs.external_span`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.engine import EngineConfig
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.events import EventExtractor
from repro.core.integration import ClusterIntegrator, SimilarityCache
from repro.core.records import RecordBatch
from repro.cube.datacube import SeverityCube
from repro.parallel.sharding import ShardSpec
from repro.simulate.generator import TrafficSimulator
from repro.storage.catalog import DatasetCatalog

__all__ = [
    "ExtractionShardResult",
    "IntegrationShardTask",
    "IntegrationShardResult",
    "init_worker",
    "configure",
    "run_extraction_shard",
    "run_integration_shard",
]

#: Worker-local merge products are numbered from here upward — far above
#: any id a real forest can reach — so the reducer can tell "temporary,
#: remap me" ids from final micro/macro ids by a single comparison.
TEMP_ID_BASE = 1 << 40


@dataclass(frozen=True)
class ExtractionShardResult:
    """One extraction shard's output, ready for the deterministic reduce.

    ``clusters`` carry worker-local ids (0, 1, ... in component order);
    ``order_keys`` align with ``clusters`` and are only present for
    sub-day shards (see
    :meth:`~repro.core.events.EventExtractor.extract_micro_clusters_ordered`).
    ``cube_rows``/``cube_cols``/``cube_vals`` are the shard's non-zero
    ``(district, day)`` severity cells — shards are cell-disjoint, so the
    reducer assembles the base cuboid exactly (Property 4).
    """

    day: int
    group: Optional[int]
    clusters: List[AtypicalCluster]
    order_keys: Optional[List[int]]
    cube_rows: np.ndarray
    cube_cols: np.ndarray
    cube_vals: np.ndarray
    records: int
    started: float
    finished: float
    pid: int


@dataclass(frozen=True)
class IntegrationShardTask:
    """One materialization shard: integrate ``clusters`` (Algorithm 3)."""

    kind: str  # "week" | "month"
    key: int
    clusters: List[AtypicalCluster]


@dataclass(frozen=True)
class IntegrationShardResult:
    """Algorithm 3 output of one week/month shard.

    ``created`` lists intermediate merge products in creation order with
    temporary ids (>= :data:`TEMP_ID_BASE`); ``clusters`` is the final
    macro-cluster set (survivor micros keep their real ids).
    ``cache_entries`` ships the worker's similarity memo for
    :meth:`~repro.core.integration.SimilarityCache.merge_from`.
    """

    kind: str
    key: int
    clusters: List[AtypicalCluster]
    created: List[AtypicalCluster]
    merges: int
    comparisons: int
    fast_rejects: int
    rounds: int
    cache_entries: Dict[Tuple[int, int], float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    started: float = 0.0
    finished: float = 0.0
    pid: int = 0


class _WorkerState:
    """Per-process deployment, rebuilt lazily from the catalog directory."""

    def __init__(self, data_dir: str, config: EngineConfig):
        self.config = config
        self.simulator = TrafficSimulator.from_catalog_dir(data_dir)
        self.catalog = DatasetCatalog(data_dir)
        self.network = self.simulator.network
        self.districts = self.simulator.districts()
        self.calendar = self.simulator.calendar
        self.spec = self.simulator.window_spec
        self.extractor = EventExtractor(
            self.network,
            config.extraction_params(),
            self.spec,
            method=config.extraction_method,
        )


_INIT: Optional[Tuple[str, dict]] = None
_STATE: Optional[_WorkerState] = None


def init_worker(data_dir: str, config_dict: dict) -> None:
    """``ProcessPoolExecutor`` initializer: remember what to build.

    The heavy work (re-reading the simulation config, building the grid
    index) happens lazily on the first task, so initialization failures
    surface as task exceptions with usable tracebacks instead of an
    opaque ``BrokenProcessPool``.
    """
    global _INIT, _STATE
    _INIT = (str(data_dir), dict(config_dict))
    _STATE = None


def configure(data_dir: str, config_dict: dict) -> None:
    """In-process variant of :func:`init_worker` (the ``--workers 1`` path)."""
    init_worker(data_dir, config_dict)


def _state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        if _INIT is None:
            raise RuntimeError(
                "parallel worker used before init_worker/configure"
            )
        data_dir, config_dict = _INIT
        _STATE = _WorkerState(data_dir, EngineConfig(**config_dict))
    return _STATE


def _shard_batch(state: _WorkerState, shard: ShardSpec) -> RecordBatch:
    """The shard's records: the day's PR output, group-filtered if needed."""
    dataset = state.catalog.dataset_for_day(shard.day)
    if dataset is None:
        raise ValueError(f"day {shard.day} not found in catalog")
    batch = dataset.atypical_day(shard.day)
    if shard.sensor_ids is None:
        return batch
    members = np.asarray(shard.sensor_ids, dtype=batch.sensor_ids.dtype)
    mask = np.isin(batch.sensor_ids, members)
    return batch.select(mask)


def run_extraction_shard(shard: ShardSpec) -> ExtractionShardResult:
    """Algorithm 1 over one shard, plus its severity-cube cells.

    Whole-day shards use the plain extractor (ids in component order are
    already the canonical within-day order); sub-day shards use the
    ordered variant so the reducer can reconstruct whole-day component
    ranks across groups.
    """
    started = time.perf_counter()
    state = _state()
    batch = _shard_batch(state, shard)
    ids = ClusterIdGenerator(0)
    # a no-op inside pool processes (observability is per-process and off
    # there — the parent synthesizes parallel.shard spans instead), but on
    # the workers=1 in-process path this keeps the serial builder's span
    # taxonomy: one extract.day per day under build.catalog
    with obs.span("extract.day") as sp:
        if shard.group is None:
            clusters = state.extractor.extract_micro_clusters(batch, ids)
            order_keys: Optional[List[int]] = None
        else:
            clusters, order_keys = (
                state.extractor.extract_micro_clusters_ordered(batch, ids)
            )
        sp.set(
            day=shard.day,
            group=shard.group,
            records=len(batch),
            clusters=len(clusters),
        )
    cube = SeverityCube(state.districts, state.calendar, state.spec)
    cube.add_records(batch)
    cells = cube.cells()
    rows, cols = np.nonzero(cells)
    return ExtractionShardResult(
        day=shard.day,
        group=shard.group,
        clusters=clusters,
        order_keys=order_keys,
        cube_rows=rows,
        cube_cols=cols,
        cube_vals=np.ascontiguousarray(cells[rows, cols]),
        records=len(batch),
        started=started,
        finished=time.perf_counter(),
        pid=os.getpid(),
    )


def run_integration_shard(
    task: IntegrationShardTask,
    threshold: float,
    balance: str,
    method: str,
) -> IntegrationShardResult:
    """Algorithm 3 over one materialization shard, under temporary ids.

    Runs the same configured
    :class:`~repro.core.integration.ClusterIntegrator` the forest would
    use, with merge products numbered from :data:`TEMP_ID_BASE`. Because
    every input id is below the base and creation order is deterministic,
    the id *order* is isomorphic to the serial run's — which is all the
    integrator's tie-breaking (lowest-id pair first, final sort by
    ``(-severity, id)``) depends on — so the reducer's in-order remap
    reproduces the serial result exactly.
    """
    started = time.perf_counter()
    integrator = ClusterIntegrator(threshold, balance, method)
    cache = SimilarityCache()
    result = integrator.integrate(
        task.clusters, ClusterIdGenerator(TEMP_ID_BASE), cache
    )
    return IntegrationShardResult(
        kind=task.kind,
        key=task.key,
        clusters=result.clusters,
        created=list(result.created.values()),
        merges=result.merges,
        comparisons=result.comparisons,
        fast_rejects=result.fast_rejects,
        rounds=result.rounds,
        cache_entries=dict(cache._store),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        started=started,
        finished=time.perf_counter(),
        pid=os.getpid(),
    )
