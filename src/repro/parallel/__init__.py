"""Parallel sharded construction of the atypical forest.

The paper's cluster model is what makes the forest *parallelizable*: the
spatial/temporal severity features are algebraic (Property 2) and the
cluster merge of Algorithm 2 is commutative and associative (Property 3),
so the model computed over a partition of the record stream can be
combined into exactly the model a sequential pass would have produced —
provided the partition never splits an atypical event and the combination
happens in a pinned canonical order (float addition is not associative,
so "exactly" here means *byte-identical*, which the test suite enforces).

The subsystem has four parts:

* :mod:`repro.parallel.sharding` — partitions the requested day range
  into shards: one per day, or one per ``(day, district-connectivity
  group)`` when sub-sharding by district. Groups are closed under the
  ``delta_d`` sensor adjacency of Definition 1, so no atypical event ever
  crosses a shard boundary.
* :mod:`repro.parallel.worker` — the functions that run inside
  ``ProcessPoolExecutor`` workers: Algorithm 1 extraction over one
  shard's records (plus the shard's severity-cube cells), and Algorithm 3
  integration of one week/month shard during materialization. Workers
  re-open the dataset catalog from disk; only shard descriptors and
  results cross the process boundary.
* :mod:`repro.parallel.reduce` — the deterministic reducer: remaps
  worker-local cluster ids onto the canonical serial id sequence in
  (day, district) order, assembles the disjoint cube cells, and installs
  worker-integrated week/month levels into the forest.
* :mod:`repro.parallel.builder` — the orchestrator tying it together
  (:class:`~repro.parallel.builder.ParallelForestBuilder`), used by
  :meth:`repro.analysis.engine.AnalysisEngine.build_from_catalog_parallel`
  and the ``repro build --workers N --shard-by {day,day-district}`` CLI.

With observability enabled, the builder records ``parallel.build`` /
``parallel.map`` / ``parallel.reduce`` / ``parallel.materialize`` spans
plus one synthesized ``parallel.shard`` span per shard (worker wall time
and queue wait), so ``--trace-out`` shows the fan-out in Perfetto.
"""

from repro.parallel.builder import ParallelBuildReport, ParallelForestBuilder
from repro.parallel.sharding import (
    ShardPlan,
    ShardSpec,
    district_groups,
    plan_shards,
)

__all__ = [
    "ParallelForestBuilder",
    "ParallelBuildReport",
    "ShardPlan",
    "ShardSpec",
    "district_groups",
    "plan_shards",
]
