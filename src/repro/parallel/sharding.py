"""Shard planning: partition the record stream without splitting events.

Two shard axes are supported:

* ``"day"`` — one shard per day. Always sound: the serial builder
  (Algorithm 1 per day) processes days independently, so a day is a
  natural unit of parallelism for any extraction method.
* ``"day-district"`` — each day is further split by *district
  connectivity group*. Definition 1 relates two records only when their
  sensors are within ``delta_d``, so an atypical event (Def. 3, a
  connected component of the record graph) can never span two districts
  whose sensor sets have no cross pair within ``delta_d``. Grouping
  districts by the transitive closure of that adjacency therefore yields
  sub-day shards that are closed under event connectivity — every event
  falls entirely inside one shard, and per-shard Algorithm 1 finds
  exactly the components the whole-day pass would have found.

The plan is a pure function of the deployment and the day range — never
of the worker count — which is what lets the reducer produce
byte-identical output at any parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import UnionFind
from repro.spatial.grid import SensorGridIndex
from repro.spatial.network import SensorNetwork
from repro.spatial.regions import DistrictGrid

__all__ = ["ShardSpec", "ShardPlan", "district_groups", "plan_shards"]

SHARD_AXES = ("day", "day-district")


@dataclass(frozen=True)
class ShardSpec:
    """One unit of map-phase work: a day, optionally restricted to a group.

    ``group`` is an index into the plan's district-connectivity groups
    (None for whole-day shards); ``sensor_ids`` is the sorted sensor
    subset of that group (None means all sensors).
    """

    day: int
    group: Optional[int] = None
    sensor_ids: Optional[Tuple[int, ...]] = None

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical reduce order: days ascending, groups ascending."""
        return (self.day, -1 if self.group is None else self.group)


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of a build: shards in canonical order.

    ``groups`` lists the district ids of each connectivity group (empty
    for day sharding). The plan, not the execution, is what forest
    provenance records (see :meth:`provenance`).
    """

    shard_by: str
    days: Tuple[int, ...]
    shards: Tuple[ShardSpec, ...]
    groups: Tuple[Tuple[int, ...], ...] = ()

    def provenance(self) -> Dict[str, object]:
        """JSON-compatible shard provenance for the forest header.

        Deliberately excludes anything execution-dependent (worker count,
        timings, pids): two builds of the same plan must serialize to
        byte-identical forests regardless of parallelism.
        """
        return {
            "shard_by": self.shard_by,
            "days": list(self.days),
            "groups": [list(g) for g in self.groups],
            "shards": [
                {"day": s.day, "group": s.group} for s in self.shards
            ],
        }


def district_groups(
    network: SensorNetwork,
    districts: DistrictGrid,
    delta_d: float,
) -> Tuple[Tuple[int, ...], ...]:
    """Connectivity groups of districts under the ``delta_d`` adjacency.

    Two districts join the same group when any sensor pair across them
    lies strictly within ``delta_d`` (the Definition 1 spatial
    threshold); groups are the transitive closure. Events (Def. 3) can
    only connect records through such pairs, so no event crosses a group
    boundary — the soundness condition for ``day-district`` sharding.

    Returns the groups as sorted district-id tuples, ordered by their
    smallest district id (a deterministic canonical order).
    """
    grid = SensorGridIndex(network, delta_d)
    uf = UnionFind(len(districts))
    for a, b in grid.neighbour_pairs():
        da = districts.district_of(a)
        db = districts.district_of(b)
        if da != db:
            uf.union(da, db)
    by_root: Dict[int, List[int]] = {}
    for district in range(len(districts)):
        by_root.setdefault(uf.find(district), []).append(district)
    groups = sorted((tuple(sorted(members)) for members in by_root.values()))
    return tuple(groups)


def plan_shards(
    days: Sequence[int],
    shard_by: str = "day",
    *,
    network: Optional[SensorNetwork] = None,
    districts: Optional[DistrictGrid] = None,
    delta_d: Optional[float] = None,
    extraction_method: str = "grid",
) -> ShardPlan:
    """Build the shard plan for ``days`` along the requested axis.

    ``day-district`` requires the deployment (``network`` / ``districts``
    / ``delta_d``) to compute connectivity groups, and requires the
    ``"grid"`` extraction method: the reducer reconstructs whole-day
    component ranks from per-cluster order keys (see
    :meth:`repro.core.events.EventExtractor.extract_micro_clusters_ordered`),
    which the naive union-find labeller cannot provide.
    """
    if shard_by not in SHARD_AXES:
        raise ValueError(
            f"unknown shard axis {shard_by!r}; expected one of {SHARD_AXES}"
        )
    day_list = tuple(sorted(set(int(d) for d in days)))
    if shard_by == "day":
        return ShardPlan(
            shard_by=shard_by,
            days=day_list,
            shards=tuple(ShardSpec(day=d) for d in day_list),
        )
    if extraction_method != "grid":
        raise ValueError(
            "day-district sharding requires the 'grid' extraction method; "
            f"got {extraction_method!r} (see extract_micro_clusters_ordered)"
        )
    if network is None or districts is None or delta_d is None:
        raise ValueError(
            "day-district sharding needs network, districts and delta_d "
            "to compute connectivity groups"
        )
    groups = district_groups(network, districts, delta_d)
    group_sensors: List[Tuple[int, ...]] = []
    for members in groups:
        sensors: List[int] = []
        for district_id in members:
            sensors.extend(districts[district_id].sensor_ids)
        group_sensors.append(tuple(sorted(sensors)))
    shards = tuple(
        ShardSpec(day=d, group=g, sensor_ids=group_sensors[g])
        for d in day_list
        for g in range(len(groups))
        if group_sensors[g]
    )
    return ShardPlan(
        shard_by=shard_by, days=day_list, shards=shards, groups=groups
    )
