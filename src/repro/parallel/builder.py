"""The parallel build orchestrator: map shards, reduce in canonical order.

:class:`ParallelForestBuilder` fans the shard plan out over a
``ProcessPoolExecutor`` (or runs it in process for ``workers=1``) and
reduces the results in canonical ``(day, group)`` order regardless of
completion order, so the constructed forest and cube are byte-identical
to a serial build — the invariant the whole subsystem is built around
(Property 3 licenses the parallelism; the pinned reduce order pins the
floats).

The ``workers=1`` path goes through the exact same shard/reduce
machinery with no pool, which is why ``repro build`` routes *every*
build through this builder: serial and parallel runs share one code
path and one output.

With observability enabled the builder emits a ``parallel.build`` span
containing ``parallel.map`` / ``parallel.reduce`` (and, when asked to
materialize, ``parallel.materialize.week`` / ``parallel.materialize.month``)
plus one synthesized ``parallel.shard`` span per shard carrying the
worker's wall time, queue wait, pid and cluster counts — visible as a
fan-out lane in Perfetto via ``--trace-out``.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.cluster import AtypicalCluster
from repro.parallel import reduce as preduce
from repro.parallel import worker as pworker
from repro.parallel.sharding import ShardPlan, ShardSpec, plan_shards
from repro.storage.catalog import DatasetCatalog

__all__ = ["ParallelBuildReport", "ParallelForestBuilder"]


@dataclass(frozen=True)
class ShardTiming:
    """Execution record of one shard (for reports and shard spans)."""

    day: int
    group: Optional[int]
    records: int
    clusters: int
    queue_wait: float
    seconds: float
    pid: int


@dataclass(frozen=True)
class ParallelBuildReport:
    """What a parallel build did and how long each phase took.

    Execution details (worker count, timings) live here — and in the
    ``engine.json`` sidecar — never in the forest itself, which records
    only the worker-count-independent shard plan.
    """

    shard_by: str
    workers: int
    days_built: int
    shards: int
    records: int
    clusters: int
    map_seconds: float
    reduce_seconds: float
    materialize_seconds: float = 0.0
    worker_init_seconds: float = 0.0
    shard_timings: Tuple[ShardTiming, ...] = field(default=())

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary for ``engine.json`` / bench output."""
        return {
            "shard_by": self.shard_by,
            "workers": self.workers,
            "days_built": self.days_built,
            "shards": self.shards,
            "records": self.records,
            "clusters": self.clusters,
            "map_seconds": self.map_seconds,
            "reduce_seconds": self.reduce_seconds,
            "materialize_seconds": self.materialize_seconds,
            "worker_init_seconds": self.worker_init_seconds,
        }


class ParallelForestBuilder:
    """Builds an engine's forest and cube from a catalog, in parallel.

    Parameters
    ----------
    engine:
        The :class:`~repro.analysis.engine.AnalysisEngine` whose forest,
        cube and id generator receive the build.
    catalog:
        On-disk :class:`~repro.storage.catalog.DatasetCatalog`; workers
        re-open it independently (only shard descriptors cross the
        process boundary).
    workers:
        Process count; ``1`` runs the same shard/reduce path in process.
    shard_by:
        ``"day"`` or ``"day-district"`` (see
        :func:`repro.parallel.sharding.plan_shards`).
    materialize:
        Also build every week/month level, integrating the level shards
        in workers (Algorithm 3 under temporary ids) and installing them
        in canonical order.
    """

    def __init__(
        self,
        engine,
        catalog: DatasetCatalog,
        workers: int = 1,
        shard_by: str = "day",
        materialize: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._engine = engine
        self._catalog = catalog
        self._workers = int(workers)
        self._shard_by = shard_by
        self._materialize = materialize

    # ------------------------------------------------------------------
    def plan(self, days: Optional[Sequence[int]] = None) -> ShardPlan:
        """The shard plan for the requested (or all catalogued) days."""
        available: List[int] = []
        for dataset in self._catalog:
            wanted = (
                dataset.days
                if days is None
                else [d for d in days if d in dataset.days]
            )
            available.extend(wanted)
        config = self._engine.config
        return plan_shards(
            available,
            self._shard_by,
            network=self._engine.network,
            districts=self._engine.districts,
            delta_d=config.distance_miles,
            extraction_method=config.extraction_method,
        )

    # ------------------------------------------------------------------
    def build(self, days: Optional[Sequence[int]] = None) -> ParallelBuildReport:
        """Run the full map/reduce build; returns the execution report."""
        plan = self.plan(days)
        config_dict = dataclasses.asdict(self._engine.config)
        data_dir = str(self._catalog.directory)
        snapshot = pworker.WorkerSnapshot.from_engine(self._engine)
        with obs.span("parallel.build") as sp:
            map_start = time.perf_counter()
            if self._workers == 1:
                results, timings = self._map_serial(
                    plan, data_dir, config_dict, snapshot
                )
            else:
                results, timings = self._map_pooled(
                    plan, data_dir, config_dict, snapshot
                )
            map_seconds = time.perf_counter() - map_start
            worker_init_seconds = self._record_worker_init(results)

            reduce_start = time.perf_counter()
            clusters, ranges = self._reduce(plan, results)
            reduce_seconds = time.perf_counter() - reduce_start

            provenance = dict(plan.provenance())
            provenance["day_cluster_ranges"] = ranges
            self._engine.forest.set_provenance(provenance)

            materialize_seconds = 0.0
            if self._materialize:
                materialize_start = time.perf_counter()
                self._materialize_levels(data_dir, config_dict, snapshot)
                materialize_seconds = time.perf_counter() - materialize_start

            report = ParallelBuildReport(
                shard_by=plan.shard_by,
                workers=self._workers,
                days_built=len(plan.days),
                shards=len(plan.shards),
                records=sum(t.records for t in timings),
                clusters=clusters,
                map_seconds=map_seconds,
                reduce_seconds=reduce_seconds,
                materialize_seconds=materialize_seconds,
                worker_init_seconds=worker_init_seconds,
                shard_timings=tuple(timings),
            )
            sp.set(
                workers=self._workers,
                shard_by=plan.shard_by,
                days=len(plan.days),
                shards=len(plan.shards),
                clusters=clusters,
            )
        return report

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _map_serial(
        self,
        plan: ShardPlan,
        data_dir: str,
        config_dict: dict,
        snapshot: pworker.WorkerSnapshot,
    ) -> Tuple[Dict[Tuple[int, int], pworker.ExtractionShardResult], List[ShardTiming]]:
        pworker.configure(data_dir, config_dict, snapshot)
        results: Dict[Tuple[int, int], pworker.ExtractionShardResult] = {}
        timings: List[ShardTiming] = []
        with obs.span("parallel.map", mode="in-process"):
            for shard in plan.shards:
                submitted = time.perf_counter()
                result = pworker.run_extraction_shard(shard)
                results[shard.key] = result
                timings.append(self._record_shard(shard, result, submitted))
        return results, timings

    def _map_pooled(
        self,
        plan: ShardPlan,
        data_dir: str,
        config_dict: dict,
        snapshot: pworker.WorkerSnapshot,
    ) -> Tuple[Dict[Tuple[int, int], pworker.ExtractionShardResult], List[ShardTiming]]:
        results: Dict[Tuple[int, int], pworker.ExtractionShardResult] = {}
        timings: List[ShardTiming] = []
        spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        try:
            with obs.span("parallel.map", mode="process-pool") as sp:
                with ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=pworker.init_worker,
                    initargs=(data_dir, config_dict, snapshot, spill_dir),
                ) as pool:
                    submitted = time.perf_counter()
                    futures = {
                        pool.submit(pworker.run_extraction_shard_spill, shard): shard
                        for shard in plan.shards
                    }
                    pending = set(futures)
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            shard = futures[future]
                            # the worker spilled columns to scratch and sent
                            # back only a ref; decode with owned copies here
                            result = pworker.load_shard_result(future.result())
                            results[shard.key] = result
                            timings.append(
                                self._record_shard(shard, result, submitted)
                            )
                sp.set(shards=len(plan.shards))
        finally:
            shutil.rmtree(spill_dir, ignore_errors=True)
        timings.sort(key=lambda t: (t.day, -1 if t.group is None else t.group))
        return results, timings

    def _record_worker_init(
        self,
        results: Dict[Tuple[int, int], pworker.ExtractionShardResult],
    ) -> float:
        """Publish per-worker init cost; returns the slowest worker's."""
        by_pid: Dict[int, float] = {}
        for result in results.values():
            by_pid[result.pid] = max(
                by_pid.get(result.pid, 0.0), result.init_seconds
            )
        if self._workers == 1:
            # in-process path: setup is the engine's, not a worker's
            return 0.0
        if obs.enabled():
            metric = obs.histogram("parallel.worker_init_seconds")
            for seconds in by_pid.values():
                metric.observe(seconds)
        return max(by_pid.values(), default=0.0)

    def _record_shard(
        self,
        shard: ShardSpec,
        result: pworker.ExtractionShardResult,
        submitted: float,
    ) -> ShardTiming:
        timing = ShardTiming(
            day=shard.day,
            group=shard.group,
            records=result.records,
            clusters=len(result.clusters),
            queue_wait=max(0.0, result.started - submitted),
            seconds=result.finished - result.started,
            pid=result.pid,
        )
        obs.external_span(
            "parallel.shard",
            result.started,
            timing.seconds,
            day=timing.day,
            group=timing.group,
            records=timing.records,
            clusters=timing.clusters,
            queue_wait=timing.queue_wait,
            pid=timing.pid,
        )
        return timing

    # ------------------------------------------------------------------
    # Reduce phase
    # ------------------------------------------------------------------
    def _reduce(
        self,
        plan: ShardPlan,
        results: Dict[Tuple[int, int], pworker.ExtractionShardResult],
    ) -> Tuple[int, List[List[int]]]:
        """Install every day in canonical order; returns (clusters, ranges)."""
        forest = self._engine.forest
        cube = self._engine.cube
        by_day: Dict[int, List[pworker.ExtractionShardResult]] = {}
        for shard in plan.shards:  # plan order IS canonical order
            by_day.setdefault(shard.day, []).append(results[shard.key])
        total = 0
        ranges: List[List[int]] = []
        with obs.span("parallel.reduce") as sp:
            for day in plan.days:
                shards = by_day.get(day, [])
                merged = preduce.merge_day_shards(shards, forest.ids)
                forest.add_day(day, merged)
                for shard in shards:
                    preduce.absorb_cube_shard(cube, shard)
                if merged:
                    first = min(c.cluster_id for c in merged)
                    ranges.append([day, first, len(merged)])
                else:
                    ranges.append([day, -1, 0])
                total += len(merged)
            sp.set(days=len(plan.days), clusters=total)
        return total, ranges

    # ------------------------------------------------------------------
    # Optional level materialization (Algorithm 3 in workers)
    # ------------------------------------------------------------------
    def _materialize_levels(
        self,
        data_dir: str,
        config_dict: dict,
        snapshot: pworker.WorkerSnapshot,
    ) -> None:
        forest = self._engine.forest
        calendar = self._engine.calendar
        days = forest.days
        weeks = sorted({calendar.week_of_day(d) for d in days})
        week_tasks = [
            pworker.IntegrationShardTask(
                kind="week",
                key=week,
                clusters=forest.micro_clusters(calendar.week_day_range(week)),
            )
            for week in weeks
        ]
        with obs.span("parallel.materialize.week", shards=len(week_tasks)):
            week_results = self._run_integration(
                week_tasks, data_dir, config_dict, snapshot
            )
            for week in weeks:  # ascending = the serial materialize() order
                preduce.install_integration_shard(forest, week_results[week])
        months = sorted({calendar.month_of_day(d) for d in days})
        month_tasks = []
        for month in months:
            month_weeks = sorted(
                {
                    calendar.week_of_day(day)
                    for day in calendar.month_day_range(month)
                    if day in set(days)
                }
            )
            inputs: List[AtypicalCluster] = []
            for week in month_weeks:
                inputs.extend(forest.week_clusters(week))
            month_tasks.append(
                pworker.IntegrationShardTask(kind="month", key=month, clusters=inputs)
            )
        with obs.span("parallel.materialize.month", shards=len(month_tasks)):
            month_results = self._run_integration(
                month_tasks, data_dir, config_dict, snapshot
            )
            for month in months:
                preduce.install_integration_shard(forest, month_results[month])

    def _run_integration(
        self,
        tasks: List[pworker.IntegrationShardTask],
        data_dir: str,
        config_dict: dict,
        snapshot: pworker.WorkerSnapshot,
    ) -> Dict[int, pworker.IntegrationShardResult]:
        config = self._engine.config
        call_args = (
            config.similarity_threshold,
            config.balance_function,
            config.integration_method,
        )
        results: Dict[int, pworker.IntegrationShardResult] = {}
        if self._workers == 1:
            pworker.configure(data_dir, config_dict, snapshot)
            for task in tasks:
                submitted = time.perf_counter()
                result = pworker.run_integration_shard(task, *call_args)
                results[task.key] = result
                self._record_integration(result, submitted)
            return results
        with ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=pworker.init_worker,
            initargs=(data_dir, config_dict, snapshot),
        ) as pool:
            submitted = time.perf_counter()
            futures = {
                pool.submit(pworker.run_integration_shard, task, *call_args): task
                for task in tasks
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    result = future.result()
                    results[task.key] = result
                    self._record_integration(result, submitted)
        return results

    def _record_integration(
        self,
        result: pworker.IntegrationShardResult,
        submitted: float,
    ) -> None:
        obs.external_span(
            "parallel.integrate",
            result.started,
            result.finished - result.started,
            kind=result.kind,
            key=result.key,
            clusters=len(result.clusters),
            merges=result.merges,
            queue_wait=max(0.0, result.started - submitted),
            pid=result.pid,
        )
