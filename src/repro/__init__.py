"""repro — atypical-cluster analysis of cyber-physical data.

A from-scratch reproduction of Tang et al., "Multidimensional Analysis of
Atypical Events in Cyber-Physical Data" (ICDE 2012): the atypical cluster
model (micro/macro clusters over spatial and temporal severity features),
the atypical forest, significant-cluster retrieval with red-zone guided
clustering, the CubeView-style bottom-up baselines, and a synthetic
PeMS-like traffic trace generator used as the evaluation substrate.

Quick start::

    from repro import AnalysisEngine, SimulationConfig, TrafficSimulator

    sim = TrafficSimulator(SimulationConfig.small())
    engine = AnalysisEngine.from_simulator(sim)
    engine.build_from_simulator(sim, days=range(7))
    result = engine.query(engine.whole_city(), first_day=0, num_days=7)
    for cluster in result.significant():
        print(engine.describe(cluster))
"""

from repro.analysis import AnalysisEngine, EngineConfig, score_strategy
from repro.core import (
    AnalyticalQuery,
    AtypicalCluster,
    AtypicalForest,
    ClusterIntegrator,
    EventExtractor,
    ExtractionParams,
    QueryProcessor,
    RecordBatch,
    SignificanceThreshold,
)
from repro.simulate import SimulationConfig, TrafficSimulator
from repro.spatial import DistrictGrid, QueryRegion, SensorNetwork
from repro.storage import CPSDataset, DatasetCatalog

__version__ = "1.0.0"

__all__ = [
    "AnalysisEngine",
    "EngineConfig",
    "score_strategy",
    "AnalyticalQuery",
    "AtypicalCluster",
    "AtypicalForest",
    "ClusterIntegrator",
    "EventExtractor",
    "ExtractionParams",
    "QueryProcessor",
    "RecordBatch",
    "SignificanceThreshold",
    "SimulationConfig",
    "TrafficSimulator",
    "DistrictGrid",
    "QueryRegion",
    "SensorNetwork",
    "CPSDataset",
    "DatasetCatalog",
    "__version__",
]
