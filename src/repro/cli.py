"""Command-line interface.

The CLI mirrors the system framework of Fig. 2 as a three-step workflow::

    python -m repro generate --out data/           # synthesize a trace
    python -m repro build    --data data/ --model model/
    python -m repro query    --data data/ --model model/ --days 7

plus ``info`` for the dataset inventory, ``bench`` for the vectorized
integration-kernel benchmark, ``stats`` to render a metrics snapshot
written by ``--metrics-out``, ``serve`` to keep a loaded model resident
behind an HTTP query endpoint (``/query``, ``/healthz``, ``/metrics``,
``/traces``, plus ``POST /ingest`` with ``--ingest`` — see
:mod:`repro.serve`), ``ingest`` to tail a spool directory of NDJSON
events into a live forest with crash-safe checkpoints and atomic
snapshots (see :mod:`repro.ingest`), ``top`` for a live terminal
dashboard over a running server's ``/metrics``, ``trace`` to inspect
request traces persisted by ``serve --trace-dir``
(:mod:`repro.obs.tracestore`), and ``prof`` to inspect the continuous
profiler's collapsed-stack windows persisted by ``serve --prof-dir``
(:mod:`repro.obs.contprof`). The trace directory carries the
simulation config, so every later step rebuilds the same sensor network
and district partition from it.

Every subcommand accepts ``--log-level`` (structured key=value logging to
stderr), ``--metrics-out PATH`` (enable the observability layer for the
run and write the registry snapshot as JSON on exit), ``--trace-out PATH``
(write the span tree as Chrome ``trace_event`` JSON, loadable in
Perfetto), and ``--profile {cprofile,tracemalloc}`` (wrap the command in a
profiler; hotspots go to stderr, the artifact beside the working
directory or to ``--profile-out``). ``repro query --explain`` adds the
per-stage cost report of the query engine.

``build``, ``query`` and ``bench`` also accept ``--workers N`` and
``--shard-by {day,day-district}``: with ``N > 1`` the forest is built by a
process pool over day (or day-by-district-group) shards and reduced in
canonical order, producing a model byte-identical to the serial build
(Property 3). ``build --materialize`` eagerly integrates the week/month
levels at build time instead of on first query.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.analysis.evaluation import score_strategy
from repro.analysis.report import build_report
from repro.simulate.generator import SimulationConfig, TrafficSimulator
from repro.storage.catalog import DatasetCatalog
from repro.storage.codec import CodecError
from repro.storage.model_cache import load_engine_cached

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atypical-cluster analysis of cyber-physical data "
        "(Tang et al., ICDE 2012 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level",
        choices=obs.LOG_LEVELS,
        default="warning",
        help="structured-log verbosity on stderr (default: warning)",
    )
    common.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="collect pipeline metrics and write the JSON snapshot here",
    )
    common.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="collect phase spans and write a Chrome trace_event JSON here "
        "(load in Perfetto / chrome://tracing)",
    )
    common.add_argument(
        "--profile",
        dest="profiler",
        choices=obs.PROFILERS,
        default=None,
        help="wrap the command in a profiler and print its hotspot summary "
        "to stderr",
    )
    common.add_argument(
        "--profile-out",
        type=Path,
        default=None,
        help="profiler artifact path (default: repro_<command>.prof / "
        ".heap.txt beside the working directory)",
    )

    generate = commands.add_parser(
        "generate",
        parents=[common],
        help="materialize a synthetic CPS trace to disk",
    )
    generate.add_argument("--out", required=True, type=Path, help="target directory")
    generate.add_argument(
        "--scale",
        choices=("small", "benchmark"),
        default="small",
        help="simulation scale (default: small)",
    )
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--months", type=int, default=None, help="limit to the first N months"
    )

    build = commands.add_parser(
        "build",
        parents=[common],
        help="construct the atypical forest from a stored trace",
    )
    build.add_argument("--data", required=True, type=Path, help="trace directory")
    build.add_argument("--model", required=True, type=Path, help="model output dir")
    build.add_argument(
        "--days", type=int, default=None, help="build only the first N days"
    )
    build.add_argument(
        "--materialize",
        action="store_true",
        help="also materialize every week/month level of the forest "
        "(Algorithm 3 per level shard, in workers when --workers > 1)",
    )
    build.add_argument(
        "--format",
        choices=("pickle", "columnar"),
        default="pickle",
        dest="forest_format",
        help="forest container format: pickle (eager legacy blob) or "
        "columnar (memory-mapped, loaded lazily per day/level; see "
        "repro.storage.columnar) (default: pickle)",
    )
    _add_engine_arguments(build)
    _add_parallel_arguments(build)

    convert = commands.add_parser(
        "convert",
        parents=[common],
        help="convert a saved model's forest between the pickle and "
        "columnar container formats, in place",
    )
    convert.add_argument(
        "model",
        type=Path,
        help="model directory (containing forest.bin) or a forest file",
    )
    convert.add_argument(
        "--to",
        choices=("pickle", "columnar"),
        required=True,
        dest="target_format",
        help="target forest format",
    )

    query = commands.add_parser(
        "query",
        parents=[common],
        help="run an analytical query against a built model",
    )
    query.add_argument("--data", required=True, type=Path, help="trace directory")
    query.add_argument("--model", required=True, type=Path, help="model directory")
    query.add_argument("--first-day", type=int, default=0)
    query.add_argument("--days", type=int, default=7)
    query.add_argument(
        "--strategy", choices=("all", "pru", "gui"), default="gui"
    )
    query.add_argument("--delta-s", type=float, default=None)
    query.add_argument(
        "--final-check",
        action="store_true",
        help="drop returned clusters below the significance bar",
    )
    query.add_argument(
        "--compare",
        action="store_true",
        help="also run the other strategies and score them",
    )
    query.add_argument("--limit", type=int, default=10, help="clusters to print")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage cost report (clusters scanned, red-zone "
        "pruning, integration rounds, cache hit ratio, bytes read)",
    )
    query.add_argument(
        "--explain-out",
        type=Path,
        default=None,
        help="also write the explain report as JSON here (implies --explain)",
    )
    _add_engine_arguments(query)
    _add_parallel_arguments(query)

    info = commands.add_parser(
        "info", parents=[common], help="describe a stored trace"
    )
    info.add_argument("--data", required=True, type=Path)

    bench = commands.add_parser(
        "bench",
        parents=[common],
        help="benchmark the vectorized similarity/integration kernels "
        "against the dict-loop scalar path",
    )
    bench.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the machine-readable report (BENCH_integration.json) here",
    )
    bench.add_argument(
        "--clusters", type=int, default=400, help="workload size (micro-clusters)"
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--repeats", type=int, default=3, help="timing takes the min of N runs"
    )
    bench.add_argument(
        "--threshold", type=float, default=0.5, help="delta_sim threshold"
    )
    bench.add_argument(
        "--balance",
        choices=("max", "min", "avg", "geo", "har"),
        default="avg",
        help="balance function g",
    )
    bench.add_argument(
        "--naive-subset",
        type=int,
        default=150,
        help="workload slice for the quadratic re-scan baseline",
    )
    _add_parallel_arguments(bench)

    serve = commands.add_parser(
        "serve",
        parents=[common],
        help="serve a built model over HTTP: POST /query, GET /healthz, "
        "GET /metrics (Prometheus text)",
    )
    serve.add_argument("--data", required=True, type=Path, help="trace directory")
    serve.add_argument("--model", required=True, type=Path, help="model directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--limit",
        type=int,
        default=10,
        help="default clusters per /query response (overridable per request)",
    )
    serve.add_argument(
        "--span-limit",
        type=int,
        default=10_000,
        help="keep at most N raw spans in memory (aggregates are unaffected; "
        "evictions are counted as spans_dropped)",
    )
    serve.add_argument(
        "--slo",
        type=Path,
        default=None,
        help="YAML/JSON SLO config; enables GET /slo burn-rate alerts",
    )
    serve.add_argument(
        "--tsdb-dir",
        type=Path,
        default=None,
        help="persist telemetry samples here as rotating NDJSON segments "
        "(default: in-memory only)",
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="seconds between telemetry samples (the tsdb base grain)",
    )
    serve.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="persist tail-sampled request traces here as rotating NDJSON "
        "segments (default: in-memory ring only; GET /traces works either "
        "way)",
    )
    serve.add_argument(
        "--trace-threshold",
        type=float,
        default=0.5,
        help="keep every request slower than N seconds (0 keeps all, "
        "negative disables the latency rule; errors are always kept)",
    )
    serve.add_argument(
        "--trace-head-sample",
        type=int,
        default=10,
        help="also keep a deterministic 1-in-N sample of all requests "
        "(0 disables head sampling)",
    )
    serve.add_argument(
        "--ingest",
        action="store_true",
        help="enable POST /ingest: event batches stream into the served "
        "forest, which keeps growing in place (repro.ingest contract)",
    )
    serve.add_argument(
        "--ingest-snapshot-dir",
        type=Path,
        default=None,
        help="publish an atomic model snapshot here whenever an ingested "
        "day closes (versioned model-NNNNNN dirs behind a `current` "
        "symlink; requires --ingest)",
    )
    serve.add_argument(
        "--ingest-max-batch",
        type=int,
        default=50_000,
        help="admission control: largest accepted event batch (rows)",
    )
    serve.add_argument(
        "--ingest-max-waiters",
        type=int,
        default=8,
        help="admission control: batches queued behind the ingest lock "
        "before shedding with HTTP 429",
    )
    serve.add_argument(
        "--prof",
        action="store_true",
        help="enable the continuous wall-clock profiler: GET /profile "
        "serves the current collapsed-stack window, SLO alerts pin "
        "profile exemplars (repro.obs.contprof)",
    )
    serve.add_argument(
        "--prof-dir",
        type=Path,
        default=None,
        help="persist finished profile windows here as rotating NDJSON "
        "segments readable by `repro prof` (default: in-memory only; "
        "requires --prof)",
    )
    serve.add_argument(
        "--prof-hz",
        type=float,
        default=67.0,
        help="profiler sampling rate in Hz (default: 67, co-prime with "
        "common loop periods)",
    )
    # access logs are the point of a server; default them on
    serve.set_defaults(log_level="info")
    _add_engine_arguments(serve)

    ingest = commands.add_parser(
        "ingest",
        parents=[common],
        help="tail a spool directory of NDJSON event files into a live "
        "forest, with crash-safe checkpoints and atomic snapshots",
    )
    ingest.add_argument(
        "--data", required=True, type=Path,
        help="trace directory (supplies the sensor network and calendar)",
    )
    ingest.add_argument(
        "--spool", required=True, type=Path,
        help="spool directory to tail (*.ndjson, rename-into-place)",
    )
    ingest.add_argument(
        "--model",
        type=Path,
        default=None,
        help="existing model to resume, e.g. <snapshot-dir>/current "
        "(default: start from an empty forest)",
    )
    ingest.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        help="publish atomic snapshots here (model-NNNNNN dirs behind a "
        "`current` symlink); nothing is durable when omitted",
    )
    ingest.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="checkpoint file naming the fully-snapshotted spool files "
        "(default: <snapshot-dir>/checkpoint.json)",
    )
    ingest.add_argument(
        "--snapshot-every",
        type=int,
        default=1,
        help="snapshot after every N closed days (default: 1)",
    )
    ingest.add_argument(
        "--first-day",
        type=int,
        default=0,
        help="calendar day the stream starts at when starting fresh",
    )
    ingest.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between spool scans when idle",
    )
    ingest.add_argument(
        "--once",
        action="store_true",
        help="drain the files currently spooled, then exit",
    )
    ingest.add_argument(
        "--flush",
        action="store_true",
        help="close the open day before the final snapshot, making every "
        "spooled event queryable when the command returns",
    )
    ingest.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop tailing after N seconds (smoke-test bound)",
    )
    ingest.add_argument(
        "--no-rollup",
        action="store_true",
        help="skip the live week/month roll-ups (day level only; queries "
        "materialize upper levels lazily)",
    )
    ingest.add_argument(
        "--snapshot-format",
        choices=("pickle", "columnar"),
        default="columnar",
        help="forest container format for snapshots (default: columnar)",
    )
    # a tailer is a daemon like serve; progress lines default on
    ingest.set_defaults(log_level="info")
    _add_engine_arguments(ingest)

    top = commands.add_parser(
        "top",
        parents=[common],
        help="live terminal dashboard over a repro serve /metrics endpoint",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8321/metrics",
        help="metrics endpoint to poll (default: the repro serve default)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between scrapes"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (for logs/tests)",
    )

    loadgen = commands.add_parser(
        "loadgen",
        parents=[common],
        help="drive POST /query load (closed or open loop) against a "
        "running repro serve and report latency percentiles",
    )
    loadgen.add_argument(
        "url",
        nargs="?",
        default="http://127.0.0.1:8321",
        help="server base URL (default: the repro serve default)",
    )
    loadgen.add_argument(
        "--mode",
        choices=("closed", "open", "ingest"),
        default="closed",
        help="closed: N workers back-to-back (capacity probe); open: fixed "
        "arrival rate, latency from scheduled arrival (the rps gate); "
        "ingest: sequential POST /ingest event batches from a stored "
        "trace (needs --data and a server started with --ingest)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open mode: target arrivals per second",
    )
    loadgen.add_argument(
        "--duration", type=float, default=10.0, help="run length in seconds"
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, help="worker threads"
    )
    loadgen.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout"
    )
    loadgen.add_argument(
        "--limit",
        type=int,
        default=None,
        help="clusters per /query response (smaller = cheaper responses)",
    )
    loadgen.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_load.json"),
        help="where to write the JSON report",
    )
    loadgen.add_argument(
        "--data",
        type=Path,
        default=None,
        help="ingest mode: trace directory supplying the event stream",
    )
    loadgen.add_argument(
        "--days",
        type=int,
        default=1,
        help="ingest mode: stream the first N days of the trace",
    )
    loadgen.add_argument(
        "--first-day",
        type=int,
        default=0,
        help="ingest mode: first trace day to stream",
    )
    loadgen.add_argument(
        "--batch-windows",
        type=int,
        default=12,
        help="ingest mode: time windows per POST /ingest batch",
    )
    loadgen.add_argument(
        "--no-flush",
        action="store_true",
        help="ingest mode: leave the final day open instead of closing it "
        "with ?flush=1",
    )

    slo = commands.add_parser(
        "slo",
        parents=[common],
        help="evaluate declared SLOs; `repro slo check` exits 1 on PAGE",
    )
    slo_commands = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_commands.add_parser(
        "check",
        help="check a server URL, a --metrics-out snapshot, or a tsdb "
        "segment directory against SLOs",
    )
    slo_check.add_argument(
        "target",
        help="server base URL (reads its /slo), metrics snapshot JSON, or "
        "tsdb segment directory",
    )
    slo_check.add_argument(
        "--config",
        type=Path,
        default=None,
        help="SLO config (required for snapshot / tsdb-directory targets)",
    )
    slo_check.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the summary lines",
    )

    trace = commands.add_parser(
        "trace",
        parents=[common],
        help="inspect traces persisted by repro serve --trace-dir",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_dir_help = "trace segment directory (repro serve --trace-dir)"
    trace_ls = trace_commands.add_parser(
        "ls", help="list captured traces, slowest or newest first"
    )
    trace_ls.add_argument("--trace-dir", type=Path, required=True, help=trace_dir_help)
    trace_ls.add_argument(
        "--limit", type=int, default=20, help="traces to list (default: 20)"
    )
    trace_ls.add_argument(
        "--sort",
        choices=("duration", "recent"),
        default="duration",
        help="ordering (default: duration)",
    )
    trace_show = trace_commands.add_parser(
        "show",
        help="render one trace's span tree with self-time and critical path",
    )
    trace_show.add_argument("request_id", help="request id of the trace")
    trace_show.add_argument(
        "--trace-dir", type=Path, required=True, help=trace_dir_help
    )
    trace_profile = trace_commands.add_parser(
        "profile",
        help="aggregate self-time across all captured traces, flamegraph-style",
    )
    trace_profile.add_argument(
        "--trace-dir", type=Path, required=True, help=trace_dir_help
    )
    trace_profile.add_argument(
        "--limit", type=int, default=None, help="rows to print (default: all)"
    )
    trace_export = trace_commands.add_parser(
        "export",
        help="export one trace as Chrome trace_event JSON (Perfetto-loadable)",
    )
    trace_export.add_argument("request_id", help="request id of the trace")
    trace_export.add_argument(
        "--trace-dir", type=Path, required=True, help=trace_dir_help
    )
    trace_export.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: trace_<request_id>.json)",
    )

    prof = commands.add_parser(
        "prof",
        parents=[common],
        help="inspect continuous-profiler windows persisted by "
        "repro serve --prof-dir",
    )
    prof_commands = prof.add_subparsers(dest="prof_command", required=True)
    prof_dir_help = "profile segment directory (repro serve --prof-dir)"
    prof_ls = prof_commands.add_parser(
        "ls", help="list persisted profile windows, newest last"
    )
    prof_ls.add_argument("--prof-dir", type=Path, required=True, help=prof_dir_help)
    prof_ls.add_argument(
        "--limit", type=int, default=20, help="windows to list (default: 20)"
    )
    prof_show = prof_commands.add_parser(
        "show",
        help="render one window (or all windows merged) as hottest frames "
        "plus collapsed flamegraph stacks",
    )
    prof_show.add_argument(
        "window_id",
        nargs="?",
        default=None,
        help="window id (e.g. from an SLO alert's exemplar_profile_id; "
        "default: every persisted window merged)",
    )
    prof_show.add_argument(
        "--prof-dir", type=Path, required=True, help=prof_dir_help
    )
    prof_show.add_argument(
        "--top", type=int, default=10, help="hottest frames to list"
    )
    prof_diff = prof_commands.add_parser(
        "diff",
        help="per-frame self-share delta between two windows "
        "(what got hotter between before and after)",
    )
    prof_diff.add_argument("before", help="window id of the baseline")
    prof_diff.add_argument("after", help="window id to compare against it")
    prof_diff.add_argument(
        "--prof-dir", type=Path, required=True, help=prof_dir_help
    )
    prof_diff.add_argument(
        "--limit", type=int, default=15, help="frame rows to print"
    )
    prof_export = prof_commands.add_parser(
        "export",
        help="export one window (or all merged) as collapsed stacks "
        "(flamegraph.pl) or speedscope JSON",
    )
    prof_export.add_argument(
        "window_id",
        nargs="?",
        default=None,
        help="window id (default: every persisted window merged)",
    )
    prof_export.add_argument(
        "--prof-dir", type=Path, required=True, help=prof_dir_help
    )
    prof_export.add_argument(
        "--format",
        choices=("collapsed", "speedscope"),
        default="collapsed",
        dest="export_format",
        help="output format (default: collapsed)",
    )
    prof_export.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: stdout)",
    )

    stats = commands.add_parser(
        "stats",
        parents=[common],
        help="render a metrics snapshot written by --metrics-out",
    )
    stats.add_argument("path", type=Path, help="snapshot JSON file")
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of a summary",
    )
    # for `stats`, --trace-out converts the *loaded* snapshot to a Chrome
    # trace instead of recording a new one

    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--distance", type=float, default=1.5, help="delta_d (miles)")
    parser.add_argument("--time-gap", type=float, default=15.0, help="delta_t (min)")
    parser.add_argument(
        "--similarity", type=float, default=0.5, help="delta_sim threshold"
    )
    parser.add_argument(
        "--balance",
        choices=("max", "min", "avg", "geo", "har"),
        default="avg",
        help="balance function g",
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--shard-by`` (see the repro.parallel subsystem).

    ``build`` and ``bench`` execute shards in a process pool; ``query``
    accepts the flags for command-line symmetry but answers online queries
    serially (the online path is latency-, not throughput-bound), so they
    only affect which model-build hints are echoed back.
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded forest construction "
        "(default: 1 = in-process; output is byte-identical at any count)",
    )
    parser.add_argument(
        "--shard-by",
        choices=("day", "day-district"),
        default="day",
        help="shard axis: whole days, or days split by district "
        "connectivity group (default: day)",
    )


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        distance_miles=args.distance,
        time_gap_minutes=args.time_gap,
        similarity_threshold=args.similarity,
        balance_function=args.balance,
        delta_s=getattr(args, "delta_s", None) or 0.05,
    )


def _simulator_for(data_dir: Path) -> TrafficSimulator:
    return TrafficSimulator.from_catalog_dir(data_dir)


def _query_io_totals(
    catalog: Optional[DatasetCatalog],
    model_dir: Path,
    forest: Optional[object] = None,
) -> dict:
    """Storage accounting for the explain report: catalog byte counters
    (zero when the query answered entirely from the in-memory model) plus
    the size of the model files the engine loaded. For a columnar forest
    the memory-map accounting (bytes mapped vs actually faulted, column
    groups touched) rides along under ``forest_io``."""
    totals: dict = {"model_bytes": 0}
    for name in ("forest.bin", "cube.bin", "engine.json"):
        path = model_dir / name
        if path.exists():
            totals["model_bytes"] += path.stat().st_size
    if catalog is not None:
        totals.update(catalog.io_totals())
    io_stats = getattr(forest, "io_stats", None)
    if callable(io_stats):
        totals["forest_io"] = io_stats()
    return totals


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    base = (
        SimulationConfig.small(seed=args.seed)
        if args.scale == "small"
        else SimulationConfig.benchmark(seed=args.seed)
    )
    if args.months is not None:
        if not 1 <= args.months <= len(base.month_lengths):
            print(
                f"error: --months must be in 1..{len(base.month_lengths)}",
                file=sys.stderr,
            )
            return 2
        base = SimulationConfig.from_dict(
            {**base.to_dict(), "month_lengths": tuple(base.month_lengths[: args.months])}
        )
    simulator = TrafficSimulator(base)
    catalog = simulator.materialize_catalog(args.out)
    print(
        f"generated {len(catalog)} monthly datasets "
        f"({catalog.total_readings():,} readings, "
        f"{catalog.total_size_bytes() / 1e6:.0f} MB) under {args.out}"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    simulator = _simulator_for(args.data)
    catalog = DatasetCatalog(args.data)
    engine = AnalysisEngine.from_simulator(simulator, _engine_config(args))
    days = range(args.days) if args.days is not None else None
    # every build goes through the sharded builder — workers=1 runs the
    # same shard/reduce path in process, so the saved model is
    # byte-identical at any worker count
    report = engine.build_from_catalog_parallel(
        catalog,
        days,
        workers=args.workers,
        shard_by=args.shard_by,
        materialize=args.materialize,
    )
    engine.save(args.model, forest_format=args.forest_format)
    stats = engine.forest.stats()
    detail = f"{stats.num_micro} micro-clusters"
    if args.materialize:
        detail += (
            f", {stats.num_week_macro} week + "
            f"{stats.num_month_macro} month macro-clusters"
        )
    print(
        f"built {report.days_built} days "
        f"({report.shards} {report.shard_by} shards, "
        f"{report.workers} worker(s)): {detail}, "
        f"model saved to {args.model} ({args.forest_format} forest)"
    )
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.storage.columnar import sniff_format
    from repro.storage.forest_io import load_forest, save_forest

    forest_path = args.model / "forest.bin" if args.model.is_dir() else args.model
    if not forest_path.exists():
        print(f"error: no forest file at {forest_path}", file=sys.stderr)
        return 2
    current = sniff_format(forest_path)
    current_name = "pickle" if current == "legacy" else current
    if current_name == args.target_format:
        print(f"{forest_path}: already {args.target_format}; nothing to do")
        return 0
    before = forest_path.stat().st_size
    forest = load_forest(forest_path)
    # write-then-rename so an interrupted convert never leaves a torn model
    tmp_path = forest_path.with_name(forest_path.name + f".tmp{os.getpid()}")
    try:
        save_forest(forest, tmp_path, format=args.target_format)
        os.replace(tmp_path, forest_path)
    finally:
        tmp_path.unlink(missing_ok=True)
    after = forest_path.stat().st_size
    print(
        f"converted {forest_path}: {current_name} -> {args.target_format} "
        f"({before:,} -> {after:,} bytes)"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    explain = args.explain or args.explain_out is not None
    simulator = _simulator_for(args.data)
    config = _engine_config(args)
    catalog = DatasetCatalog(args.data) if explain else None
    if catalog is not None:
        catalog.reset_io()
    # the process-wide model cache makes repeat queries (and every server
    # request) skip the deserialization; a one-shot CLI run is simply the
    # cold-miss case
    cached = load_engine_cached(
        args.model, simulator.network, simulator.districts(), config
    )
    engine = cached.engine
    result = engine.query(
        engine.whole_city(),
        args.first_day,
        args.days,
        strategy=args.strategy,
        final_check=args.final_check,
        delta_s=args.delta_s,
        explain=explain,
    )
    print(
        f"Q(city, days {args.first_day}..{args.first_day + args.days - 1}) "
        f"via {args.strategy}: {result.stats.input_clusters} inputs, "
        f"{len(result.returned)} clusters, "
        f"{result.stats.elapsed_seconds:.2f}s"
    )
    if explain and result.explain is not None:
        result.explain.io = _query_io_totals(catalog, args.model, engine.forest)
        print()
        print(result.explain.render())
        if args.explain_out is not None:
            args.explain_out.parent.mkdir(parents=True, exist_ok=True)
            args.explain_out.write_text(
                json.dumps(result.explain.to_dict(), indent=2) + "\n"
            )
    report = build_report(
        result, engine.network, simulator.window_spec, limit=args.limit
    )
    print(report.to_text())

    if args.compare:
        results = {args.strategy: result}
        for strategy in ("all", "pru", "gui"):
            if strategy not in results:
                results[strategy] = engine.query(
                    engine.whole_city(),
                    args.first_day,
                    args.days,
                    strategy=strategy,
                    delta_s=args.delta_s,
                )
        print("\nstrategy   time(s)  inputs  precision  recall")
        for strategy in ("all", "pru", "gui"):
            r = results[strategy]
            score = score_strategy(r, results["all"])
            print(
                f"{strategy:>8}  {r.stats.elapsed_seconds:7.2f}  "
                f"{r.stats.input_clusters:6d}  {score.precision:9.2f}  "
                f"{score.recall:6.2f}"
            )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import format_report, run_integration_benchmark

    if args.clusters < 2:
        print("error: --clusters must be at least 2", file=sys.stderr)
        return 2
    if args.repeats < 1:
        print("error: --repeats must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    report = run_integration_benchmark(
        num_clusters=args.clusters,
        seed=args.seed,
        repeats=args.repeats,
        threshold=args.threshold,
        balance=args.balance,
        naive_subset=args.naive_subset,
        out_path=args.out,
        workers=args.workers,
        shard_by=args.shard_by,
    )
    print(format_report(report))
    if args.out is not None:
        print(f"\nreport written to {args.out}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    catalog = DatasetCatalog(args.data)
    simulator = _simulator_for(args.data)
    print(f"trace: {args.data}")
    print(f"sensors: {len(simulator.network)}")
    print(f"{'dataset':>8}  {'days':>5}  {'readings':>10}  {'atypical':>8}")
    for dataset in catalog:
        atypical = sum(len(dataset.atypical_day(d)) for d in dataset.days)
        readings = dataset.total_readings()
        print(
            f"{dataset.meta.name:>8}  {dataset.meta.num_days:>5}  "
            f"{readings:>10,}  {atypical / readings:>8.2%}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.contprof import ContinuousProfiler
    from repro.obs.slo import SLOEngine, SLOError, load_slo_config
    from repro.obs.tracestore import TailSampler, TraceStore
    from repro.obs.tsdb import Sampler, TimeSeriesStore
    from repro.serve import QueryServer, ServeApp, install_signal_handlers

    if not 0 <= args.port <= 65535:
        print("error: --port must be in 0..65535", file=sys.stderr)
        return 2
    if args.sample_interval <= 0:
        print("error: --sample-interval must be positive", file=sys.stderr)
        return 2
    if args.trace_head_sample < 0:
        print("error: --trace-head-sample must be >= 0", file=sys.stderr)
        return 2
    if args.ingest_snapshot_dir is not None and not args.ingest:
        print("error: --ingest-snapshot-dir requires --ingest", file=sys.stderr)
        return 2
    if args.ingest_max_batch < 1:
        print("error: --ingest-max-batch must be at least 1", file=sys.stderr)
        return 2
    if args.ingest_max_waiters < 0:
        print("error: --ingest-max-waiters must be >= 0", file=sys.stderr)
        return 2
    if args.prof_dir is not None and not args.prof:
        print("error: --prof-dir requires --prof", file=sys.stderr)
        return 2
    if args.prof_hz <= 0:
        print("error: --prof-hz must be positive", file=sys.stderr)
        return 2
    slo_config = None
    if args.slo is not None:
        try:
            slo_config = load_slo_config(args.slo)
        except SLOError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    simulator = _simulator_for(args.data)
    config = _engine_config(args)
    try:
        cached = load_engine_cached(
            args.model, simulator.network, simulator.districts(), config
        )
    except FileNotFoundError as exc:
        print(f"error: not a model directory: {exc}", file=sys.stderr)
        return 2
    store = TimeSeriesStore(segment_dir=args.tsdb_dir)
    sampler = Sampler(store, interval=args.sample_interval)
    # tracing is always on: every request's spans are inspected, the tail
    # sampler decides what the store keeps (errors, slow, 1-in-N head)
    trace_store = TraceStore(segment_dir=args.trace_dir)
    tail_sampler = TailSampler(
        latency_threshold=args.trace_threshold,
        head_rate=args.trace_head_sample,
    )
    profiler = (
        ContinuousProfiler(hz=args.prof_hz, segment_dir=args.prof_dir)
        if args.prof
        else None
    )
    slo_engine = (
        SLOEngine(slo_config, store, trace_store=trace_store, profiler=profiler)
        if slo_config is not None
        else None
    )
    ingest_engine = None
    if args.ingest:
        from repro.ingest import IngestEngine

        # shares the model cache's query lock, so day installation and
        # roll-ups serialize against in-flight /query requests
        ingest_engine = IngestEngine(
            cached.engine,
            query_lock=cached.query_lock,
            max_batch_rows=args.ingest_max_batch,
            max_waiters=args.ingest_max_waiters,
        )
    app = ServeApp(
        cached.engine,
        digest=cached.digest,
        model_dir=cached.model_dir,
        query_lock=cached.query_lock,
        default_limit=args.limit,
        slo_engine=slo_engine,
        trace_store=trace_store,
        tail_sampler=tail_sampler,
        ingest_engine=ingest_engine,
        ingest_snapshot_dir=args.ingest_snapshot_dir,
        profiler=profiler,
        tsdb_sampler=sampler,
    )
    server = QueryServer(app, host=args.host, port=args.port)
    install_signal_handlers(server)
    print(
        f"serving {cached.model_dir} on {server.url()} "
        f"(digest {cached.digest[:12]}, {len(cached.engine.built_days)} days "
        f"built; SIGTERM/Ctrl-C drains and exits)"
    )
    if slo_config is not None:
        print(
            f"slo: {len(slo_config.slos)} objective(s) from {args.slo} "
            f"on GET /slo"
        )
    if args.tsdb_dir is not None:
        print(f"tsdb: sampling every {args.sample_interval}s into {args.tsdb_dir}")
    sink = args.trace_dir if args.trace_dir is not None else "memory ring"
    print(
        f"tracing: tail-sampled (errors, >{args.trace_threshold}s, "
        f"1-in-{args.trace_head_sample} head) into {sink}; GET /traces"
    )
    if ingest_engine is not None:
        snapshots = (
            f"snapshots to {args.ingest_snapshot_dir} on day close"
            if args.ingest_snapshot_dir is not None
            else "no snapshots (--ingest-snapshot-dir to persist)"
        )
        print(
            f"ingest: POST /ingest live (open day {ingest_engine.open_day}, "
            f"batches <= {args.ingest_max_batch} rows; {snapshots})"
        )
    if profiler is not None:
        prof_sink = args.prof_dir if args.prof_dir is not None else "memory ring"
        print(
            f"profiling: continuous wall-clock sampler at {args.prof_hz:g} Hz, "
            f"{profiler.window_seconds:g}s windows into {prof_sink}; "
            "GET /profile"
        )
    sys.stdout.flush()
    sampler.start()
    if profiler is not None:
        profiler.start()
    # blocks until a signal triggers server.stop(); in-flight requests
    # finish before serve_forever returns (block_on_close)
    try:
        server.serve_forever()
    finally:
        # final flush sample puts the shutdown edge on disk
        sampler.stop()
        if profiler is not None:
            profiler.stop()
        trace_store.sync()
    print("drained, bye")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import (
        LoadGenError,
        format_ingest_report,
        format_report,
        run_ingest_load,
        run_load,
        write_report,
    )

    if args.mode == "ingest":
        if args.data is None:
            print("error: ingest mode needs --data <trace dir>", file=sys.stderr)
            return 2
        try:
            ingest_report = run_ingest_load(
                args.url,
                args.data,
                days=args.days,
                first_day=args.first_day,
                windows_per_batch=args.batch_windows,
                timeout=args.timeout,
                flush=not args.no_flush,
            )
        except LoadGenError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            write_report(ingest_report, args.out)
        except OSError as exc:
            print(
                f"error: cannot write report to {args.out}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(format_ingest_report(ingest_report))
        print(f"report written to {args.out}")
        return 0

    try:
        report = run_load(
            args.url,
            mode=args.mode,
            duration=args.duration,
            concurrency=args.concurrency,
            rate=args.rate,
            timeout=args.timeout,
            limit=args.limit,
        )
    except LoadGenError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        write_report(report, args.out)
    except OSError as exc:
        print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    print(f"report written to {args.out}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    import signal

    from repro.ingest import IngestEngine, SpoolTailer

    if args.snapshot_every < 1:
        print("error: --snapshot-every must be at least 1", file=sys.stderr)
        return 2
    if args.poll <= 0:
        print("error: --poll must be positive", file=sys.stderr)
        return 2
    checkpoint = args.checkpoint
    if checkpoint is None and args.snapshot_dir is not None:
        checkpoint = args.snapshot_dir / "checkpoint.json"
    simulator = _simulator_for(args.data)
    config = _engine_config(args)
    if args.model is not None:
        try:
            engine = AnalysisEngine.load(
                args.model, simulator.network, simulator.districts(), config=config
            )
        except FileNotFoundError as exc:
            print(f"error: not a model directory: {exc}", file=sys.stderr)
            return 2
    else:
        engine = AnalysisEngine.from_simulator(simulator, config)
    ingest = IngestEngine(
        engine,
        start_day=args.first_day,
        rollup=not args.no_rollup,
        snapshot_format=args.snapshot_format,
    )
    tailer = SpoolTailer(
        args.spool,
        ingest,
        checkpoint_path=checkpoint,
        snapshot_dir=args.snapshot_dir,
        snapshot_every_days=args.snapshot_every,
        poll_seconds=args.poll,
    )
    # SIGTERM/Ctrl-C request a graceful drain: finish the file in hand,
    # publish the final snapshot/checkpoint pair, then return
    stop = {"requested": False}

    def _request_stop(signum, frame):
        stop["requested"] = True

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    resumed = f" (resumed {args.model})" if args.model is not None else ""
    print(
        f"tailing {args.spool} from day {ingest.open_day}{resumed}; "
        "SIGTERM/Ctrl-C drains and exits"
    )
    sys.stdout.flush()
    files, days_closed = tailer.run(
        once=args.once,
        flush_at_exit=args.flush,
        stop_check=lambda: stop["requested"],
        max_seconds=args.max_seconds,
    )
    stats = ingest.stats()
    print(
        f"ingested {files} file(s), closed {days_closed} day(s): "
        f"accepted={stats['accepted']} rejected={stats['rejected']}, "
        f"open day {stats['open_day']}"
    )
    if args.snapshot_dir is not None:
        print(
            f"snapshot: {args.snapshot_dir / 'current'} "
            f"(checkpoint {checkpoint})"
        )
    return 0


def _slo_report_doc(args: argparse.Namespace) -> dict:
    """Resolve `repro slo check`'s target into an SLO report document.

    Three target shapes: a server base URL (its live ``/slo`` document),
    a ``--metrics-out`` snapshot file (lifetime-mode evaluation), or a
    tsdb segment directory (windowed replay of persisted telemetry). The
    latter two need ``--config``. Every failure raises ``SLOError``.
    """
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obs.slo import SLOEngine, SLOError, evaluate_snapshot, load_slo_config
    from repro.obs.tsdb import load_segments

    target = str(args.target)
    if target.startswith(("http://", "https://")):
        if args.config is not None:
            raise SLOError(
                "--config only applies to snapshot/tsdb targets; a server "
                "URL serves its own /slo document"
            )
        url = target.rstrip("/") + "/slo"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                return _json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                raise SLOError(
                    f"{target} has no SLO config loaded "
                    "(start serve with --slo)"
                )
            raise SLOError(f"{url} returned HTTP {exc.code}")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            reason = getattr(exc, "reason", exc)
            raise SLOError(f"cannot reach server at {target}: {reason}")
    if args.config is None:
        raise SLOError("snapshot/tsdb targets need --config <slo.yaml>")
    config = load_slo_config(args.config)
    path = Path(target)
    if path.is_dir():
        try:
            store = load_segments(path)
        except (FileNotFoundError, ValueError) as exc:
            raise SLOError(str(exc))
        # evaluate at the last persisted sample, not wall-clock now: the
        # windows should cover the recorded history, not the gap since
        latest = max(
            (
                point[0]
                for name in store.series_names()
                for point in [store.series(name).latest()]
                if point is not None
            ),
            default=None,
        )
        if latest is None:
            raise SLOError(f"{path} holds no samples")
        return SLOEngine(config, store).evaluate(now=latest).to_dict()
    try:
        snapshot = obs.load_snapshot(path)
    except FileNotFoundError:
        raise SLOError(f"no such snapshot: {path}")
    except OSError as exc:
        raise SLOError(f"cannot read snapshot {path}: {exc}")
    except ValueError as exc:
        raise SLOError(f"{path}: {exc}")
    return evaluate_snapshot(config, snapshot).to_dict()


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import SLOError, check_doc

    try:
        doc = _slo_report_doc(args)
        code, lines = check_doc(doc)
    except SLOError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print("\n".join(lines))
    return code


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracestore import (
        format_profile,
        format_trace,
        load_trace_segments,
        merge_profile,
        trace_to_chrome,
    )

    try:
        store = load_trace_segments(args.trace_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_command == "ls":
        if args.limit < 1:
            print("error: --limit must be at least 1", file=sys.stderr)
            return 2
        records = (
            store.slowest(args.limit)
            if args.sort == "duration"
            else store.recent(args.limit)
        )
        if not records:
            print(f"no traces in {args.trace_dir}")
            return 0
        print(f"{'seconds':>10}  {'status':>6}  {'endpoint':<10}  request_id")
        for record in records:
            reasons = ",".join(record.reasons) or "-"
            print(
                f"{record.seconds:>10.4f}  {record.status:>6}  "
                f"{record.endpoint:<10}  {record.request_id}  [{reasons}]"
            )
        return 0
    if args.trace_command == "profile":
        profile = merge_profile(store.recent(len(store)))
        if not profile:
            print(f"no traces in {args.trace_dir}")
            return 0
        print(format_profile(profile, limit=args.limit))
        return 0
    # show / export both resolve one id
    record = store.get(args.request_id)
    if record is None:
        print(
            f"error: no trace {args.request_id!r} in {args.trace_dir} "
            "(try `repro trace ls`)",
            file=sys.stderr,
        )
        return 2
    if args.trace_command == "show":
        print(format_trace(record))
        return 0
    out = args.out if args.out is not None else Path(f"trace_{record.request_id}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace_to_chrome(record), indent=2) + "\n")
    print(f"chrome trace written to {out} (load in Perfetto / chrome://tracing)")
    return 0


def cmd_prof(args: argparse.Namespace) -> int:
    from repro.obs.contprof import (
        collapse_text,
        diff_frames,
        format_frame_delta,
        load_prof_segments,
        merge_windows,
        speedscope_doc,
    )

    try:
        windows = load_prof_segments(args.prof_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def resolve(window_id):
        """One window by id, or every persisted window merged."""
        if window_id is None:
            return merge_windows(windows, window_id="merged")
        for window in windows:
            if window.id == window_id:
                return window
        print(
            f"error: no profile window {window_id!r} in {args.prof_dir} "
            "(try `repro prof ls`)",
            file=sys.stderr,
        )
        return None

    if args.prof_command == "ls":
        if args.limit < 1:
            print("error: --limit must be at least 1", file=sys.stderr)
            return 2
        print(
            f"{'start':>12}  {'seconds':>7}  {'samples':>7}  "
            f"{'threads':>7}  {'stacks':>6}  window_id"
        )
        for window in windows[-args.limit:]:
            pinned = "  [pinned]" if window.pinned else ""
            print(
                f"{window.start:>12.1f}  {window.end - window.start:>7.1f}  "
                f"{window.samples:>7}  {len(window.threads):>7}  "
                f"{len(window.stacks):>6}  {window.id}{pinned}"
            )
        return 0
    if args.prof_command == "diff":
        before = resolve(args.before)
        after = resolve(args.after)
        if before is None or after is None:
            return 2
        print(f"profile diff {before.id} -> {after.id}")
        print(format_frame_delta(diff_frames(before, after), limit=args.limit))
        return 0
    window = resolve(args.window_id)
    if window is None:
        return 2
    if args.prof_command == "show":
        if args.top < 1:
            print("error: --top must be at least 1", file=sys.stderr)
            return 2
        pinned = " [pinned]" if window.pinned else ""
        print(
            f"profile window {window.id}{pinned}: {window.samples} samples, "
            f"{window.total()} thread samples "
            f"({window.running()} running), {len(window.stacks)} stacks"
        )
        print("\nhottest frames (self samples):")
        for row in window.top_frames(args.top):
            print(
                f"  {row['total']:>7}  ({row['running']} run / "
                f"{row['waiting']} wait)  {row['frame']}"
            )
        print("\ncollapsed stacks (flamegraph.pl):")
        print(collapse_text(window), end="")
        return 0
    # export
    if args.export_format == "speedscope":
        rendered = json.dumps(speedscope_doc(window), indent=2) + "\n"
    else:
        rendered = collapse_text(window)
    if args.out is None:
        print(rendered, end="")
        return 0
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(rendered)
    print(f"{args.export_format} profile written to {args.out}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.serve import run_top

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    if args.iterations is not None and args.iterations < 1:
        print("error: --iterations must be at least 1", file=sys.stderr)
        return 2
    return run_top(
        args.url,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def cmd_stats(args: argparse.Namespace) -> int:
    try:
        snapshot = obs.load_snapshot(args.path)
    except FileNotFoundError:
        print(f"error: no such snapshot: {args.path}", file=sys.stderr)
        return 2
    except OSError as exc:
        # unreadable path (directory, permissions, ...) — one line, no trace
        print(f"error: cannot read snapshot {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # corrupt JSON (json.JSONDecodeError) or a non-snapshot document
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.trace_out is not None:
        obs.write_chrome_trace(snapshot, args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.prometheus:
        print(obs.to_prometheus_text(snapshot), end="")
    else:
        print(obs.render_snapshot(snapshot))
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "build": cmd_build,
    "convert": cmd_convert,
    "query": cmd_query,
    "info": cmd_info,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "ingest": cmd_ingest,
    "top": cmd_top,
    "stats": cmd_stats,
    "loadgen": cmd_loadgen,
    "slo": cmd_slo,
    "trace": cmd_trace,
    "prof": cmd_prof,
}


_PROFILE_SUFFIX = {"cprofile": ".prof", "tracemalloc": ".heap.txt"}


def _invoke(command, args: argparse.Namespace) -> int:
    """Run ``command``, optionally wrapped in the requested profiler."""
    profiler: Optional[str] = getattr(args, "profiler", None)
    if profiler is None:
        return command(args)
    out = getattr(args, "profile_out", None)
    if out is None:
        out = Path(f"repro_{args.command}{_PROFILE_SUFFIX[profiler]}")
    with obs.profile_phase(profiler, out_path=out) as report:
        code = command(args)
    print(report.render(), file=sys.stderr)
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except CodecError as exc:
        # every storage-format failure (bad magic, checksum mismatch,
        # version from the future, truncation) surfaces as one actionable
        # line and exit code 2 — never a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. `repro stats m.json | head`): the
        # truncation is the reader's choice, not an error — but Python
        # would otherwise print a traceback while flushing at shutdown
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure_logging(getattr(args, "log_level", "warning"))
    command = _COMMANDS[args.command]
    metrics_out: Optional[Path] = getattr(args, "metrics_out", None)
    trace_out: Optional[Path] = getattr(args, "trace_out", None)
    # `stats` reads snapshots instead of recording them — its --trace-out
    # converts the loaded snapshot inside cmd_stats; `serve` and `ingest`
    # always record (request/stream telemetry is the point of a daemon),
    # others only on request
    always_records = args.command in ("serve", "ingest")
    if args.command == "stats" or (
        not always_records and metrics_out is None and trace_out is None
    ):
        return _invoke(command, args)
    registry = obs.MetricsRegistry(span_limit=getattr(args, "span_limit", None))
    with obs.activate(registry):
        code = _invoke(command, args)
    if metrics_out is not None:
        obs.write_snapshot(registry, metrics_out)
    if trace_out is not None:
        obs.write_chrome_trace(registry, trace_out)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
