"""Precision / recall evaluation of query strategies (Sec. V-B).

The paper defines the metrics against the integrate-all baseline:

* *ground truth* — the significant clusters found by ``All`` (which prunes
  nothing, so its results contain every significant cluster);
* *precision* — "the proportion of significant clusters in the returned
  query results";
* *recall* — "the proportion of retrieved significant clusters over the
  ground truth".

Matching clusters across strategies needs a correspondence: two clusters
describe the same ground-truth event set when their micro-cluster leaf
sets overlap. A ground-truth cluster counts as *retrieved* when the
strategy returned a **significant** cluster sharing leaves with it — a
strategy that reassembles only a fragment of a monster (as beforehand
pruning does) gets credit only if the fragment itself clears the bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.core.cluster import AtypicalCluster
from repro.core.query import QueryResult

__all__ = ["StrategyScore", "score_strategy", "ground_truth"]


@dataclass(frozen=True)
class StrategyScore:
    """Effectiveness of one strategy against the integrate-all ground truth."""

    strategy: str
    precision: float
    recall: float
    returned: int
    returned_significant: int
    ground_truth: int
    retrieved: int


def ground_truth(all_result: QueryResult) -> List[AtypicalCluster]:
    """The significant clusters of the integrate-all run."""
    if all_result.strategy != "all":
        raise ValueError(
            f"ground truth must come from the 'all' strategy, got {all_result.strategy!r}"
        )
    return all_result.significant()


def score_strategy(result: QueryResult, all_result: QueryResult) -> StrategyScore:
    """Precision and recall of ``result`` against ``all_result``'s truth.

    Precision follows the paper exactly: the share of *returned* clusters
    that are significant at the query scale. (The paper turns the final
    severity check off "for a fair play"; with ``final_check=True`` the
    Gui strategy's precision is 1.0 by construction.)
    """
    truth = ground_truth(all_result)
    returned = result.returned
    significant = result.significant()
    precision = len(significant) / len(returned) if returned else 0.0

    if not truth:
        return StrategyScore(
            strategy=result.strategy,
            precision=precision,
            recall=1.0,
            returned=len(returned),
            returned_significant=len(significant),
            ground_truth=0,
            retrieved=0,
        )

    truth_leaves: Dict[int, FrozenSet[int]] = {
        cluster.cluster_id: all_result.leaf_ids(cluster) for cluster in truth
    }
    candidate_leaves: List[FrozenSet[int]] = [
        result.leaf_ids(cluster) for cluster in significant
    ]
    retrieved = 0
    for leaves in truth_leaves.values():
        if any(leaves & candidate for candidate in candidate_leaves):
            retrieved += 1
    return StrategyScore(
        strategy=result.strategy,
        precision=precision,
        recall=retrieved / len(truth),
        returned=len(returned),
        returned_significant=len(significant),
        ground_truth=len(truth),
        retrieved=retrieved,
    )
