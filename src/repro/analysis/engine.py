"""High-level analysis engine — the library's main entry point.

Ties the whole pipeline of Fig. 2 together:

1. **Atypical forest construction** (offline): scan the CPS datasets,
   select atypical records (PR), extract atypical events and summarize
   them as micro-clusters (Algorithm 1), store them per day in the
   atypical forest, and load the severity cube used for red-zone guidance.
2. **Analytical query processing** (online): run ``Q(W, T)`` with the
   All / Pru / Gui strategies (Sec. IV).

Typical use::

    engine = AnalysisEngine.from_simulator(sim)
    engine.build(days=range(31))
    result = engine.query(engine.whole_city(), first_day=0, num_days=7)
    for cluster in result.significant():
        print(engine.describe(cluster))
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.events import EventExtractor, ExtractionParams
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.core.query import AnalyticalQuery, QueryProcessor, QueryResult
from repro.core.records import RecordBatch
from repro.cube.datacube import SeverityCube
from repro.spatial.network import SensorNetwork
from repro.spatial.regions import DistrictGrid, QueryRegion
from repro.storage.catalog import DatasetCatalog
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

__all__ = ["EngineConfig", "AnalysisEngine"]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class EngineConfig:
    """Algorithm parameters (defaults follow Fig. 14)."""

    distance_miles: float = 1.5
    time_gap_minutes: float = 15.0
    similarity_threshold: float = 0.5
    balance_function: str = "avg"
    delta_s: float = 0.05
    extraction_method: str = "grid"
    integration_method: str = "indexed"

    def extraction_params(self) -> ExtractionParams:
        return ExtractionParams(self.distance_miles, self.time_gap_minutes)

    def integrator(self) -> ClusterIntegrator:
        return ClusterIntegrator(
            self.similarity_threshold,
            self.balance_function,
            self.integration_method,
        )


class AnalysisEngine:
    """Builds the atypical forest and answers analytical queries."""

    def __init__(
        self,
        network: SensorNetwork,
        districts: DistrictGrid,
        calendar: Calendar,
        window_spec: WindowSpec = WindowSpec(),
        config: EngineConfig = EngineConfig(),
    ):
        self._network = network
        self._districts = districts
        self._calendar = calendar
        self._spec = window_spec
        self._config = config
        self._ids = ClusterIdGenerator()
        self._extractor = EventExtractor(
            network,
            config.extraction_params(),
            window_spec,
            method=config.extraction_method,
        )
        self._forest = AtypicalForest(
            calendar, window_spec, config.integrator(), self._ids
        )
        self._cube = SeverityCube(districts, calendar, window_spec)
        self._processor = QueryProcessor(
            self._forest, districts, self._cube, config.delta_s
        )
        self._built_days: set[int] = set()
        # execution summary of the last parallel build (engine.json only —
        # never serialized into the forest, which must stay independent of
        # how it was computed)
        self._build_info: Optional[dict] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_simulator(
        cls, simulator, config: EngineConfig = EngineConfig()
    ) -> "AnalysisEngine":
        """Engine over a :class:`~repro.simulate.generator.TrafficSimulator`."""
        return cls(
            network=simulator.network,
            districts=simulator.districts(),
            calendar=simulator.calendar,
            window_spec=simulator.window_spec,
            config=config,
        )

    # ------------------------------------------------------------------
    @property
    def network(self) -> SensorNetwork:
        return self._network

    @property
    def districts(self) -> DistrictGrid:
        return self._districts

    @property
    def calendar(self) -> Calendar:
        return self._calendar

    @property
    def window_spec(self) -> WindowSpec:
        return self._spec

    @property
    def forest(self) -> AtypicalForest:
        return self._forest

    @property
    def cube(self) -> SeverityCube:
        return self._cube

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def built_days(self) -> frozenset[int]:
        return frozenset(self._built_days)

    def whole_city(self) -> QueryRegion:
        return QueryRegion.whole_network(self._network)

    # ------------------------------------------------------------------
    # Offline construction (Fig. 2, left)
    # ------------------------------------------------------------------
    def add_day_records(self, day: int, batch: RecordBatch) -> List[AtypicalCluster]:
        """Ingest one day of atypical records: Algorithm 1 + cube load."""
        if day in self._built_days:
            raise ValueError(f"day {day} already built")
        with obs.span("extract.day") as sp:
            clusters = self._extractor.extract_micro_clusters(batch, self._ids)
            sp.set(day=day, records=len(batch), clusters=len(clusters))
        self._forest.add_day(day, clusters)
        self._cube.add_records(batch)
        self._built_days.add(day)
        _log.debug(
            "day built",
            extra={"day": day, "records": len(batch), "clusters": len(clusters)},
        )
        return clusters

    def install_day(
        self, day: int, clusters: Sequence[AtypicalCluster], batch: RecordBatch
    ) -> None:
        """Install micro-clusters extracted outside the batch extractor.

        The streaming ingest path (:mod:`repro.ingest`) extracts a day's
        micro-clusters incrementally and re-mints their ids in the
        canonical batch order; this performs the same bookkeeping as
        :meth:`add_day_records` — forest, cube, built-days set — without
        re-running Algorithm 1. ``clusters`` must already carry ids from
        this engine's generator, sorted the way the batch extractor sorts
        (``(-severity, start_window)``), and ``batch`` must hold exactly
        the day's records so the cube cell sums match a batch build.
        """
        if day in self._built_days:
            raise ValueError(f"day {day} already built")
        self._forest.add_day(day, clusters)
        self._cube.add_records(batch)
        self._built_days.add(day)
        _log.debug(
            "day installed",
            extra={"day": day, "records": len(batch), "clusters": len(clusters)},
        )

    def build_from_catalog(
        self, catalog: DatasetCatalog, days: Optional[Iterable[int]] = None
    ) -> int:
        """Construct the forest from stored datasets; returns days built."""
        count = 0
        with obs.span("build.catalog") as sp:
            for dataset in catalog:
                wanted = (
                    dataset.days
                    if days is None
                    else [d for d in days if d in dataset.days]
                )
                for day in wanted:
                    self.add_day_records(day, dataset.atypical_day(day))
                    count += 1
            sp.set(days=count)
        _log.info("forest built from catalog", extra={"days": count})
        return count

    def build_from_catalog_parallel(
        self,
        catalog: DatasetCatalog,
        days: Optional[Iterable[int]] = None,
        workers: int = 1,
        shard_by: str = "day",
        materialize: bool = False,
    ):
        """Construct the forest with the sharded parallel builder.

        Produces a forest and cube **byte-identical** to
        :meth:`build_from_catalog` at any worker count (the reducer
        replays the serial id assignment; see :mod:`repro.parallel`).
        ``workers=1`` runs the same shard/reduce path in process, so the
        CLI routes every build through here. Returns the
        :class:`~repro.parallel.builder.ParallelBuildReport`.
        """
        from repro.parallel.builder import ParallelForestBuilder

        builder = ParallelForestBuilder(
            self,
            catalog,
            workers=workers,
            shard_by=shard_by,
            materialize=materialize,
        )
        day_list = None if days is None else list(days)
        # same top-level span name as build_from_catalog: both are "the
        # offline catalog build", whatever the execution strategy
        with obs.span("build.catalog") as sp:
            report = builder.build(day_list)
            sp.set(days=report.days_built, workers=workers, shard_by=shard_by)
        self._built_days.update(self._forest.days)
        self._build_info = report.to_dict()
        _log.info(
            "forest built in parallel",
            extra={"days": report.days_built, "workers": report.workers},
        )
        return report

    def build_from_simulator(self, simulator, days: Iterable[int]) -> int:
        """Construct the forest directly from a simulator (no disk files)."""
        count = 0
        with obs.span("build.simulator") as sp:
            for day in days:
                chunk = simulator.simulate_day(day)
                mask = chunk.atypical_mask()
                batch = RecordBatch(
                    chunk.sensor_ids[mask],
                    chunk.windows[mask],
                    chunk.congested[mask].astype(np.float64),
                )
                self.add_day_records(day, batch)
                count += 1
            sp.set(days=count)
        _log.info("forest built from simulator", extra={"days": count})
        return count

    # ------------------------------------------------------------------
    # Persistence (split the offline and online halves of Fig. 2)
    # ------------------------------------------------------------------
    def save(self, directory, forest_format: str = "pickle") -> None:
        """Persist the constructed model (forest + cube + built days).

        ``forest_format`` selects the forest container — ``"pickle"``
        (legacy eager blob) or ``"columnar"`` (memory-mappable, loaded
        lazily); see :mod:`repro.storage.columnar`. :meth:`load` reopens
        either transparently.
        """
        from pathlib import Path

        from repro.storage.forest_io import save_cube, save_forest

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_forest(self._forest, directory / "forest.bin", format=forest_format)
        save_cube(self._cube, directory / "cube.bin")
        meta = {
            "built_days": sorted(self._built_days),
            "delta_s": self._config.delta_s,
            "similarity_threshold": self._config.similarity_threshold,
            "balance_function": self._config.balance_function,
        }
        if self._build_info is not None:
            meta["build"] = self._build_info
        import json

        (directory / "engine.json").write_text(json.dumps(meta))

    @classmethod
    def load(
        cls,
        directory,
        network: SensorNetwork,
        districts: DistrictGrid,
        config: EngineConfig = EngineConfig(),
    ) -> "AnalysisEngine":
        """Reopen a model saved by :meth:`save` for online querying.

        ``network`` and ``districts`` must be the deployment the model was
        built over (e.g. rebuilt via
        :meth:`~repro.simulate.generator.TrafficSimulator.from_catalog_dir`).
        """
        import json
        from pathlib import Path

        from repro.storage.forest_io import load_cube, load_forest

        directory = Path(directory)
        forest = load_forest(directory / "forest.bin", config.integrator())
        engine = cls(
            network,
            districts,
            forest.calendar,
            forest.window_spec,
            config,
        )
        engine._forest = forest
        engine._ids = forest.ids
        engine._cube = load_cube(
            directory / "cube.bin", districts, forest.calendar, forest.window_spec
        )
        engine._processor = QueryProcessor(
            forest, districts, engine._cube, config.delta_s
        )
        meta = json.loads((directory / "engine.json").read_text())
        engine._built_days = set(meta["built_days"])
        return engine

    # ------------------------------------------------------------------
    # Online queries (Fig. 2, right)
    # ------------------------------------------------------------------
    def query(
        self,
        region: QueryRegion,
        first_day: int,
        num_days: int,
        strategy: str = "gui",
        final_check: bool = False,
        delta_s: Optional[float] = None,
        use_materialized: bool = False,
        explain: bool = False,
    ) -> QueryResult:
        """Answer ``Q(W, T)`` over ``num_days`` days starting at ``first_day``.

        ``explain=True`` attaches the per-stage cost report (see
        :class:`~repro.core.query.QueryExplain`) to the result.
        """
        query = AnalyticalQuery.over_days(region, first_day, num_days)
        missing = [d for d in query.days if d not in self._built_days]
        if missing:
            raise ValueError(
                f"query days not built yet: {missing[:5]}{'...' if len(missing) > 5 else ''}"
            )
        return self._processor.run(
            query,
            strategy=strategy,
            final_check=final_check,
            delta_s=delta_s,
            use_materialized=use_materialized,
            explain=explain,
        )

    # ------------------------------------------------------------------
    # Interpretation helpers (Example 1's questions)
    # ------------------------------------------------------------------
    def describe(self, cluster: AtypicalCluster) -> str:
        """One-line human summary of a cluster: where / when / worst spot."""
        sensor, sensor_sev = cluster.most_serious_sensor()
        highway = self._network[sensor].highway_id
        highway_name = self._network.highways.get(highway)
        road = highway_name.name if highway_name is not None else f"highway {highway}"
        start = cluster.start_window()
        minute = self._spec.minute_of_day(start % self._spec.windows_per_day)
        return (
            f"cluster {cluster.cluster_id}: severity {cluster.severity():.0f} min "
            f"over {len(cluster.spatial)} sensors; worst at s{sensor} on {road} "
            f"({sensor_sev:.0f} min); typically starts around "
            f"{minute // 60:02d}:{minute % 60:02d}"
        )
