"""Context-dimension joins (Sec. V-D).

"The weather dimension can be joined with temporal dimension with the date
and the accident dimension can be joined with temporal and spatial
dimensions by the accident time and location. By joining those dimension
information, the system can support analytical queries on more
dimensions."

This module implements both joins over the cluster model:

* :func:`match_incidents` — spatial+temporal join of one cluster against
  an accident log;
* :class:`IncidentDimension` — a per-day accident table with cluster
  attribution and an "incident-related congestion" rollup;
* the weather join lives in :func:`repro.analysis.report.weather_breakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.cluster import AtypicalCluster
from repro.simulate.congestion import IncidentReport
from repro.spatial.network import SensorNetwork
from repro.temporal.windows import WindowSpec

__all__ = ["IncidentMatch", "match_incidents", "IncidentDimension"]


@dataclass(frozen=True)
class IncidentMatch:
    """One accident report attributed to a cluster."""

    incident: IncidentReport
    day: int
    distance_miles: float
    minutes_apart: float


def _incident_location(incident: IncidentReport, network: SensorNetwork):
    sensors = network.highway_sensors(incident.highway_id)
    ordinal = min(max(incident.center_ordinal, 0), len(sensors) - 1)
    return network.location(sensors[ordinal])


def match_incidents(
    cluster: AtypicalCluster,
    day: int,
    incidents: Sequence[IncidentReport],
    network: SensorNetwork,
    window_spec: WindowSpec = WindowSpec(),
    max_distance_miles: float = 1.5,
    max_minutes: float = 30.0,
) -> List[IncidentMatch]:
    """Accidents of ``day`` that plausibly relate to ``cluster``.

    An incident matches when its location is within ``max_distance_miles``
    of one of the cluster's sensors *and* its time lies within
    ``max_minutes`` of the cluster's active time-of-day span. The defaults
    mirror the paper's ``delta_d`` plus a doubled ``delta_t`` (accident
    reports lag the congestion they cause).
    """
    matches: List[IncidentMatch] = []
    start_minute = window_spec.minute_of_day(
        cluster.start_window() % window_spec.windows_per_day
    )
    end_minute = window_spec.minute_of_day(
        cluster.end_window() % window_spec.windows_per_day
    ) + window_spec.width_minutes
    locations = [network.location(s) for s in cluster.spatial]
    for incident in incidents:
        spot = _incident_location(incident, network)
        distance = min(spot.distance_to(p) for p in locations)
        if distance >= max_distance_miles:
            continue
        incident_start = incident.start_minute
        incident_end = incident.start_minute + incident.duration_minutes
        if incident_end < start_minute - max_minutes:
            continue
        if incident_start > end_minute + max_minutes:
            continue
        gap = max(0.0, start_minute - incident_end, incident_start - end_minute)
        matches.append(
            IncidentMatch(
                incident=incident,
                day=day,
                distance_miles=distance,
                minutes_apart=gap,
            )
        )
    matches.sort(key=lambda m: (m.distance_miles, m.minutes_apart))
    return matches


class IncidentDimension:
    """An accident log keyed by day, joinable against clusters.

    Typically filled from the simulator's ground truth
    (:meth:`~repro.simulate.generator.TrafficSimulator.incident_log`) or,
    in a real deployment, from police reports.
    """

    def __init__(self, network: SensorNetwork, window_spec: WindowSpec = WindowSpec()):
        self._network = network
        self._spec = window_spec
        self._by_day: Dict[int, List[IncidentReport]] = {}

    def add_day(self, day: int, incidents: Iterable[IncidentReport]) -> None:
        self._by_day.setdefault(day, []).extend(incidents)

    def day_incidents(self, day: int) -> List[IncidentReport]:
        return list(self._by_day.get(day, ()))

    def total_incidents(self) -> int:
        return sum(len(v) for v in self._by_day.values())

    # ------------------------------------------------------------------
    def attribute(
        self,
        cluster: AtypicalCluster,
        days: Sequence[int],
        max_distance_miles: float = 1.5,
        max_minutes: float = 30.0,
    ) -> List[IncidentMatch]:
        """All accidents over ``days`` attributable to ``cluster``."""
        matches: List[IncidentMatch] = []
        for day in days:
            matches.extend(
                match_incidents(
                    cluster,
                    day,
                    self._by_day.get(day, ()),
                    self._network,
                    self._spec,
                    max_distance_miles,
                    max_minutes,
                )
            )
        return matches

    def split_clusters(
        self,
        clusters: Sequence[AtypicalCluster],
        days: Sequence[int],
        **join_kwargs,
    ) -> Tuple[List[AtypicalCluster], List[AtypicalCluster]]:
        """Partition clusters into incident-related and recurring ones.

        Answers the officer's question "show me the congestions related to
        accident reports" (Sec. V-D).
        """
        related: List[AtypicalCluster] = []
        recurring: List[AtypicalCluster] = []
        for cluster in clusters:
            if self.attribute(cluster, days, **join_kwargs):
                related.append(cluster)
            else:
                recurring.append(cluster)
        return related, recurring
