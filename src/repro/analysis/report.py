"""Analyst-facing reports answering the questions of Example 1.

"(1) Where do the traffic congestions usually happen in the city?
 (2) When and how do they start?
 (3) On which road segment (or time period) is the congestion most
 serious?"

The report module turns significant clusters into structured answers and
supports the context-dimension joins of Sec. V-D (weather by date).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.cluster import AtypicalCluster
from repro.core.query import QueryResult
from repro.spatial.network import SensorNetwork
from repro.temporal.windows import WindowSpec

__all__ = ["ClusterReport", "CongestionReport", "build_report", "weather_breakdown"]


@dataclass(frozen=True)
class ClusterReport:
    """Structured answers for one significant cluster."""

    cluster_id: int
    severity: float
    num_sensors: int
    highways: Tuple[str, ...]
    worst_sensor: int
    worst_sensor_severity: float
    start_label: str
    peak_label: str
    top_sensors: Tuple[Tuple[int, float], ...]
    top_windows: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class CongestionReport:
    """A full query report: the clusters, most severe first."""

    strategy: str
    num_days: int
    clusters: Tuple[ClusterReport, ...]

    def __len__(self) -> int:
        return len(self.clusters)

    def to_text(self) -> str:
        """Render the report as readable text (used by the examples)."""
        lines = [
            f"Significant congestion clusters "
            f"({self.strategy} strategy, {self.num_days} days):"
        ]
        if not self.clusters:
            lines.append("  (none)")
        for i, c in enumerate(self.clusters, start=1):
            roads = ", ".join(c.highways)
            lines.append(
                f"  {i}. cluster {c.cluster_id}: {c.severity:.0f} min over "
                f"{c.num_sensors} sensors on {roads}"
            )
            lines.append(
                f"     starts ~{c.start_label}, peaks {c.peak_label}, "
                f"worst segment s{c.worst_sensor} ({c.worst_sensor_severity:.0f} min)"
            )
        return "\n".join(lines)


def _window_label(window: int, spec: WindowSpec) -> str:
    minute = spec.minute_of_day(window % spec.windows_per_day)
    end = minute + spec.width_minutes
    return (
        f"{minute // 60:02d}:{minute % 60:02d}-"
        f"{(end // 60) % 24:02d}:{end % 60:02d}"
    )


def describe_cluster(
    cluster: AtypicalCluster,
    network: SensorNetwork,
    spec: WindowSpec,
    top_k: int = 5,
) -> ClusterReport:
    """Summarize one cluster's spatial and temporal features."""
    worst_sensor, worst_sev = cluster.most_serious_sensor()
    peak_window, _peak_sev = cluster.peak_window()
    highway_ids = sorted(
        {network[s].highway_id for s in cluster.spatial}
    )
    highway_names = tuple(
        network.highways[h].name if h in network.highways else f"hw {h}"
        for h in highway_ids
    )
    return ClusterReport(
        cluster_id=cluster.cluster_id,
        severity=cluster.severity(),
        num_sensors=len(cluster.spatial),
        highways=highway_names,
        worst_sensor=worst_sensor,
        worst_sensor_severity=worst_sev,
        start_label=_window_label(cluster.start_window(), spec),
        peak_label=_window_label(peak_window, spec),
        top_sensors=tuple(cluster.spatial.top(top_k)),
        top_windows=tuple(
            (_window_label(w, spec), sev) for w, sev in cluster.temporal.top(top_k)
        ),
    )


def build_report(
    result: QueryResult,
    network: SensorNetwork,
    spec: WindowSpec,
    limit: Optional[int] = None,
) -> CongestionReport:
    """Report over the significant clusters of a query result."""
    clusters = result.significant()
    if limit is not None:
        clusters = clusters[:limit]
    return CongestionReport(
        strategy=result.strategy,
        num_days=len(result.query.days),
        clusters=tuple(
            describe_cluster(c, network, spec) for c in clusters
        ),
    )


def weather_breakdown(
    day_severities: Mapping[int, float],
    weather_of_day: Mapping[int, str],
) -> Dict[str, Tuple[int, float]]:
    """Join severity with the weather context dimension (Sec. V-D).

    Parameters
    ----------
    day_severities:
        Total severity per day (e.g. from the severity cube).
    weather_of_day:
        Weather state name per day.

    Returns
    -------
    Mapping from weather state to ``(number of days, mean daily severity)``.
    """
    totals: Dict[str, List[float]] = {}
    for day, severity in day_severities.items():
        state = weather_of_day.get(day, "unknown")
        totals.setdefault(state, []).append(severity)
    return {
        state: (len(values), sum(values) / len(values))
        for state, values in totals.items()
    }
