"""Atypical event prediction — the paper's stated future work.

Sec. VII: "In the future we will extend the atypical event analysis to
support more complex applications, such as the event prediction ...".
The atypical forest already contains everything a simple recurrence
predictor needs: daily micro-clusters integrate into chains (one per
recurring event), and each chain's leaves record on which days, at which
time of day and over which sensors the event fired.

:class:`RecurrencePredictor` learns such patterns from a training day
range and predicts, for any future day, which events are expected, with
what probability (split by weekday/weekend), expected severity and start
time. Predictions are scored against the actually extracted clusters with
the usual hit-rate / false-alarm metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.cluster import AtypicalCluster
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator

__all__ = [
    "RecurringPattern",
    "PredictedEvent",
    "PredictionScore",
    "RecurrencePredictor",
]


@dataclass(frozen=True)
class RecurringPattern:
    """One learned recurring event."""

    pattern_id: int
    sensor_ids: FrozenSet[int]
    core_sensor: int
    start_window: int  # typical time-of-day window
    weekday_probability: float
    weekend_probability: float
    mean_severity: float  # mean daily severity on active days
    active_days: int
    training_days: int

    def probability(self, is_weekend: bool) -> float:
        return self.weekend_probability if is_weekend else self.weekday_probability


@dataclass(frozen=True)
class PredictedEvent:
    """A pattern's forecast for one target day."""

    pattern: RecurringPattern
    day: int
    probability: float
    expected_severity: float


@dataclass(frozen=True)
class PredictionScore:
    """Hit/false-alarm accounting for one evaluated day."""

    day: int
    hits: int
    misses: int
    false_alarms: int

    @property
    def recall(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    @property
    def precision(self) -> float:
        issued = self.hits + self.false_alarms
        return self.hits / issued if issued else 1.0


class RecurrencePredictor:
    """Learns recurring atypical events from the forest and forecasts them."""

    def __init__(
        self,
        forest: AtypicalForest,
        min_support_days: int = 3,
        min_daily_severity: float = 50.0,
        delta_sim: float = 0.5,
        balance_function: str = "avg",
    ):
        self._forest = forest
        self._min_support = min_support_days
        self._min_daily_severity = min_daily_severity
        self._integrator = ClusterIntegrator(delta_sim, balance_function)
        self._patterns: List[RecurringPattern] = []
        self._trained_days: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    @property
    def patterns(self) -> List[RecurringPattern]:
        return list(self._patterns)

    def fit(self, days: Sequence[int]) -> List[RecurringPattern]:
        """Learn recurring patterns from the given (built) training days."""
        day_list = tuple(sorted(days))
        if not day_list:
            raise ValueError("training needs at least one day")
        micro = self._forest.micro_clusters(day_list)
        day_of_micro: Dict[int, int] = {}
        for day in day_list:
            for cluster in self._forest.day_clusters(day):
                day_of_micro[cluster.cluster_id] = day

        result = self._integrator.integrate(micro, self._forest.ids)
        registry = dict(result.created)
        for cluster in micro:
            registry[cluster.cluster_id] = cluster

        calendar = self._forest.calendar
        num_weekdays = sum(1 for d in day_list if not calendar.is_weekend(d))
        num_weekend = len(day_list) - num_weekdays

        patterns: List[RecurringPattern] = []
        for chain in result.clusters:
            leaves = self._leaves(chain, registry)
            severity_by_day: Dict[int, float] = {}
            for leaf in leaves:
                day = day_of_micro.get(leaf.cluster_id)
                if day is None:
                    continue
                severity_by_day[day] = (
                    severity_by_day.get(day, 0.0) + leaf.severity()
                )
            active = {
                day
                for day, severity in severity_by_day.items()
                if severity >= self._min_daily_severity
            }
            if len(active) < self._min_support:
                continue
            active_weekdays = sum(
                1 for d in active if not calendar.is_weekend(d)
            )
            active_weekend = len(active) - active_weekdays
            core_sensor, _ = chain.most_serious_sensor()
            patterns.append(
                RecurringPattern(
                    pattern_id=chain.cluster_id,
                    sensor_ids=chain.sensor_ids,
                    core_sensor=core_sensor,
                    start_window=chain.start_window(),
                    weekday_probability=(
                        active_weekdays / num_weekdays if num_weekdays else 0.0
                    ),
                    weekend_probability=(
                        active_weekend / num_weekend if num_weekend else 0.0
                    ),
                    mean_severity=sum(severity_by_day[d] for d in active)
                    / len(active),
                    active_days=len(active),
                    training_days=len(day_list),
                )
            )
        patterns.sort(key=lambda p: (-p.mean_severity, p.pattern_id))
        self._patterns = patterns
        self._trained_days = day_list
        return patterns

    @staticmethod
    def _leaves(
        cluster: AtypicalCluster, registry: Dict[int, AtypicalCluster]
    ) -> List[AtypicalCluster]:
        if cluster.is_micro:
            return [cluster]
        leaves: List[AtypicalCluster] = []
        stack = [cluster]
        while stack:
            node = stack.pop()
            if node.is_micro:
                leaves.append(node)
                continue
            for member in node.members:
                child = registry.get(member)
                if child is not None:
                    stack.append(child)
        return leaves

    # ------------------------------------------------------------------
    def predict(
        self, day: int, min_probability: float = 0.5
    ) -> List[PredictedEvent]:
        """Forecast the recurring events expected on ``day``."""
        if not self._patterns:
            raise ValueError("predictor has not been fitted")
        is_weekend = self._forest.calendar.is_weekend(day)
        forecasts = [
            PredictedEvent(
                pattern=pattern,
                day=day,
                probability=pattern.probability(is_weekend),
                expected_severity=pattern.mean_severity
                * pattern.probability(is_weekend),
            )
            for pattern in self._patterns
        ]
        return [f for f in forecasts if f.probability >= min_probability]

    # ------------------------------------------------------------------
    def score(
        self,
        day: int,
        min_probability: float = 0.5,
        min_actual_severity: Optional[float] = None,
    ) -> PredictionScore:
        """Evaluate the forecast for a built ``day`` against reality.

        A prediction *hits* when some actual cluster of the day shares a
        sensor with the pattern's footprint; actual clusters above the
        severity floor with no matching prediction count as misses.
        """
        floor = (
            min_actual_severity
            if min_actual_severity is not None
            else self._min_daily_severity
        )
        predicted = self.predict(day, min_probability)
        actual = [
            c for c in self._forest.day_clusters(day) if c.severity() >= floor
        ]
        matched_actual: set[int] = set()
        hits = 0
        false_alarms = 0
        for forecast in predicted:
            footprint = forecast.pattern.sensor_ids
            matches = [
                c for c in actual if c.sensor_ids & footprint
            ]
            if matches:
                hits += 1
                matched_actual.update(c.cluster_id for c in matches)
            else:
                false_alarms += 1
        misses = sum(1 for c in actual if c.cluster_id not in matched_actual)
        return PredictionScore(
            day=day, hits=hits, misses=misses, false_alarms=false_alarms
        )
