"""User-facing analysis API: engine, reports and strategy evaluation."""

from repro.analysis.dimensions import IncidentDimension, IncidentMatch, match_incidents
from repro.analysis.engine import AnalysisEngine, EngineConfig
from repro.analysis.evaluation import StrategyScore, ground_truth, score_strategy
from repro.analysis.prediction import (
    PredictedEvent,
    PredictionScore,
    RecurrencePredictor,
    RecurringPattern,
)
from repro.analysis.report import (
    ClusterReport,
    CongestionReport,
    build_report,
    describe_cluster,
    weather_breakdown,
)

__all__ = [
    "IncidentDimension",
    "IncidentMatch",
    "match_incidents",
    "AnalysisEngine",
    "EngineConfig",
    "PredictedEvent",
    "PredictionScore",
    "RecurrencePredictor",
    "RecurringPattern",
    "StrategyScore",
    "ground_truth",
    "score_strategy",
    "ClusterReport",
    "CongestionReport",
    "build_report",
    "describe_cluster",
    "weather_breakdown",
]
