"""Integration-kernel benchmark harness (``python -m repro bench``).

Times the vectorized similarity/integration engine against the dict-loop
scalar path it replaced, on a Fig. 15-sized workload: a synthetic set of
micro-clusters whose sensor/window locality mimics one week of the
benchmark trace (a few hundred clusters, a few dozen sensors each, over a
~900-sensor network). The scalar baseline reimplements Eq. 2-4 with plain
Python dict loops and runs the same inverted-index candidate strategy
without batch scoring or the similarity cache — so the measured ratio is
the kernel speedup, not an algorithmic change.

The harness is deliberately non-flaky: a fixed seed, min-of-N timing, and
no dependence on wall-clock state. Results are emitted as a
machine-readable JSON document (``BENCH_integration.json``) so successive
PRs can track the perf trajectory.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.features import SpatialFeature, TemporalFeature
from repro.core.integration import ClusterIntegrator
from repro.core.similarity import BALANCE_FUNCTIONS, pairwise_similarity

__all__ = [
    "synthetic_micro_clusters",
    "dict_similarity",
    "scalar_indexed_integrate",
    "scalar_rescan_naive_integrate",
    "run_parallel_build_benchmark",
    "run_serve_latency_benchmark",
    "run_prof_overhead_benchmark",
    "run_trace_overhead_benchmark",
    "run_ingest_throughput_benchmark",
    "run_integration_benchmark",
    "format_report",
]


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def synthetic_micro_clusters(
    num_clusters: int = 400,
    seed: int = 7,
    num_sensors: int = 900,
    num_windows: int = 288,
) -> List[AtypicalCluster]:
    """Deterministic micro-clusters with realistic sensor/window locality.

    Events concentrate around hotspot sensors and rush-hour windows, so the
    candidate structure (shared sensors/windows) resembles what one week of
    the benchmark trace feeds into Algorithm 3.
    """
    rng = np.random.default_rng(seed)
    ids = ClusterIdGenerator()
    hotspots = rng.integers(0, num_sensors, size=max(8, num_clusters // 12))
    clusters: List[AtypicalCluster] = []
    for _ in range(num_clusters):
        center = int(hotspots[rng.integers(0, hotspots.size)])
        spread = int(rng.integers(3, 30))
        raw = center + rng.integers(-spread, spread + 1, size=int(rng.integers(4, 30)))
        sensor_keys = np.unique(np.clip(raw, 0, num_sensors - 1))
        severities = rng.uniform(1.0, 30.0, size=sensor_keys.size)
        total = float(severities.sum())

        start = int(rng.integers(0, num_windows - 40))
        length = int(rng.integers(2, 16))
        window_keys = start + np.arange(length, dtype=np.int64)
        weights = rng.uniform(0.5, 1.0, size=length)
        window_sev = weights * (total / float(weights.sum()))

        clusters.append(
            AtypicalCluster(
                cluster_id=ids.next_id(),
                spatial=SpatialFeature.from_arrays(sensor_keys, severities),
                temporal=TemporalFeature.from_arrays(window_keys, window_sev),
            )
        )
    return clusters


# ----------------------------------------------------------------------
# Dict-loop scalar baseline (the pre-vectorization Eq. 2-4 path)
# ----------------------------------------------------------------------
def _as_dicts(cluster: AtypicalCluster) -> Tuple[dict, dict, float, float]:
    spatial = dict(cluster.spatial.items())
    temporal = dict(cluster.temporal.items())
    return spatial, temporal, cluster.spatial.total(), cluster.temporal.total()


def _dict_overlap(a: dict, b: dict) -> float:
    if len(a) <= len(b):
        return sum(v for k, v in a.items() if k in b)
    return sum(a[k] for k in b if k in a)


def dict_similarity(
    a: Tuple[dict, dict, float, float],
    b: Tuple[dict, dict, float, float],
    g: Callable[[float, float], float],
) -> float:
    """Eq. 2 on pre-extracted ``(spatial, temporal, s_total, t_total)``."""
    a_s, a_t, a_st, a_tt = a
    b_s, b_t, b_st, b_tt = b
    p1 = _dict_overlap(a_s, b_s) / a_st if a_st else 0.0
    p2 = _dict_overlap(b_s, a_s) / b_st if b_st else 0.0
    spatial = g(p1, p2)
    p1 = _dict_overlap(a_t, b_t) / a_tt if a_tt else 0.0
    p2 = _dict_overlap(b_t, a_t) / b_tt if b_tt else 0.0
    return 0.5 * (spatial + g(p1, p2))


def scalar_indexed_integrate(
    clusters: List[AtypicalCluster],
    threshold: float = 0.5,
    balance: str = "avg",
) -> Tuple[List[AtypicalCluster], int, int]:
    """The seed repo's indexed Algorithm 3: dict-loop similarity, no batch
    kernels, no cross-iteration cache. Returns (macro clusters, merges,
    comparisons) with the same deterministic tie-breaking as the
    production path, so the two must agree cluster for cluster."""
    g = BALANCE_FUNCTIONS[balance]
    ids = ClusterIdGenerator(max(c.cluster_id for c in clusters) + 1)
    active: Dict[int, AtypicalCluster] = {c.cluster_id: c for c in clusters}
    dicts: Dict[int, Tuple[dict, dict, float, float]] = {
        cid: _as_dicts(c) for cid, c in active.items()
    }
    by_sensor: Dict[int, set] = {}
    by_window: Dict[int, set] = {}
    for cid, cluster in active.items():
        for sensor in cluster.spatial:
            by_sensor.setdefault(sensor, set()).add(cid)
        for window in cluster.temporal:
            by_window.setdefault(window, set()).add(cid)

    use_window_candidates = threshold < 0.5
    merges = 0
    comparisons = 0
    queue = sorted(active)
    queued = set(queue)
    head = 0
    while head < len(queue):
        cid = queue[head]
        head += 1
        queued.discard(cid)
        cluster = active.get(cid)
        if cluster is None:
            continue
        candidates: set = set()
        for sensor in cluster.spatial:
            candidates.update(by_sensor.get(sensor, ()))
        if use_window_candidates:
            for window in cluster.temporal:
                candidates.update(by_window.get(window, ()))
        candidates.discard(cid)

        best_sim = threshold
        best_id: Optional[int] = None
        for other_id in sorted(candidates):
            comparisons += 1
            sim = dict_similarity(dicts[cid], dicts[other_id], g)
            if sim > best_sim:
                best_sim = sim
                best_id = other_id
        if best_id is None:
            continue

        other = active.pop(best_id)
        del active[cid]
        for stale in (cluster, other):
            for sensor in stale.spatial:
                bucket = by_sensor.get(sensor)
                if bucket is not None:
                    bucket.discard(stale.cluster_id)
            for window in stale.temporal:
                bucket = by_window.get(window)
                if bucket is not None:
                    bucket.discard(stale.cluster_id)
        merged = AtypicalCluster(
            cluster_id=ids.next_id(),
            spatial=cluster.spatial.merge(other.spatial),
            temporal=cluster.temporal.merge(other.temporal),
            level=max(cluster.level, other.level) + 1,
            members=(cluster.cluster_id, other.cluster_id),
        )
        active[merged.cluster_id] = merged
        dicts[merged.cluster_id] = _as_dicts(merged)
        for sensor in merged.spatial:
            by_sensor.setdefault(sensor, set()).add(merged.cluster_id)
        for window in merged.temporal:
            by_window.setdefault(window, set()).add(merged.cluster_id)
        merges += 1
        if merged.cluster_id not in queued:
            queue.append(merged.cluster_id)
            queued.add(merged.cluster_id)

    result = sorted(active.values(), key=lambda c: (-c.severity(), c.cluster_id))
    return result, merges, comparisons


def scalar_rescan_naive_integrate(
    clusters: List[AtypicalCluster],
    threshold: float = 0.5,
    balance: str = "avg",
) -> Tuple[List[AtypicalCluster], int, int]:
    """The seed repo's *original* naive Algorithm 3: every fixpoint
    iteration re-scans all active pairs with dict-loop similarity to find
    the global best pair, merges it, and starts over — O(merges * n^2)
    evaluations. Kept as the baseline the incremental best-pair heap
    replaced; the heap-based ``"naive"`` method merges in the exact same
    order (global best similarity, lowest id pair on ties)."""
    g = BALANCE_FUNCTIONS[balance]
    ids = ClusterIdGenerator(max(c.cluster_id for c in clusters) + 1)
    active: Dict[int, AtypicalCluster] = {c.cluster_id: c for c in clusters}
    dicts: Dict[int, Tuple[dict, dict, float, float]] = {
        cid: _as_dicts(c) for cid, c in active.items()
    }
    merges = 0
    comparisons = 0
    while True:
        best_sim = threshold
        best_pair: Optional[Tuple[int, int]] = None
        ordered = sorted(active)
        for i, a_id in enumerate(ordered):
            a_s, a_t, _, _ = dicts[a_id]
            for b_id in ordered[i + 1 :]:
                b_s, b_t, _, _ = dicts[b_id]
                if not (a_s.keys() & b_s.keys() or a_t.keys() & b_t.keys()):
                    continue  # dict-loop fast reject (can_be_similar)
                comparisons += 1
                sim = dict_similarity(dicts[a_id], dicts[b_id], g)
                if sim > best_sim:
                    best_sim = sim
                    best_pair = (a_id, b_id)
        if best_pair is None:
            break
        a_id, b_id = best_pair
        first = active.pop(a_id)
        second = active.pop(b_id)
        merged = AtypicalCluster(
            cluster_id=ids.next_id(),
            spatial=first.spatial.merge(second.spatial),
            temporal=first.temporal.merge(second.temporal),
            level=max(first.level, second.level) + 1,
            members=(a_id, b_id),
        )
        active[merged.cluster_id] = merged
        dicts[merged.cluster_id] = _as_dicts(merged)
        merges += 1
    result = sorted(active.values(), key=lambda c: (-c.severity(), c.cluster_id))
    return result, merges, comparisons


# ----------------------------------------------------------------------
# Timing harness
# ----------------------------------------------------------------------
def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, float, object]:
    """(best, mean, last_result) over ``repeats`` runs of ``fn``."""
    samples = []
    result: object = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
    return min(samples), math.fsum(samples) / len(samples), result


@contextlib.contextmanager
def _phase(name: str, seconds: Dict[str, float]) -> Iterator[None]:
    """Record one benchmark phase's wall time in ``seconds`` and, when the
    observability layer is active, as a ``bench.<name>`` span.

    The wall clock is read directly so the report carries phase timings
    even with observability off — the timed kernels themselves are never
    instrumented beyond their existing disabled-flag checks."""
    started = time.perf_counter()
    with obs.span("bench." + name):
        yield
    seconds[name] = time.perf_counter() - started


def _signature(clusters: List[AtypicalCluster]) -> List[Tuple[bytes, bytes]]:
    """Order-independent identity of a macro-cluster set, byte-exact.

    The vectorized kernels accumulate severities in the same order as the
    scalar path, so the comparison is on raw feature bytes — no rounding
    tolerance."""
    return sorted(
        (
            np.concatenate(
                (c.spatial.key_array, c.spatial.value_array.view(np.int64))
            ).tobytes(),
            np.concatenate(
                (c.temporal.key_array, c.temporal.value_array.view(np.int64))
            ).tobytes(),
        )
        for c in clusters
    )


def run_parallel_build_benchmark(
    workers: int = 1,
    shard_by: str = "day",
    build_days: int = 31,
    seed: int = 7,
    profile: str = "benchmark",
    phase_seconds: Optional[Dict[str, float]] = None,
    scaling: Tuple[int, ...] = (1, 2, 4, 8),
) -> dict:
    """Benchmark the sharded parallel forest builder against serial.

    Materializes one month of the requested simulation profile (default:
    the ~270-sensor ``benchmark`` profile, big enough to amortize pool
    startup), builds it once through the ``workers=1`` in-process path
    and once with ``workers`` processes,
    and byte-compares the two saved models (forest + cube). The
    correctness flag is reported as ``identical_macro_clusters`` so the
    regression gate (``benchmarks/compare.py``) enforces it the same way
    it does for the kernel sections. The legacy serial builder
    (:meth:`~repro.analysis.engine.AnalysisEngine.build_from_catalog`)
    is compared too — the parallel path must reproduce it exactly.

    ``scaling`` runs the same workload at each worker count and reports
    the speedup curve; the host's ``cpu_count`` rides along so the
    ``parallel_beats_serial`` gate in ``benchmarks/compare.py`` can tell
    real regressions from single-CPU hosts, where any multi-process run
    is serial compute plus fork/IPC overhead by construction.
    """
    import hashlib
    import tempfile

    from repro.analysis.engine import AnalysisEngine
    from repro.simulate.generator import SimulationConfig, TrafficSimulator
    from repro.storage.catalog import DatasetCatalog

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("parallel_build", seconds):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            tmp_path = Path(tmp)
            base = (
                SimulationConfig.small(seed=seed)
                if profile == "small"
                else SimulationConfig.benchmark(seed=seed)
            )
            simulator = TrafficSimulator(base)
            simulator.materialize_catalog(tmp_path / "data", months=[0])
            catalog = DatasetCatalog(tmp_path / "data")
            days = range(build_days)

            def build(n: int):
                engine = AnalysisEngine.from_simulator(simulator)
                started = time.perf_counter()
                report = engine.build_from_catalog_parallel(
                    catalog, days, workers=n, shard_by=shard_by
                )
                elapsed = time.perf_counter() - started
                return engine, report, elapsed

            serial_engine, serial_report, serial_seconds = build(1)
            parallel_engine, parallel_report, parallel_seconds = build(workers)

            timed = {1: serial_seconds, workers: parallel_seconds}
            curve = []
            for n in scaling:
                if n not in timed:
                    _, _, timed[n] = build(n)
                curve.append(
                    {
                        "workers": n,
                        "seconds": timed[n],
                        "speedup": serial_seconds / timed[n]
                        if timed[n]
                        else float("inf"),
                    }
                )

            legacy_engine = AnalysisEngine.from_simulator(simulator)
            legacy_engine.build_from_catalog(catalog, days)
            # the legacy path records no shard provenance; align it so the
            # byte comparison covers clusters, id maps and registry order
            legacy_engine.forest.set_provenance(
                parallel_engine.forest.provenance
            )

            digests = {}
            for name, engine in (
                ("serial", serial_engine),
                ("parallel", parallel_engine),
                ("legacy", legacy_engine),
            ):
                out_dir = tmp_path / name
                engine.save(out_dir)
                digests[name] = tuple(
                    hashlib.sha256((out_dir / f).read_bytes()).hexdigest()
                    for f in ("forest.bin", "cube.bin")
                )
    return {
        "workers": workers,
        "shard_by": shard_by,
        "build_days": build_days,
        "cpu_count": os.cpu_count() or 1,
        "shards": parallel_report.shards,
        "records": parallel_report.records,
        "clusters": parallel_report.clusters,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds
        if parallel_seconds
        else float("inf"),
        "map_seconds": parallel_report.map_seconds,
        "reduce_seconds": parallel_report.reduce_seconds,
        "worker_init_seconds": parallel_report.worker_init_seconds,
        "scaling": curve,
        "identical_macro_clusters": (
            digests["serial"] == digests["parallel"] == digests["legacy"]
        ),
    }


def run_query_io_benchmark(
    build_days: int = 10,
    query_days: int = 3,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """The fig17b-style query-cost phase: bytes touched per range query.

    Builds a small model, saves the forest in both container formats,
    then times ``load_forest`` plus a ``query_days``-day micro scan
    against each. The pickle path deserializes the whole file; the
    columnar path maps it and faults in one column group per queried day
    — ``bytes_loaded`` (group payloads CRC-checked on first touch, a
    faithful faulted-bytes estimate) must come in strictly under the
    file size, and the returned clusters must be byte-identical across
    backends. Both facts gate in ``benchmarks/compare.py``.
    """
    import tempfile

    from repro.analysis.engine import AnalysisEngine
    from repro.simulate.generator import SimulationConfig, TrafficSimulator
    from repro.storage.catalog import DatasetCatalog
    from repro.storage.forest_io import load_forest, save_forest

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("query_io", seconds):
        with tempfile.TemporaryDirectory(prefix="repro-bench-io-") as tmp:
            tmp_path = Path(tmp)
            simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
            simulator.materialize_catalog(tmp_path / "data", months=[0])
            catalog = DatasetCatalog(tmp_path / "data")
            engine = AnalysisEngine.from_simulator(simulator)
            engine.build_from_catalog_parallel(
                catalog, range(build_days), workers=1, materialize=True
            )
            integrator = engine.forest.integrator
            paths = {
                "pickle": tmp_path / "forest-pickle.bin",
                "columnar": tmp_path / "forest-columnar.bin",
            }
            save_forest(engine.forest, paths["pickle"])
            save_forest(engine.forest, paths["columnar"], format="columnar")
            days = list(range(query_days))

            def load_and_query(fmt: str):
                forest = load_forest(paths[fmt], integrator)
                return forest, forest.micro_clusters(days)

            pickle_best, _, (_, pickle_clusters) = _time(
                lambda: load_and_query("pickle"), repeats=3
            )
            columnar_best, _, (columnar_forest, columnar_clusters) = _time(
                lambda: load_and_query("columnar"), repeats=3
            )
            io = columnar_forest.io_stats()
            file_bytes = {
                fmt: path.stat().st_size for fmt, path in paths.items()
            }
    return {
        "build_days": build_days,
        "query_days": query_days,
        "pickle_file_bytes": file_bytes["pickle"],
        "columnar_file_bytes": file_bytes["columnar"],
        "pickle_seconds": pickle_best,
        "columnar_seconds": columnar_best,
        "speedup": pickle_best / columnar_best
        if columnar_best
        else float("inf"),
        "bytes_mapped": io["bytes_mapped"],
        "bytes_loaded": io["bytes_loaded"],
        "groups_loaded": io["groups_loaded"],
        "groups_total": io["groups_total"],
        "partial_io": io["bytes_loaded"] < io["bytes_mapped"],
        "identical_macro_clusters": (
            _signature(columnar_clusters) == _signature(pickle_clusters)
        ),
    }


def _sorted_quantile(samples: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    if not samples:
        return 0.0
    rank = min(len(samples) - 1, max(0, int(math.ceil(q * len(samples))) - 1))
    return samples[rank]


def run_serve_latency_benchmark(
    requests: int = 24,
    build_days: int = 7,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Benchmark the query service's handler stack, in process.

    Builds a small engine, wraps it in a
    :class:`~repro.serve.handlers.ServeApp`, and drives ``requests``
    ``POST /query`` calls through ``dispatch`` — the full serving path
    (request context, RED accounting, query, report rendering, JSON)
    minus the socket, so the number isolates our code from kernel TCP
    noise. Reports p50/p95 per-request latency plus one ``/metrics``
    render time (the scrape cost an operator's poller pays).
    """
    from repro.analysis.engine import AnalysisEngine
    from repro.serve import ServeApp
    from repro.simulate.generator import SimulationConfig, TrafficSimulator

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("serve_latency", seconds):
        simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
        engine = AnalysisEngine.from_simulator(simulator)
        engine.build_from_simulator(simulator, range(build_days))
        body = json.dumps({"first_day": 0, "days": build_days}).encode()

        def drive() -> Tuple[List[float], int, float]:
            app = ServeApp(engine)
            samples: List[float] = []
            errors = 0
            for _ in range(requests):
                started = time.perf_counter()
                status, _, _, _ = app.dispatch("POST", "/query", {}, body)
                samples.append(time.perf_counter() - started)
                if status != 200:
                    errors += 1
            started = time.perf_counter()
            app.dispatch("GET", "/metrics", {}, b"")
            return samples, errors, time.perf_counter() - started

        if obs.enabled():
            samples, errors, scrape_seconds = drive()
        else:
            # the real server always records telemetry, so the bench must
            # pay the same accounting costs to be representative
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                samples, errors, scrape_seconds = drive()
    samples.sort()
    return {
        "requests": requests,
        "build_days": build_days,
        "errors": errors,
        "p50_seconds": _sorted_quantile(samples, 0.50),
        "p95_seconds": _sorted_quantile(samples, 0.95),
        "mean_seconds": math.fsum(samples) / len(samples) if samples else 0.0,
        "total_seconds": math.fsum(samples),
        "metrics_render_seconds": scrape_seconds,
    }


def run_trace_overhead_benchmark(
    requests: int = 30,
    build_days: int = 7,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Measure what always-on tail-sampled tracing costs per request.

    Drives the same in-process ``POST /query`` workload as
    :func:`run_serve_latency_benchmark` twice over one engine: once with a
    plain :class:`~repro.serve.handlers.ServeApp` (tracing off) and once
    with a :class:`~repro.obs.tracestore.TraceStore` attached under the
    worst-case sampler (``latency_threshold=0.0, head_rate=1`` — every
    request kept and persisted to disk). The ``overhead_ratio``
    (on mean / off mean) is what ``benchmarks/compare.py`` gates; a small
    absolute-delta guard there keeps sub-millisecond noise from failing
    the build.
    """
    import tempfile

    from repro.analysis.engine import AnalysisEngine
    from repro.obs.tracestore import TailSampler, TraceStore
    from repro.serve import ServeApp
    from repro.simulate.generator import SimulationConfig, TrafficSimulator

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("trace_overhead", seconds):
        simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
        engine = AnalysisEngine.from_simulator(simulator)
        engine.build_from_simulator(simulator, range(build_days))
        body = json.dumps({"first_day": 0, "days": build_days}).encode()

        def drive(app) -> List[float]:
            samples: List[float] = []
            # warm the query path so neither arm pays first-touch costs
            app.dispatch("POST", "/query", {}, body)
            for _ in range(requests):
                started = time.perf_counter()
                app.dispatch("POST", "/query", {}, body)
                samples.append(time.perf_counter() - started)
            samples.sort()
            return samples

        with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
            # fresh registries per arm: identical span-buffer state, and the
            # traced arm's extra series never leak into the baseline
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                off = drive(ServeApp(engine))
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                store = TraceStore(segment_dir=Path(tmp))
                sampler = TailSampler(latency_threshold=0.0, head_rate=1)
                on = drive(
                    ServeApp(engine, trace_store=store, tail_sampler=sampler)
                )
                kept = store.added
    off_mean = math.fsum(off) / len(off) if off else 0.0
    on_mean = math.fsum(on) / len(on) if on else 0.0
    return {
        "requests": requests,
        "build_days": build_days,
        "off_mean_seconds": off_mean,
        "off_p50_seconds": _sorted_quantile(off, 0.50),
        "on_mean_seconds": on_mean,
        "on_p50_seconds": _sorted_quantile(on, 0.50),
        "overhead_ratio": on_mean / off_mean if off_mean else float("inf"),
        "traces_kept": kept,
    }


def run_prof_overhead_benchmark(
    requests: int = 30,
    build_days: int = 7,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Measure what the always-on wall-clock sampler costs per request.

    Same in-process ``POST /query`` workload as
    :func:`run_trace_overhead_benchmark`, driven twice over one engine:
    once plain, once with a :class:`~repro.obs.contprof.ContinuousProfiler`
    running at its default rate and persisting window segments to disk.
    The profiler is a GIL-sharing daemon thread, so the cost shows up as
    stolen interpreter time rather than per-request bookkeeping; the
    ``overhead_ratio`` (on mean / off mean) is what
    ``benchmarks/compare.py`` gates against its 1.10x budget, with an
    absolute-delta guard for sub-millisecond noise.
    """
    import tempfile

    from repro.analysis.engine import AnalysisEngine
    from repro.obs.contprof import ContinuousProfiler
    from repro.serve import ServeApp
    from repro.simulate.generator import SimulationConfig, TrafficSimulator

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("prof_overhead", seconds):
        simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
        engine = AnalysisEngine.from_simulator(simulator)
        engine.build_from_simulator(simulator, range(build_days))
        body = json.dumps({"first_day": 0, "days": build_days}).encode()

        def drive(app) -> List[float]:
            samples: List[float] = []
            # warm the query path so neither arm pays first-touch costs
            app.dispatch("POST", "/query", {}, body)
            for _ in range(requests):
                started = time.perf_counter()
                app.dispatch("POST", "/query", {}, body)
                samples.append(time.perf_counter() - started)
            samples.sort()
            return samples

        with tempfile.TemporaryDirectory(prefix="repro-bench-prof-") as tmp:
            # fresh registries per arm, like the trace-overhead phase
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                off = drive(ServeApp(engine))
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                profiler = ContinuousProfiler(
                    window_seconds=1.0, segment_dir=Path(tmp)
                )
                profiler.start()
                try:
                    on = drive(ServeApp(engine, profiler=profiler))
                finally:
                    profiler.stop()
                stack_samples = profiler.merged().samples
    off_mean = math.fsum(off) / len(off) if off else 0.0
    on_mean = math.fsum(on) / len(on) if on else 0.0
    return {
        "requests": requests,
        "build_days": build_days,
        "hz": profiler.hz,
        "off_mean_seconds": off_mean,
        "off_p50_seconds": _sorted_quantile(off, 0.50),
        "on_mean_seconds": on_mean,
        "on_p50_seconds": _sorted_quantile(on, 0.50),
        "overhead_ratio": on_mean / off_mean if off_mean else float("inf"),
        "stack_samples": stack_samples,
    }


def run_serve_load_benchmark(
    duration: float = 3.0,
    concurrency: int = 2,
    build_days: int = 7,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Benchmark the query service under closed-loop load, over real HTTP.

    Where :func:`run_serve_latency_benchmark` isolates the handler stack,
    this phase boots an actual :class:`~repro.serve.server.QueryServer`
    on an ephemeral port and drives it with the
    :mod:`repro.loadgen` closed loop — the full production path including
    the TCP transport, the threading server, and concurrent requests
    contending for the query lock. The report is the loadgen document
    (achieved rate, p50/p95/p99, error rate) plus the workload shape, and
    is what ``benchmarks/compare.py`` gates as ``serve_load``.
    """
    from repro.analysis.engine import AnalysisEngine
    from repro.loadgen import run_load
    from repro.serve import QueryServer, ServeApp
    from repro.simulate.generator import SimulationConfig, TrafficSimulator

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("serve_load", seconds):
        simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
        engine = AnalysisEngine.from_simulator(simulator)
        engine.build_from_simulator(simulator, range(build_days))
        app = ServeApp(engine)
        server = QueryServer(app, port=0)

        def drive() -> dict:
            server.start_background()
            try:
                report = run_load(
                    server.url(),
                    mode="closed",
                    duration=duration,
                    concurrency=concurrency,
                    timeout=30.0,
                    limit=5,
                )
            finally:
                server.stop(timeout=10.0)
            return report.to_dict()

        if obs.enabled():
            load = drive()
        else:
            # the real server always records telemetry; pay the same cost
            with obs.activate(obs.MetricsRegistry(span_limit=10_000)):
                load = drive()
    latency = load["latency_seconds"]
    return {
        "build_days": build_days,
        "mode": load["mode"],
        "duration_seconds": load["duration_seconds"],
        "concurrency": load["concurrency"],
        "requests": load["requests"],
        "errors": load["errors"],
        "error_rate": load["error_rate"],
        "achieved_rate": load["achieved_rate"],
        "p50_seconds": latency["p50"] or 0.0,
        "p95_seconds": latency["p95"] or 0.0,
        "p99_seconds": latency["p99"] or 0.0,
        "max_seconds": latency["max"] or 0.0,
        "mix_counts": load["mix_counts"],
    }


def run_ingest_throughput_benchmark(
    stream_days: int = 3,
    seed: int = 7,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> dict:
    """Benchmark the streaming ingest path and prove live equals batch.

    Replays ``stream_days`` of a small simulated trace through
    :class:`~repro.ingest.engine.IngestEngine` — window-sorted event rows,
    live day→week→month roll-ups, a final flush, and a snapshot through
    the columnar writer — then builds the same days offline through
    :meth:`~repro.analysis.engine.AnalysisEngine.add_day_records`. Two
    numbers gate in ``benchmarks/compare.py``: ``identical_macro_clusters``
    (sha256 byte-equality of ``forest.bin`` / ``cube.bin`` /
    ``engine.json`` between the published snapshot and the batch model —
    the live path may not drift from Algorithm 1-3 by a single byte) and
    an absolute ``events_per_second`` floor on the full
    extract/install/roll-up path (``check_ingest_throughput``).
    """
    import hashlib
    import tempfile

    from repro.analysis.engine import AnalysisEngine
    from repro.ingest.engine import IngestEngine
    from repro.simulate.generator import SimulationConfig, TrafficSimulator
    from repro.storage.catalog import DatasetCatalog

    seconds = phase_seconds if phase_seconds is not None else {}
    with _phase("ingest_throughput", seconds):
        with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as tmp:
            tmp_path = Path(tmp)
            simulator = TrafficSimulator(SimulationConfig.small(seed=seed))
            simulator.materialize_catalog(tmp_path / "data", months=[0])
            catalog = DatasetCatalog(tmp_path / "data")

            # one event list per day, in canonical stream order (window
            # then sensor — the arrival order the ingest watermark expects)
            day_rows: List[Tuple[int, List[Tuple[int, int, float]]]] = []
            events = 0
            for dataset in catalog:
                for day in dataset.days:
                    if day >= stream_days:
                        continue
                    batch = dataset.atypical_day(day)
                    order = np.lexsort((batch.sensor_ids, batch.windows))
                    rows = [
                        (
                            int(batch.sensor_ids[i]),
                            int(batch.windows[i]),
                            float(batch.severities[i]),
                        )
                        for i in order
                    ]
                    day_rows.append((day, rows))
                    events += len(rows)

            live_engine = AnalysisEngine.from_simulator(simulator)
            ingest = IngestEngine(live_engine)
            started = time.perf_counter()
            for _, rows in day_rows:
                ingest.add_events(rows)
            ingest.flush()
            stream_seconds = time.perf_counter() - started
            snapshot_dir = ingest.snapshot(tmp_path / "snaps")
            live_stats = live_engine.forest.stats()
            stats = ingest.stats()

            batch_engine = AnalysisEngine.from_simulator(simulator)
            started = time.perf_counter()
            for dataset in catalog:
                for day in dataset.days:
                    if day < stream_days:
                        batch_engine.add_day_records(
                            day, dataset.atypical_day(day)
                        )
            batch_seconds = time.perf_counter() - started
            batch_dir = tmp_path / "batch"
            batch_engine.save(batch_dir, forest_format="columnar")

            def digest(model_dir: Path) -> Tuple[str, ...]:
                return tuple(
                    hashlib.sha256((model_dir / name).read_bytes()).hexdigest()
                    for name in ("forest.bin", "cube.bin", "engine.json")
                )

            identical = digest(snapshot_dir) == digest(batch_dir)
    return {
        "stream_days": stream_days,
        "events": events,
        "accepted": stats["accepted"],
        "rejected": stats["rejected"],
        "days_closed": stats["days_closed"],
        "week_macros": live_stats.num_week_macro,
        "month_macros": live_stats.num_month_macro,
        "stream_seconds": stream_seconds,
        "batch_seconds": batch_seconds,
        "events_per_second": events / stream_seconds
        if stream_seconds
        else float("inf"),
        "overhead_ratio": stream_seconds / batch_seconds
        if batch_seconds
        else float("inf"),
        "identical_macro_clusters": identical,
    }


def run_integration_benchmark(
    num_clusters: int = 400,
    seed: int = 7,
    repeats: int = 3,
    threshold: float = 0.5,
    balance: str = "avg",
    naive_subset: int = 150,
    out_path: Optional[Path] = None,
    workers: int = 1,
    shard_by: str = "day",
) -> dict:
    """Benchmark vectorized vs dict-loop similarity and integration.

    Returns (and optionally writes) the machine-readable report. Fixed
    seed and min-of-``repeats`` timing keep it stable run to run. The
    ``parallel_build`` section (see :func:`run_parallel_build_benchmark`)
    compares the sharded builder at ``workers`` processes against the
    serial path; with the default ``workers=1`` it still runs — as the
    identity check that the two code paths produce one model — and
    reports a speedup of ~1.
    """
    if num_clusters < 2:
        raise ValueError("benchmark needs at least 2 clusters (one pair)")
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    phase_seconds: Dict[str, float] = {}
    with _phase("workload", phase_seconds):
        clusters = synthetic_micro_clusters(num_clusters=num_clusters, seed=seed)
    g = BALANCE_FUNCTIONS[balance]

    # -- similarity kernel: every pair, dict loops vs one CSR product ----
    dict_reprs = [_as_dicts(c) for c in clusters]

    def dict_all_pairs() -> np.ndarray:
        n = len(dict_reprs)
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = dict_similarity(dict_reprs[i], dict_reprs[j], g)
        return out

    with _phase("similarity_kernel", phase_seconds):
        dict_best, dict_mean, dict_matrix = _time(dict_all_pairs, repeats)
        vec_best, vec_mean, vec_matrix = _time(
            lambda: pairwise_similarity(clusters, balance), repeats
        )
    upper = np.triu_indices(len(clusters), k=1)
    kernel_error = float(
        np.max(np.abs(np.asarray(dict_matrix)[upper] - np.asarray(vec_matrix)[upper]))
    )

    # -- end-to-end Algorithm 3: scalar seed path vs vectorized engine ---
    def vectorized_integrate():
        integrator = ClusterIntegrator(threshold, balance, "indexed")
        return integrator.integrate(clusters)

    with _phase("integration", phase_seconds):
        scalar_best, scalar_mean, scalar_out = _time(
            lambda: scalar_indexed_integrate(clusters, threshold, balance), repeats
        )
        vec_int_best, vec_int_mean, vec_result = _time(
            vectorized_integrate, repeats
        )
    scalar_clusters, scalar_merges, scalar_comparisons = scalar_out

    # -- naive fixpoint: seed's quadratic re-scan vs incremental heap ----
    # The re-scan baseline is O(merges * n^2) dict evaluations, so it runs
    # on a subset of the workload and a single repetition.
    subset = clusters[: min(naive_subset, num_clusters)]

    def heap_naive_integrate():
        integrator = ClusterIntegrator(threshold, balance, "naive")
        return integrator.integrate(subset)

    with _phase("naive_fixpoint", phase_seconds):
        rescan_best, rescan_mean, rescan_out = _time(
            lambda: scalar_rescan_naive_integrate(subset, threshold, balance), 1
        )
        heap_best, heap_mean, heap_result = _time(heap_naive_integrate, repeats)
    rescan_clusters, rescan_merges, rescan_comparisons = rescan_out

    # -- sharded forest builder: serial path vs N worker processes -------
    parallel_build = run_parallel_build_benchmark(
        workers=workers,
        shard_by=shard_by,
        seed=seed,
        phase_seconds=phase_seconds,
    )

    # -- query service: in-process handler-stack latency -----------------
    serve_latency = run_serve_latency_benchmark(
        seed=seed, phase_seconds=phase_seconds
    )

    # -- query service under closed-loop load, over real HTTP ------------
    serve_load = run_serve_load_benchmark(seed=seed, phase_seconds=phase_seconds)

    # -- always-on tracing: worst-case keep-everything cost ---------------
    trace_overhead = run_trace_overhead_benchmark(
        seed=seed, phase_seconds=phase_seconds
    )

    # -- continuous profiler: sampler-thread tax on the query path --------
    prof_overhead = run_prof_overhead_benchmark(
        seed=seed, phase_seconds=phase_seconds
    )

    # -- storage engine: bytes faulted per range query (fig17b) ----------
    query_io = run_query_io_benchmark(seed=seed, phase_seconds=phase_seconds)

    # -- streaming ingest: live path throughput + byte-parity with batch -
    ingest_throughput = run_ingest_throughput_benchmark(
        seed=seed, phase_seconds=phase_seconds
    )

    report = {
        "workload": {
            "num_clusters": num_clusters,
            "seed": seed,
            "repeats": repeats,
            "threshold": threshold,
            "balance": balance,
            "pairs": len(clusters) * (len(clusters) - 1) // 2,
        },
        "similarity_kernel": {
            "dict_loop_seconds": dict_best,
            "dict_loop_mean_seconds": dict_mean,
            "vectorized_seconds": vec_best,
            "vectorized_mean_seconds": vec_mean,
            "speedup": dict_best / vec_best if vec_best else float("inf"),
            "max_abs_error": kernel_error,
        },
        "integration": {
            "scalar_seconds": scalar_best,
            "scalar_mean_seconds": scalar_mean,
            "vectorized_seconds": vec_int_best,
            "vectorized_mean_seconds": vec_int_mean,
            "speedup": scalar_best / vec_int_best if vec_int_best else float("inf"),
            "merges": vec_result.merges,
            "comparisons": vec_result.comparisons,
            "scalar_merges": scalar_merges,
            "scalar_comparisons": scalar_comparisons,
            "macro_clusters": len(vec_result.clusters),
            "identical_macro_clusters": (
                _signature(vec_result.clusters) == _signature(scalar_clusters)
            ),
        },
        "parallel_build": parallel_build,
        "serve_latency": serve_latency,
        "serve_load": serve_load,
        "trace_overhead": trace_overhead,
        "prof_overhead": prof_overhead,
        "query_io": query_io,
        "ingest_throughput": ingest_throughput,
        "naive_fixpoint": {
            "subset_clusters": len(subset),
            "rescan_seconds": rescan_best,
            "heap_vectorized_seconds": heap_best,
            "heap_vectorized_mean_seconds": heap_mean,
            "speedup": rescan_best / heap_best if heap_best else float("inf"),
            "rescan_merges": rescan_merges,
            "rescan_comparisons": rescan_comparisons,
            "heap_merges": heap_result.merges,
            "heap_comparisons": heap_result.comparisons,
            "identical_macro_clusters": (
                _signature(heap_result.clusters) == _signature(rescan_clusters)
            ),
        },
        "spans": {
            "phase_seconds": phase_seconds,
            "total_seconds": math.fsum(phase_seconds.values()),
        },
    }
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> str:
    """Human-readable summary of :func:`run_integration_benchmark`."""
    work = report["workload"]
    kernel = report["similarity_kernel"]
    integ = report["integration"]
    naive = report["naive_fixpoint"]
    naive_label = f"naive fixpoint (n={naive['subset_clusters']})"
    lines = [
        f"workload: {work['num_clusters']} micro-clusters "
        f"({work['pairs']} pairs), seed={work['seed']}, "
        f"min of {work['repeats']} runs",
        "",
        f"{'stage':<26}{'dict-loop':>12}{'vectorized':>12}{'speedup':>9}",
        f"{'similarity (all pairs)':<26}"
        f"{kernel['dict_loop_seconds']:>11.3f}s{kernel['vectorized_seconds']:>11.3f}s"
        f"{kernel['speedup']:>8.1f}x",
        f"{'integration (Alg. 3)':<26}"
        f"{integ['scalar_seconds']:>11.3f}s{integ['vectorized_seconds']:>11.3f}s"
        f"{integ['speedup']:>8.1f}x",
        f"{naive_label:<26}"
        f"{naive['rescan_seconds']:>11.3f}s"
        f"{naive['heap_vectorized_seconds']:>11.3f}s"
        f"{naive['speedup']:>8.1f}x",
        "",
        f"merges={integ['merges']} comparisons={integ['comparisons']} "
        f"(scalar path: {integ['scalar_comparisons']}) "
        f"macro_clusters={integ['macro_clusters']} "
        f"identical={integ['identical_macro_clusters']} "
        f"kernel_max_abs_error={kernel['max_abs_error']:.2e}",
        f"naive fixpoint: rescan comparisons={naive['rescan_comparisons']} "
        f"heap comparisons={naive['heap_comparisons']} "
        f"identical={naive['identical_macro_clusters']}",
    ]
    par = report.get("parallel_build")
    if par:
        lines.append(
            f"parallel build ({par['shard_by']}, {par['build_days']} days): "
            f"serial {par['serial_seconds']:.3f}s vs "
            f"{par['workers']} worker(s) {par['parallel_seconds']:.3f}s "
            f"({par['speedup']:.2f}x), {par['shards']} shards, "
            f"{par['clusters']} clusters, "
            f"identical={par['identical_macro_clusters']}"
        )
        if par.get("scaling"):
            curve = " ".join(
                f"{p['workers']}w={p['speedup']:.2f}x" for p in par["scaling"]
            )
            lines.append(
                f"scaling (cpu_count={par.get('cpu_count', '?')}): {curve}"
            )
    qio = report.get("query_io")
    if qio:
        lines.append(
            f"query io ({qio['query_days']} of {qio['build_days']} days): "
            f"columnar loaded {qio['bytes_loaded']}/{qio['bytes_mapped']} bytes "
            f"({qio['groups_loaded']}/{qio['groups_total']} groups, "
            f"partial={qio['partial_io']}), "
            f"pickle {qio['pickle_seconds'] * 1e3:.1f}ms vs "
            f"columnar {qio['columnar_seconds'] * 1e3:.1f}ms "
            f"({qio['speedup']:.2f}x), "
            f"identical={qio['identical_macro_clusters']}"
        )
    serve = report.get("serve_latency")
    if serve:
        lines.append(
            f"serve latency ({serve['requests']} in-process /query requests, "
            f"{serve['build_days']} built days): "
            f"p50 {serve['p50_seconds'] * 1e3:.1f}ms "
            f"p95 {serve['p95_seconds'] * 1e3:.1f}ms, "
            f"errors={serve['errors']}, "
            f"metrics render {serve['metrics_render_seconds'] * 1e3:.1f}ms"
        )
    load = report.get("serve_load")
    if load:
        lines.append(
            f"serve load (closed loop, {load['concurrency']} workers over "
            f"HTTP, {load['duration_seconds']:.1f}s): "
            f"{load['requests']} requests at {load['achieved_rate']:.1f}/s, "
            f"p50 {load['p50_seconds'] * 1e3:.1f}ms "
            f"p95 {load['p95_seconds'] * 1e3:.1f}ms "
            f"p99 {load['p99_seconds'] * 1e3:.1f}ms, "
            f"error rate {load['error_rate']:.2%}"
        )
    trace = report.get("trace_overhead")
    if trace:
        lines.append(
            f"trace overhead ({trace['requests']} in-process /query requests, "
            f"keep-everything sampler): "
            f"off {trace['off_mean_seconds'] * 1e3:.1f}ms vs "
            f"on {trace['on_mean_seconds'] * 1e3:.1f}ms mean "
            f"({trace['overhead_ratio']:.2f}x), "
            f"{trace['traces_kept']} traces kept"
        )
    prof = report.get("prof_overhead")
    if prof:
        lines.append(
            f"prof overhead ({prof['requests']} in-process /query requests, "
            f"{prof['hz']:g} Hz sampler): "
            f"off {prof['off_mean_seconds'] * 1e3:.1f}ms vs "
            f"on {prof['on_mean_seconds'] * 1e3:.1f}ms mean "
            f"({prof['overhead_ratio']:.2f}x), "
            f"{prof['stack_samples']} stack samples"
        )
    ing = report.get("ingest_throughput")
    if ing:
        lines.append(
            f"ingest throughput ({ing['stream_days']} streamed days, "
            f"{ing['events']} events): "
            f"{ing['events_per_second']:.0f} events/s live "
            f"({ing['stream_seconds']:.3f}s vs batch "
            f"{ing['batch_seconds']:.3f}s, "
            f"{ing['overhead_ratio']:.2f}x), "
            f"{ing['days_closed']} days closed, "
            f"{ing['week_macros']} week + {ing['month_macros']} month macros, "
            f"identical={ing['identical_macro_clusters']}"
        )
    spans = report.get("spans")
    if spans:
        phases = " ".join(
            f"{name}={seconds:.3f}s"
            for name, seconds in spans["phase_seconds"].items()
        )
        lines.append(
            f"phases: {phases} (total {spans['total_seconds']:.3f}s)"
        )
    return "\n".join(lines)
