"""Red-zone guided clustering (Property 5, Algorithm 4).

The total severity ``F(W, T)`` is distributive (Property 4), so it can be
aggregated bottom-up over *pre-defined* regions. Property 5 connects this
cheap measure to the cluster model: if a region's total severity over the
query time is below the significance bar ``delta_s * length(T) * N``, no
significant macro-cluster can live inside that region. Regions above the
bar are the **red zones**; micro-clusters that do not intersect any red
zone are pruned before integration, with no false negatives.

This module implements the red-zone computation and the pruning step; the
surrounding query strategies (All / Pru / Gui) live in
:mod:`repro.core.query`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Mapping, Sequence, Tuple

from repro.core.cluster import AtypicalCluster
from repro.core.significance import SignificanceThreshold
from repro.spatial.regions import District

__all__ = ["RedZones", "compute_red_zones", "filter_by_red_zones"]


@dataclass(frozen=True)
class RedZones:
    """The set of regions that may contain significant clusters."""

    districts: Tuple[District, ...]
    sensor_ids: frozenset[int]
    severities: Mapping[int, float]

    @property
    def num_zones(self) -> int:
        """Number of red-zone districts."""
        return len(self.districts)

    def covers(self, cluster: AtypicalCluster) -> bool:
        """True if the cluster intersects any red zone.

        Example 7: clusters *inside* a zone are kept, clusters that merely
        *intersect* one are also kept (they may contribute severity to a
        significant macro-cluster), only fully-outside clusters are pruned.
        """
        return any(sensor in self.sensor_ids for sensor in cluster.spatial)


def compute_red_zones(
    districts: Sequence[District],
    district_severity: Callable[[District], float],
    threshold: SignificanceThreshold,
) -> RedZones:
    """Property 5: keep districts with ``F(W_i, T) >= delta_s*length(T)*N``.

    ``district_severity`` supplies the bottom-up total ``F(W_i, T)`` for
    each pre-defined region, typically from the severity cube.

    Note the comparison is *non-strict* on the region total: Property 5
    only licenses pruning when ``F(W', T) < bar``, so regions exactly at
    the bar must be kept to preserve the no-false-negative guarantee.
    """
    kept: List[District] = []
    severities: dict[int, float] = {}
    sensor_ids: set[int] = set()
    bar = threshold.min_severity
    for district in districts:
        total = district_severity(district)
        severities[district.district_id] = total
        if total >= bar:
            kept.append(district)
            sensor_ids.update(district.sensor_ids)
    return RedZones(
        districts=tuple(kept),
        sensor_ids=frozenset(sensor_ids),
        severities=severities,
    )


def filter_by_red_zones(
    clusters: Iterable[AtypicalCluster],
    zones: RedZones,
) -> Tuple[List[AtypicalCluster], int]:
    """Algorithm 4 lines 2-3: drop clusters outside every red zone.

    Returns the qualified clusters and the number pruned.
    """
    kept: List[AtypicalCluster] = []
    pruned = 0
    zone_sensors = zones.sensor_ids
    for cluster in clusters:
        if any(sensor in zone_sensors for sensor in cluster.spatial):
            kept.append(cluster)
        else:
            pruned += 1
    return kept, pruned
