"""Cluster similarity (Equations 2-4) and balance functions ``g``.

The similarity between two atypical clusters averages a spatial and a
temporal component. Each component computes, for both clusters, the
fraction of the cluster's severity that falls on *common* sensors (or
windows), and balances the two fractions with a function ``g``:
max, min, arithmetic mean, geometric mean or harmonic mean (Sec. III-C).

The paper motivates the choice of ``g``: when a large cluster is compared
with a small one the common-severity fraction of the large cluster is
inevitably small, so ``max`` keeps such pairs similar while ``min`` is the
most conservative. Fig. 21 sweeps all five functions.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.core.cluster import AtypicalCluster

__all__ = [
    "BALANCE_FUNCTIONS",
    "balance_function",
    "spatial_similarity",
    "temporal_similarity",
    "similarity",
    "ClusterSimilarity",
]

BalanceFn = Callable[[float, float], float]


def _balance_max(p1: float, p2: float) -> float:
    return max(p1, p2)


def _balance_min(p1: float, p2: float) -> float:
    return min(p1, p2)


def _balance_arithmetic(p1: float, p2: float) -> float:
    return (p1 + p2) / 2.0


def _balance_geometric(p1: float, p2: float) -> float:
    return math.sqrt(p1 * p2)


def _balance_harmonic(p1: float, p2: float) -> float:
    if p1 + p2 == 0:
        return 0.0
    return 2.0 * p1 * p2 / (p1 + p2)


#: The five balance functions of the paper (Fig. 14 / Fig. 21), keyed by the
#: short names used in the figures.
BALANCE_FUNCTIONS: Mapping[str, BalanceFn] = {
    "max": _balance_max,
    "min": _balance_min,
    "avg": _balance_arithmetic,
    "geo": _balance_geometric,
    "har": _balance_harmonic,
}


def balance_function(name: str) -> BalanceFn:
    """Look up a balance function by its figure name (``avg`` is the default
    used throughout the evaluation)."""
    try:
        return BALANCE_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown balance function {name!r}; "
            f"expected one of {sorted(BALANCE_FUNCTIONS)}"
        ) from None


def spatial_similarity(
    a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn
) -> float:
    """Eq. 3: balanced common-sensor severity fractions."""
    p1 = a.spatial.overlap_fraction(b.spatial)
    p2 = b.spatial.overlap_fraction(a.spatial)
    return g(p1, p2)


def temporal_similarity(
    a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn
) -> float:
    """Eq. 4: balanced common-window severity fractions."""
    p1 = a.temporal.overlap_fraction(b.temporal)
    p2 = b.temporal.overlap_fraction(a.temporal)
    return g(p1, p2)


def similarity(a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn) -> float:
    """Eq. 2: the average of spatial and temporal similarity."""
    return 0.5 * (spatial_similarity(a, b, g) + temporal_similarity(a, b, g))


class ClusterSimilarity:
    """Configured similarity measure: a balance function plus Eq. 2.

    A small convenience wrapper so algorithms carry one object instead of a
    bare callable; also exposes a fast *reject* test — two clusters with no
    common sensor and no common window have similarity 0 under every
    balance function, which the integration index exploits.
    """

    def __init__(self, g: str | BalanceFn = "avg"):
        if callable(g):
            self._g = g
            self._name = getattr(g, "__name__", "custom")
        else:
            self._g = balance_function(g)
            self._name = g

    @property
    def name(self) -> str:
        return self._name

    @property
    def g(self) -> BalanceFn:
        return self._g

    def spatial(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        return spatial_similarity(a, b, self._g)

    def temporal(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        return temporal_similarity(a, b, self._g)

    def __call__(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        return similarity(a, b, self._g)

    @staticmethod
    def can_be_similar(a: AtypicalCluster, b: AtypicalCluster) -> bool:
        """False only when similarity is guaranteed to be 0.

        With disjoint sensor sets the spatial component is 0 for every
        ``g`` (both fractions are 0); likewise for windows. A positive
        similarity therefore requires a shared sensor or a shared window.
        """
        small_s, large_s = (
            (a.spatial, b.spatial)
            if len(a.spatial) <= len(b.spatial)
            else (b.spatial, a.spatial)
        )
        if any(key in large_s for key in small_s):
            return True
        small_t, large_t = (
            (a.temporal, b.temporal)
            if len(a.temporal) <= len(b.temporal)
            else (b.temporal, a.temporal)
        )
        return any(key in large_t for key in small_t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterSimilarity(g={self._name!r})"
