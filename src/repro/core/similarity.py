"""Cluster similarity (Equations 2-4) and balance functions ``g``.

The similarity between two atypical clusters averages a spatial and a
temporal component. Each component computes, for both clusters, the
fraction of the cluster's severity that falls on *common* sensors (or
windows), and balances the two fractions with a function ``g``:
max, min, arithmetic mean, geometric mean or harmonic mean (Sec. III-C).

The paper motivates the choice of ``g``: when a large cluster is compared
with a small one the common-severity fraction of the large cluster is
inevitably small, so ``max`` keeps such pairs similar while ``min`` is the
most conservative. Fig. 21 sweeps all five functions.

Every balance function also has a vectorized counterpart operating on
fraction arrays; :meth:`ClusterSimilarity.batch` scores one cluster
against a whole candidate set in a single kernel call and
:func:`pairwise_similarity` scores every pair of a cluster list with one
sparse product per dimension (see :mod:`repro.core.kernels`). On the five
named functions the scalar and vectorized paths agree bit for bit.
"""

from __future__ import annotations

import math
from typing import Callable, List, Mapping, Sequence

import numpy as np

from repro.core import kernels
from repro.core.cluster import AtypicalCluster

__all__ = [
    "BALANCE_FUNCTIONS",
    "VECTOR_BALANCE_FUNCTIONS",
    "balance_function",
    "vector_balance_function",
    "spatial_similarity",
    "temporal_similarity",
    "similarity",
    "pairwise_similarity",
    "ClusterSimilarity",
]

BalanceFn = Callable[[float, float], float]
VectorBalanceFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _balance_max(p1: float, p2: float) -> float:
    return max(p1, p2)


def _balance_min(p1: float, p2: float) -> float:
    return min(p1, p2)


def _balance_arithmetic(p1: float, p2: float) -> float:
    return (p1 + p2) / 2.0


def _balance_geometric(p1: float, p2: float) -> float:
    return math.sqrt(p1 * p2)


def _balance_harmonic(p1: float, p2: float) -> float:
    if p1 + p2 == 0:
        return 0.0
    return 2.0 * p1 * p2 / (p1 + p2)


def _vbalance_max(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    return np.maximum(p1, p2)


def _vbalance_min(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    return np.minimum(p1, p2)


def _vbalance_arithmetic(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    return (p1 + p2) / 2.0


def _vbalance_geometric(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    return np.sqrt(p1 * p2)


def _vbalance_harmonic(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    denom = p1 + p2
    with np.errstate(divide="ignore", invalid="ignore"):
        out = 2.0 * p1 * p2 / denom
    return np.where(denom == 0.0, 0.0, out)


#: The five balance functions of the paper (Fig. 14 / Fig. 21), keyed by the
#: short names used in the figures.
BALANCE_FUNCTIONS: Mapping[str, BalanceFn] = {
    "max": _balance_max,
    "min": _balance_min,
    "avg": _balance_arithmetic,
    "geo": _balance_geometric,
    "har": _balance_harmonic,
}

#: Vectorized counterparts operating element-wise on fraction arrays.
VECTOR_BALANCE_FUNCTIONS: Mapping[str, VectorBalanceFn] = {
    "max": _vbalance_max,
    "min": _vbalance_min,
    "avg": _vbalance_arithmetic,
    "geo": _vbalance_geometric,
    "har": _vbalance_harmonic,
}

_SCALAR_TO_VECTOR: Mapping[BalanceFn, VectorBalanceFn] = {
    BALANCE_FUNCTIONS[name]: VECTOR_BALANCE_FUNCTIONS[name]
    for name in BALANCE_FUNCTIONS
}


def balance_function(name: str) -> BalanceFn:
    """Look up a balance function by its figure name (``avg`` is the default
    used throughout the evaluation)."""
    try:
        return BALANCE_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown balance function {name!r}; "
            f"expected one of {sorted(BALANCE_FUNCTIONS)}"
        ) from None


def vector_balance_function(g: str | BalanceFn) -> VectorBalanceFn:
    """Vectorized form of ``g``: by figure name, by identity for the five
    built-in scalars, or an element-wise wrapper for custom callables."""
    if isinstance(g, str):
        if g not in VECTOR_BALANCE_FUNCTIONS:
            raise ValueError(
                f"unknown balance function {g!r}; "
                f"expected one of {sorted(VECTOR_BALANCE_FUNCTIONS)}"
            )
        return VECTOR_BALANCE_FUNCTIONS[g]
    mapped = _SCALAR_TO_VECTOR.get(g)
    if mapped is not None:
        return mapped

    def elementwise(p1: np.ndarray, p2: np.ndarray, _g: BalanceFn = g) -> np.ndarray:
        flat1 = np.asarray(p1, dtype=np.float64).ravel()
        flat2 = np.asarray(p2, dtype=np.float64).ravel()
        out = np.fromiter(
            (_g(float(a), float(b)) for a, b in zip(flat1, flat2)),
            dtype=np.float64,
            count=flat1.size,
        )
        return out.reshape(np.shape(p1))

    return elementwise


def spatial_similarity(
    a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn
) -> float:
    """Eq. 3: balanced common-sensor severity fractions."""
    p1 = a.spatial.overlap_fraction(b.spatial)
    p2 = b.spatial.overlap_fraction(a.spatial)
    return g(p1, p2)


def temporal_similarity(
    a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn
) -> float:
    """Eq. 4: balanced common-window severity fractions."""
    p1 = a.temporal.overlap_fraction(b.temporal)
    p2 = b.temporal.overlap_fraction(a.temporal)
    return g(p1, p2)


def similarity(a: AtypicalCluster, b: AtypicalCluster, g: BalanceFn) -> float:
    """Eq. 2: the average of spatial and temporal similarity."""
    return 0.5 * (spatial_similarity(a, b, g) + temporal_similarity(a, b, g))


def _fraction_matrix(totals: np.ndarray, numerators: np.ndarray) -> np.ndarray:
    """Row-normalize overlap numerators by each row's total severity."""
    safe = np.where(totals == 0.0, 1.0, totals)
    fractions = numerators / safe[:, None]
    fractions[totals == 0.0, :] = 0.0
    return fractions


def _pairwise_from_vector(
    clusters: Sequence[AtypicalCluster], g_vec: VectorBalanceFn
) -> np.ndarray:
    spatial = [c.spatial for c in clusters]
    temporal = [c.temporal for c in clusters]
    totals_s = np.fromiter(
        (f.total() for f in spatial), dtype=np.float64, count=len(clusters)
    )
    totals_t = np.fromiter(
        (f.total() for f in temporal), dtype=np.float64, count=len(clusters)
    )
    ps = _fraction_matrix(totals_s, kernels.pairwise_overlap_matrix(spatial))
    pt = _fraction_matrix(totals_t, kernels.pairwise_overlap_matrix(temporal))
    return 0.5 * (g_vec(ps, ps.T) + g_vec(pt, pt.T))


def pairwise_similarity(
    clusters: Sequence[AtypicalCluster], g: str | BalanceFn = "avg"
) -> np.ndarray:
    """Eq. 2 for every cluster pair at once.

    Packs all spatial (and temporal) features into one CSR matrix and
    derives every overlap numerator from a single sparse product per
    dimension; the balance function is applied element-wise. The diagonal
    is the self-similarity (1.0 for non-empty clusters).
    """
    return _pairwise_from_vector(clusters, vector_balance_function(g))


class ClusterSimilarity:
    """Configured similarity measure: a balance function plus Eq. 2.

    A small convenience wrapper so algorithms carry one object instead of a
    bare callable; also exposes a fast *reject* test — two clusters with no
    common sensor and no common window have similarity 0 under every
    balance function, which the integration index exploits — and the batch
    kernels used by :class:`~repro.core.integration.ClusterIntegrator`.
    """

    def __init__(self, g: str | BalanceFn = "avg"):
        if callable(g):
            self._g = g
            self._name = getattr(g, "__name__", "custom")
        else:
            self._g = balance_function(g)
            self._name = g
        self._g_vec = vector_balance_function(g)

    @property
    def name(self) -> str:
        """Name of the balance function: ``avg``, ``min`` or ``max``."""
        return self._name

    @property
    def g(self) -> BalanceFn:
        """The scalar balance function ``g`` of Eq. 3-4."""
        return self._g

    @property
    def g_vector(self) -> VectorBalanceFn:
        """Vectorized form of ``g`` used by the similarity kernels."""
        return self._g_vec

    def spatial(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        """Spatial similarity ``simS(a, b)`` (Eq. 3)."""
        return spatial_similarity(a, b, self._g)

    def temporal(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        """Temporal similarity ``simT(a, b)`` (Eq. 4)."""
        return temporal_similarity(a, b, self._g)

    def __call__(self, a: AtypicalCluster, b: AtypicalCluster) -> float:
        return similarity(a, b, self._g)

    # ------------------------------------------------------------------
    # Batch kernels
    # ------------------------------------------------------------------
    def batch(
        self, a: AtypicalCluster, others: Sequence[AtypicalCluster]
    ) -> np.ndarray:
        """Eq. 2 similarity of ``a`` against every candidate in one call.

        Bit-identical to calling the scalar path per pair (on the five
        named balance functions): the overlap kernels accumulate in the
        same ascending-key order and the fraction/balance arithmetic is
        the same IEEE expression applied element-wise.
        """
        n = len(others)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        spatial = [o.spatial for o in others]
        temporal = [o.temporal for o in others]
        s_own, s_theirs, t_own, t_theirs = kernels.batch_overlap_pair(
            a.spatial, a.temporal, spatial, temporal
        )
        totals_s = np.fromiter(
            (f.total() for f in spatial), dtype=np.float64, count=n
        )
        totals_t = np.fromiter(
            (f.total() for f in temporal), dtype=np.float64, count=n
        )
        # cluster features are non-empty with positive severities
        # (AtypicalCluster invariant), so every total is > 0
        own_s_total = a.spatial.total()
        own_t_total = a.temporal.total()
        p1_s = s_own / own_s_total if own_s_total else np.zeros(n)
        p1_t = t_own / own_t_total if own_t_total else np.zeros(n)
        p2_s = s_theirs / totals_s
        p2_t = t_theirs / totals_t
        return 0.5 * (self._g_vec(p1_s, p2_s) + self._g_vec(p1_t, p2_t))

    def matrix(self, clusters: Sequence[AtypicalCluster]) -> np.ndarray:
        """Eq. 2 for every pair of ``clusters`` via the CSR product kernel."""
        return _pairwise_from_vector(clusters, self._g_vec)

    def matrix_and_candidates(
        self, clusters: Sequence[AtypicalCluster], include_window: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pairwise Eq. 2 matrix plus the candidate mask in one pass.

        The candidate mask marks pairs with a shared sensor (or, when
        ``include_window`` is set, a shared window) — exactly the pairs the
        inverted indexes of the integrator would generate, read off the
        same overlap numerators the similarity needs anyway.
        """
        n = len(clusters)
        spatial = [c.spatial for c in clusters]
        temporal = [c.temporal for c in clusters]
        totals_s = np.fromiter(
            (f.total() for f in spatial), dtype=np.float64, count=n
        )
        totals_t = np.fromiter(
            (f.total() for f in temporal), dtype=np.float64, count=n
        )
        overlap_s = kernels.pairwise_overlap_matrix(spatial)
        overlap_t = kernels.pairwise_overlap_matrix(temporal)
        ps = _fraction_matrix(totals_s, overlap_s)
        pt = _fraction_matrix(totals_t, overlap_t)
        sim = 0.5 * (self._g_vec(ps, ps.T) + self._g_vec(pt, pt.T))
        candidates = overlap_s > 0.0
        if include_window:
            candidates |= overlap_t > 0.0
        return sim, candidates

    @staticmethod
    def can_be_similar(a: AtypicalCluster, b: AtypicalCluster) -> bool:
        """False only when similarity is guaranteed to be 0.

        With disjoint sensor sets the spatial component is 0 for every
        ``g`` (both fractions are 0); likewise for windows. A positive
        similarity therefore requires a shared sensor or a shared window.
        """
        return a.spatial.intersects(b.spatial) or a.temporal.intersects(
            b.temporal
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterSimilarity(g={self._name!r})"
