"""Analytical query processing (Sec. IV).

A query ``Q(W, T)`` asks for the significant atypical clusters in region
``W`` during time range ``T``. The processor selects the relevant
micro-clusters from the (partially materialized) atypical forest and
integrates them online, using one of three strategies from the evaluation:

* ``"all"`` — integrate every micro-cluster in range (the accuracy
  baseline; its significant clusters are the ground truth);
* ``"pru"`` — *beforehand pruning*: keep only micro-clusters significant at
  the daily scale before integrating (fast, but misses significant
  macro-clusters — no recall guarantee);
* ``"gui"`` — the paper's red-zone guided clustering (Algorithm 4):
  bottom-up region totals identify red zones (Property 5), clusters outside
  every red zone are pruned, and an optional final severity check removes
  false positives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, Tuple

from repro import obs
from repro.core.cluster import AtypicalCluster
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.core.redzone import compute_red_zones, filter_by_red_zones
from repro.core.significance import SignificanceThreshold, significant_clusters
from repro.spatial.regions import District, DistrictGrid, QueryRegion

__all__ = [
    "AnalyticalQuery",
    "QueryStats",
    "QueryResult",
    "StageCost",
    "QueryExplain",
    "RegionSeverityProvider",
    "QueryProcessor",
    "STRATEGIES",
]

STRATEGIES = ("all", "pru", "gui")


class RegionSeverityProvider(Protocol):
    """Bottom-up supplier of ``F(W_i, T)`` for pre-defined regions.

    Implemented by the severity cube (:mod:`repro.cube.datacube`); any
    object with this method can guide the red-zone computation.
    """

    def district_severity(self, district: District, days: Sequence[int]) -> float:
        """Total severity of ``district`` over the given days."""
        ...


@dataclass(frozen=True)
class AnalyticalQuery:
    """``Q(W, T)``: a spatial region and a day range."""

    region: QueryRegion
    days: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.days:
            raise ValueError("query needs at least one day")
        if len(set(self.days)) != len(self.days):
            raise ValueError("query days must be distinct")

    @classmethod
    def over_days(
        cls, region: QueryRegion, first_day: int, num_days: int
    ) -> "AnalyticalQuery":
        """Query covering ``num_days`` consecutive days from ``first_day``."""
        return cls(region, tuple(range(first_day, first_day + num_days)))

    @property
    def length_hours(self) -> float:
        """``length(T)`` in hours (days are contiguous in wall time)."""
        return len(self.days) * 24.0

    def threshold(self, delta_s: float) -> SignificanceThreshold:
        """The Def. 5 threshold bound to this query's scale."""
        return SignificanceThreshold(delta_s, self.length_hours, len(self.region))


@dataclass
class QueryStats:
    """Cost accounting of one query execution (Fig. 17).

    ``comparisons``/``merges``/``fast_rejects``/``rounds`` and the cache
    deltas mirror the :class:`~repro.core.integration.IntegrationResult`
    fields of the query's integration run, field for field.
    """

    elapsed_seconds: float = 0.0
    input_clusters: int = 0
    pruned_clusters: int = 0
    red_zones: int = 0
    candidate_districts: int = 0
    comparisons: int = 0
    merges: int = 0
    final_check_removed: int = 0
    fast_rejects: int = 0
    rounds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class StageCost:
    """One stage of a query explain report: a name, wall time, metrics."""

    name: str
    seconds: float
    metrics: Dict[str, object] = field(default_factory=dict)


@dataclass
class QueryExplain:
    """Structured per-stage cost report of one query execution.

    Produced by ``QueryProcessor.run(..., explain=True)`` (and surfaced by
    ``repro query --explain``). The ``integrate`` stage metrics are copied
    verbatim from the run's :class:`IntegrationResult`, so every count here
    is exact — no sampling, no re-derivation. ``io`` is optional storage
    accounting attached by the caller (the CLI adds catalog byte counters
    and model file sizes).
    """

    strategy: str
    first_day: int
    num_days: int
    region_sensors: int
    delta_s: float
    min_severity: float
    elapsed_seconds: float
    returned: int
    stages: List[StageCost] = field(default_factory=list)
    io: Dict[str, object] = field(default_factory=dict)

    def stage(self, name: str) -> Optional[StageCost]:
        """The stage named ``name``, or None when the strategy skipped it."""
        return next((s for s in self.stages if s.name == name), None)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (``repro query --explain-out``)."""
        return {
            "version": 1,
            "strategy": self.strategy,
            "first_day": self.first_day,
            "num_days": self.num_days,
            "region_sensors": self.region_sensors,
            "delta_s": self.delta_s,
            "min_severity": self.min_severity,
            "elapsed_seconds": self.elapsed_seconds,
            "returned": self.returned,
            "stages": [
                {"name": s.name, "seconds": s.seconds, **s.metrics}
                for s in self.stages
            ],
            "io": dict(self.io),
        }

    def render(self) -> str:
        """Terminal rendering in the ``repro stats`` style."""
        from repro.obs.exporters import format_seconds

        last_day = self.first_day + self.num_days - 1
        lines = [
            f"query explain: strategy={self.strategy} "
            f"days={self.first_day}..{last_day} "
            f"region={self.region_sensors} sensors "
            f"delta_s={self.delta_s:g} (bar {self.min_severity:,.0f} min)"
        ]
        width = max(len(s.name) for s in self.stages) if self.stages else 4
        for stage in self.stages:
            detail = " ".join(f"{k}={v}" for k, v in stage.metrics.items())
            lines.append(
                f"  {stage.name:<{width}}  "
                f"{format_seconds(stage.seconds):>10}  {detail}"
            )
        lines.append(
            f"  {'total':<{width}}  "
            f"{format_seconds(self.elapsed_seconds):>10}  "
            f"returned={self.returned}"
        )
        if self.io:
            parts = []
            for k, v in self.io.items():
                if isinstance(v, dict):
                    parts.extend(f"{k}.{sk}={sv}" for sk, sv in v.items())
                else:
                    parts.append(f"{k}={v}")
            lines.append(f"  io: {' '.join(parts)}")
        return "\n".join(lines)


@dataclass
class QueryResult:
    """Macro-clusters returned by one strategy, plus provenance."""

    query: AnalyticalQuery
    strategy: str
    returned: List[AtypicalCluster]
    threshold: SignificanceThreshold
    stats: QueryStats
    registry: Dict[int, AtypicalCluster] = field(default_factory=dict)
    explain: Optional["QueryExplain"] = None

    def significant(self) -> List[AtypicalCluster]:
        """The returned clusters that meet Def. 5."""
        return significant_clusters(self.returned, self.threshold)

    def leaf_ids(self, cluster: AtypicalCluster) -> FrozenSet[int]:
        """Micro-cluster leaf ids of ``cluster`` within this result.

        Used by the evaluation to match clusters across strategies: two
        strategies' clusters describe the same events when their leaf sets
        overlap.
        """
        if cluster.is_micro:
            return frozenset((cluster.cluster_id,))
        leaves: set[int] = set()
        stack: List[AtypicalCluster] = [cluster]
        while stack:
            node = stack.pop()
            if node.is_micro:
                leaves.add(node.cluster_id)
                continue
            for member in node.members:
                child = self.registry.get(member)
                if child is None:
                    # the member was itself a pre-materialized macro-cluster;
                    # treat it as a leaf of this result
                    leaves.add(member)
                else:
                    stack.append(child)
        return frozenset(leaves)


class QueryProcessor:
    """Online analytical query engine over an atypical forest."""

    def __init__(
        self,
        forest: AtypicalForest,
        districts: DistrictGrid,
        severity_provider: RegionSeverityProvider,
        delta_s: float = 0.05,
        integrator: Optional[ClusterIntegrator] = None,
    ):
        self._forest = forest
        self._districts = districts
        self._provider = severity_provider
        self._delta_s = float(delta_s)
        self._integrator = (
            integrator if integrator is not None else forest.integrator
        )

    @property
    def delta_s(self) -> float:
        """The significance-threshold fraction ``delta_s`` (Def. 5)."""
        return self._delta_s

    # ------------------------------------------------------------------
    def run(
        self,
        query: AnalyticalQuery,
        strategy: str = "gui",
        final_check: bool = False,
        delta_s: Optional[float] = None,
        use_materialized: bool = False,
        explain: bool = False,
    ) -> QueryResult:
        """Process ``query`` with the chosen strategy.

        ``final_check`` enables Algorithm 4 lines 5-7 (drop returned
        clusters below the significance bar). The paper disables it in the
        precision experiments "for a fair play", so it defaults to off.

        ``explain`` attaches a :class:`QueryExplain` per-stage cost report
        to the result. The stage counts are the exact integration and
        red-zone accounting of this run (never re-computed), so explain
        adds only a handful of clock reads to the query cost.

        ``use_materialized`` consumes pre-computed week-level
        macro-clusters for the whole calendar weeks covered by the query
        (Sec. III-C: "Such a forest (or parts of it) can be pre-computed
        to help process the analytical queries"), integrating only the
        leftover days' micro-clusters on top. Associativity of the merge
        (Property 3) keeps the resulting features identical up to merge
        order. Not combined with the Pru/Gui input filters — those operate
        on micro-clusters.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
        if use_materialized and strategy != "all":
            raise ValueError(
                "use_materialized only applies to the integrate-all strategy"
            )
        threshold = query.threshold(delta_s if delta_s is not None else self._delta_s)
        stats = QueryStats()
        stage_seconds: Dict[str, float] = {}
        started = time.perf_counter()

        with obs.span("query.run") as sp:
            with obs.span("query.select"):
                mark = time.perf_counter()
                if use_materialized:
                    micro = self._materialized_inputs(query)
                else:
                    micro = self._forest.micro_clusters(query.days, query.region)
                stage_seconds["select"] = time.perf_counter() - mark
                scanned = len(micro)
                mark = time.perf_counter()
                if strategy == "all":
                    qualified = micro
                elif strategy == "pru":
                    qualified = self._prune_beforehand(micro, threshold, stats)
                else:
                    qualified = self._red_zone_filter(
                        query, micro, threshold, stats
                    )
                stage_seconds["filter"] = time.perf_counter() - mark
            stats.input_clusters = len(qualified)

            registry: Dict[int, AtypicalCluster] = {
                c.cluster_id: c for c in qualified
            }
            mark = time.perf_counter()
            with obs.span("query.integrate"):
                outcome = self._integrator.integrate(qualified, self._forest.ids)
            stage_seconds["integrate"] = time.perf_counter() - mark
            stats.comparisons = outcome.comparisons
            stats.merges = outcome.merges
            stats.fast_rejects = outcome.fast_rejects
            stats.rounds = outcome.rounds
            stats.cache_hits = outcome.cache_hits
            stats.cache_misses = outcome.cache_misses
            returned = outcome.clusters
            # include every intermediate merge product so that leaf_ids() can
            # walk complete provenance chains
            registry.update(outcome.created)

            if final_check:
                mark = time.perf_counter()
                kept = [c for c in returned if threshold.is_significant(c)]
                stats.final_check_removed = len(returned) - len(kept)
                returned = kept
                stage_seconds["final_check"] = time.perf_counter() - mark

            stats.elapsed_seconds = time.perf_counter() - started
            if obs.enabled():
                obs.counter("query.runs").inc()
                obs.counter("query.input_clusters").inc(stats.input_clusters)
                obs.counter("query.pruned_clusters").inc(stats.pruned_clusters)
                obs.counter("query.returned_clusters").inc(len(returned))
                self._record_stage_costs(strategy, stage_seconds)
                sp.set(
                    strategy=strategy,
                    days=len(query.days),
                    input_clusters=stats.input_clusters,
                    pruned_clusters=stats.pruned_clusters,
                    red_zones=stats.red_zones,
                    returned=len(returned),
                )
        report: Optional[QueryExplain] = None
        if explain:
            report = self._build_explain(
                query, strategy, threshold, stats, stage_seconds,
                scanned, use_materialized, outcome, len(returned),
            )
        return QueryResult(
            query=query,
            strategy=strategy,
            returned=returned,
            threshold=threshold,
            stats=stats,
            registry=registry,
            explain=report,
        )

    def _record_stage_costs(
        self, strategy: str, stage_seconds: Dict[str, float]
    ) -> None:
        """Mirror this run's per-stage wall times into obs histograms.

        Aggregated across queries under ``query.stage.<name>_seconds``
        (explain-report stage names: the ``filter`` slot becomes ``prune``
        or ``redzone`` per strategy), these feed the query service's
        hottest-stages view without keeping per-request state.
        """
        from repro.obs.metrics import LATENCY_BUCKETS

        for raw_name, seconds in stage_seconds.items():
            name = raw_name
            if raw_name == "filter":
                if strategy == "pru":
                    name = "prune"
                elif strategy == "gui":
                    name = "redzone"
                else:
                    continue  # the All strategy has no filter stage
            obs.histogram(
                f"query.stage.{name}_seconds", LATENCY_BUCKETS
            ).observe(seconds)

    def _build_explain(
        self,
        query: AnalyticalQuery,
        strategy: str,
        threshold: SignificanceThreshold,
        stats: QueryStats,
        stage_seconds: Dict[str, float],
        scanned: int,
        use_materialized: bool,
        outcome,
        returned: int,
    ) -> "QueryExplain":
        """Assemble the per-stage report from this run's exact accounting."""
        stages: List[StageCost] = [
            StageCost(
                "select",
                stage_seconds["select"],
                {"scanned": scanned, "materialized": use_materialized},
            )
        ]
        if strategy == "pru":
            stages.append(
                StageCost(
                    "prune",
                    stage_seconds["filter"],
                    {"pruned": stats.pruned_clusters},
                )
            )
        elif strategy == "gui":
            stages.append(
                StageCost(
                    "redzone",
                    stage_seconds["filter"],
                    {
                        "candidate_districts": stats.candidate_districts,
                        "red_zones": stats.red_zones,
                        "pruned": stats.pruned_clusters,
                    },
                )
            )
        looked_up = outcome.cache_hits + outcome.cache_misses
        stages.append(
            StageCost(
                "integrate",
                stage_seconds["integrate"],
                {
                    "input_clusters": stats.input_clusters,
                    "output_clusters": len(outcome.clusters),
                    "comparisons": outcome.comparisons,
                    "merges": outcome.merges,
                    "fast_rejects": outcome.fast_rejects,
                    "rounds": outcome.rounds,
                    "cache_hits": outcome.cache_hits,
                    "cache_misses": outcome.cache_misses,
                    "cache_hit_ratio": (
                        round(outcome.cache_hits / looked_up, 4)
                        if looked_up
                        else 0.0
                    ),
                },
            )
        )
        if "final_check" in stage_seconds:
            stages.append(
                StageCost(
                    "final_check",
                    stage_seconds["final_check"],
                    {"removed": stats.final_check_removed},
                )
            )
        return QueryExplain(
            strategy=strategy,
            first_day=query.days[0],
            num_days=len(query.days),
            region_sensors=len(query.region),
            delta_s=threshold.delta_s,
            min_severity=threshold.min_severity,
            elapsed_seconds=stats.elapsed_seconds,
            returned=returned,
            stages=stages,
        )

    # ------------------------------------------------------------------
    def _prune_beforehand(
        self,
        micro: List[AtypicalCluster],
        threshold: SignificanceThreshold,
        stats: QueryStats,
    ) -> List[AtypicalCluster]:
        """The Pru baseline: keep micro-clusters significant at day scale."""
        daily = threshold.scaled(24.0)
        kept = [c for c in micro if daily.is_significant(c)]
        stats.pruned_clusters = len(micro) - len(kept)
        return kept

    def _red_zone_filter(
        self,
        query: AnalyticalQuery,
        micro: List[AtypicalCluster],
        threshold: SignificanceThreshold,
        stats: QueryStats,
    ) -> List[AtypicalCluster]:
        """Algorithm 4 lines 1-3: red zones then pruning."""
        with obs.span("query.redzone") as sp:
            candidates = self._districts.districts_in(query.region)
            stats.candidate_districts = len(candidates)
            zones = compute_red_zones(
                candidates,
                lambda district: self._provider.district_severity(
                    district, query.days
                ),
                threshold,
            )
            stats.red_zones = zones.num_zones
            kept, pruned = filter_by_red_zones(micro, zones)
            stats.pruned_clusters = pruned
            if obs.enabled():
                obs.counter("redzone.zones").inc(zones.num_zones)
                obs.counter("redzone.pruned_clusters").inc(pruned)
                sp.set(
                    candidate_districts=len(candidates),
                    red_zones=zones.num_zones,
                    pruned=pruned,
                )
        return kept

    def _materialized_inputs(self, query: AnalyticalQuery) -> List[AtypicalCluster]:
        """Week macro-clusters for fully covered weeks + leftover micros."""
        calendar = self._forest.calendar
        query_days = set(query.days)
        inputs: List[AtypicalCluster] = []
        consumed: set[int] = set()
        for week in sorted({calendar.week_of_day(d) for d in query.days}):
            week_days = set(calendar.week_day_range(week))
            if week_days <= query_days:
                inputs.extend(
                    c
                    for c in self._forest.week_clusters(week)
                    if c.intersects_sensors(query.region.sensor_ids)
                )
                consumed |= week_days
        leftover = sorted(query_days - consumed)
        inputs.extend(self._forest.micro_clusters(leftover, query.region))
        return inputs
