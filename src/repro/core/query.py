"""Analytical query processing (Sec. IV).

A query ``Q(W, T)`` asks for the significant atypical clusters in region
``W`` during time range ``T``. The processor selects the relevant
micro-clusters from the (partially materialized) atypical forest and
integrates them online, using one of three strategies from the evaluation:

* ``"all"`` — integrate every micro-cluster in range (the accuracy
  baseline; its significant clusters are the ground truth);
* ``"pru"`` — *beforehand pruning*: keep only micro-clusters significant at
  the daily scale before integrating (fast, but misses significant
  macro-clusters — no recall guarantee);
* ``"gui"`` — the paper's red-zone guided clustering (Algorithm 4):
  bottom-up region totals identify red zones (Property 5), clusters outside
  every red zone are pruned, and an optional final severity check removes
  false positives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, Tuple

from repro import obs
from repro.core.cluster import AtypicalCluster
from repro.core.forest import AtypicalForest
from repro.core.integration import ClusterIntegrator
from repro.core.redzone import compute_red_zones, filter_by_red_zones
from repro.core.significance import SignificanceThreshold, significant_clusters
from repro.spatial.regions import District, DistrictGrid, QueryRegion

__all__ = [
    "AnalyticalQuery",
    "QueryStats",
    "QueryResult",
    "RegionSeverityProvider",
    "QueryProcessor",
    "STRATEGIES",
]

STRATEGIES = ("all", "pru", "gui")


class RegionSeverityProvider(Protocol):
    """Bottom-up supplier of ``F(W_i, T)`` for pre-defined regions.

    Implemented by the severity cube (:mod:`repro.cube.datacube`); any
    object with this method can guide the red-zone computation.
    """

    def district_severity(self, district: District, days: Sequence[int]) -> float:
        """Total severity of ``district`` over the given days."""
        ...


@dataclass(frozen=True)
class AnalyticalQuery:
    """``Q(W, T)``: a spatial region and a day range."""

    region: QueryRegion
    days: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.days:
            raise ValueError("query needs at least one day")
        if len(set(self.days)) != len(self.days):
            raise ValueError("query days must be distinct")

    @classmethod
    def over_days(
        cls, region: QueryRegion, first_day: int, num_days: int
    ) -> "AnalyticalQuery":
        return cls(region, tuple(range(first_day, first_day + num_days)))

    @property
    def length_hours(self) -> float:
        """``length(T)`` in hours (days are contiguous in wall time)."""
        return len(self.days) * 24.0

    def threshold(self, delta_s: float) -> SignificanceThreshold:
        """The Def. 5 threshold bound to this query's scale."""
        return SignificanceThreshold(delta_s, self.length_hours, len(self.region))


@dataclass
class QueryStats:
    """Cost accounting of one query execution (Fig. 17)."""

    elapsed_seconds: float = 0.0
    input_clusters: int = 0
    pruned_clusters: int = 0
    red_zones: int = 0
    candidate_districts: int = 0
    comparisons: int = 0
    merges: int = 0
    final_check_removed: int = 0


@dataclass
class QueryResult:
    """Macro-clusters returned by one strategy, plus provenance."""

    query: AnalyticalQuery
    strategy: str
    returned: List[AtypicalCluster]
    threshold: SignificanceThreshold
    stats: QueryStats
    registry: Dict[int, AtypicalCluster] = field(default_factory=dict)

    def significant(self) -> List[AtypicalCluster]:
        """The returned clusters that meet Def. 5."""
        return significant_clusters(self.returned, self.threshold)

    def leaf_ids(self, cluster: AtypicalCluster) -> FrozenSet[int]:
        """Micro-cluster leaf ids of ``cluster`` within this result.

        Used by the evaluation to match clusters across strategies: two
        strategies' clusters describe the same events when their leaf sets
        overlap.
        """
        if cluster.is_micro:
            return frozenset((cluster.cluster_id,))
        leaves: set[int] = set()
        stack: List[AtypicalCluster] = [cluster]
        while stack:
            node = stack.pop()
            if node.is_micro:
                leaves.add(node.cluster_id)
                continue
            for member in node.members:
                child = self.registry.get(member)
                if child is None:
                    # the member was itself a pre-materialized macro-cluster;
                    # treat it as a leaf of this result
                    leaves.add(member)
                else:
                    stack.append(child)
        return frozenset(leaves)


class QueryProcessor:
    """Online analytical query engine over an atypical forest."""

    def __init__(
        self,
        forest: AtypicalForest,
        districts: DistrictGrid,
        severity_provider: RegionSeverityProvider,
        delta_s: float = 0.05,
        integrator: Optional[ClusterIntegrator] = None,
    ):
        self._forest = forest
        self._districts = districts
        self._provider = severity_provider
        self._delta_s = float(delta_s)
        self._integrator = (
            integrator if integrator is not None else forest.integrator
        )

    @property
    def delta_s(self) -> float:
        return self._delta_s

    # ------------------------------------------------------------------
    def run(
        self,
        query: AnalyticalQuery,
        strategy: str = "gui",
        final_check: bool = False,
        delta_s: Optional[float] = None,
        use_materialized: bool = False,
    ) -> QueryResult:
        """Process ``query`` with the chosen strategy.

        ``final_check`` enables Algorithm 4 lines 5-7 (drop returned
        clusters below the significance bar). The paper disables it in the
        precision experiments "for a fair play", so it defaults to off.

        ``use_materialized`` consumes pre-computed week-level
        macro-clusters for the whole calendar weeks covered by the query
        (Sec. III-C: "Such a forest (or parts of it) can be pre-computed
        to help process the analytical queries"), integrating only the
        leftover days' micro-clusters on top. Associativity of the merge
        (Property 3) keeps the resulting features identical up to merge
        order. Not combined with the Pru/Gui input filters — those operate
        on micro-clusters.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
        if use_materialized and strategy != "all":
            raise ValueError(
                "use_materialized only applies to the integrate-all strategy"
            )
        threshold = query.threshold(delta_s if delta_s is not None else self._delta_s)
        stats = QueryStats()
        started = time.perf_counter()

        with obs.span("query.run") as sp:
            with obs.span("query.select"):
                if use_materialized:
                    micro = self._materialized_inputs(query)
                else:
                    micro = self._forest.micro_clusters(query.days, query.region)
                if strategy == "all":
                    qualified = micro
                elif strategy == "pru":
                    qualified = self._prune_beforehand(micro, threshold, stats)
                else:
                    qualified = self._red_zone_filter(
                        query, micro, threshold, stats
                    )
            stats.input_clusters = len(qualified)

            registry: Dict[int, AtypicalCluster] = {
                c.cluster_id: c for c in qualified
            }
            with obs.span("query.integrate"):
                outcome = self._integrator.integrate(qualified, self._forest.ids)
            stats.comparisons = outcome.comparisons
            stats.merges = outcome.merges
            returned = outcome.clusters
            # include every intermediate merge product so that leaf_ids() can
            # walk complete provenance chains
            registry.update(outcome.created)

            if final_check:
                kept = [c for c in returned if threshold.is_significant(c)]
                stats.final_check_removed = len(returned) - len(kept)
                returned = kept

            stats.elapsed_seconds = time.perf_counter() - started
            if obs.enabled():
                obs.counter("query.runs").inc()
                obs.counter("query.input_clusters").inc(stats.input_clusters)
                obs.counter("query.pruned_clusters").inc(stats.pruned_clusters)
                obs.counter("query.returned_clusters").inc(len(returned))
                sp.set(
                    strategy=strategy,
                    days=len(query.days),
                    input_clusters=stats.input_clusters,
                    pruned_clusters=stats.pruned_clusters,
                    red_zones=stats.red_zones,
                    returned=len(returned),
                )
        return QueryResult(
            query=query,
            strategy=strategy,
            returned=returned,
            threshold=threshold,
            stats=stats,
            registry=registry,
        )

    # ------------------------------------------------------------------
    def _prune_beforehand(
        self,
        micro: List[AtypicalCluster],
        threshold: SignificanceThreshold,
        stats: QueryStats,
    ) -> List[AtypicalCluster]:
        """The Pru baseline: keep micro-clusters significant at day scale."""
        daily = threshold.scaled(24.0)
        kept = [c for c in micro if daily.is_significant(c)]
        stats.pruned_clusters = len(micro) - len(kept)
        return kept

    def _red_zone_filter(
        self,
        query: AnalyticalQuery,
        micro: List[AtypicalCluster],
        threshold: SignificanceThreshold,
        stats: QueryStats,
    ) -> List[AtypicalCluster]:
        """Algorithm 4 lines 1-3: red zones then pruning."""
        with obs.span("query.redzone") as sp:
            candidates = self._districts.districts_in(query.region)
            stats.candidate_districts = len(candidates)
            zones = compute_red_zones(
                candidates,
                lambda district: self._provider.district_severity(
                    district, query.days
                ),
                threshold,
            )
            stats.red_zones = zones.num_zones
            kept, pruned = filter_by_red_zones(micro, zones)
            stats.pruned_clusters = pruned
            if obs.enabled():
                obs.counter("redzone.zones").inc(zones.num_zones)
                obs.counter("redzone.pruned_clusters").inc(pruned)
                sp.set(
                    candidate_districts=len(candidates),
                    red_zones=zones.num_zones,
                    pruned=pruned,
                )
        return kept

    def _materialized_inputs(self, query: AnalyticalQuery) -> List[AtypicalCluster]:
        """Week macro-clusters for fully covered weeks + leftover micros."""
        calendar = self._forest.calendar
        query_days = set(query.days)
        inputs: List[AtypicalCluster] = []
        consumed: set[int] = set()
        for week in sorted({calendar.week_of_day(d) for d in query.days}):
            week_days = set(calendar.week_day_range(week))
            if week_days <= query_days:
                inputs.extend(
                    c
                    for c in self._forest.week_clusters(week)
                    if c.intersects_sensors(query.region.sensor_ids)
                )
                consumed |= week_days
        leftover = sorted(query_days - consumed)
        inputs.extend(self._forest.micro_clusters(leftover, query.region))
        return inputs
