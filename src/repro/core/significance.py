"""Significant clusters (Definition 5).

A cluster ``C`` is *significant* for a query ``Q(W, T)`` when

    severity(C) > delta_s * length(T) * N

where ``N`` is the number of sensors in ``W``. The paper leaves the unit
of ``length(T)`` implicit; this implementation measures it in **hours**,
which reconciles the magnitudes across the paper's figures (see DESIGN.md:
with minutes, nothing in the trace could ever be significant; with days,
nearly everything is). ``delta_s`` thus reads as "minutes of severity per
sensor-hour of query range", and it remains a *relative* threshold that
adapts to the query scale as Def. 5 intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.cluster import AtypicalCluster

__all__ = ["SignificanceThreshold", "significant_clusters"]


@dataclass(frozen=True)
class SignificanceThreshold:
    """The relative severity threshold ``delta_s`` bound to a query scale.

    Parameters
    ----------
    delta_s:
        Relative severity threshold (paper sweeps 2 % - 20 %, default 5 %).
    length_hours:
        ``length(T)`` of the query time range, in hours.
    num_sensors:
        ``N``, the number of sensors in the query region ``W``.
    """

    delta_s: float
    length_hours: float
    num_sensors: int

    def __post_init__(self) -> None:
        if not 0 < self.delta_s <= 1:
            raise ValueError(f"delta_s must be in (0, 1]: {self.delta_s}")
        if self.length_hours <= 0:
            raise ValueError("query length must be positive")
        if self.num_sensors <= 0:
            raise ValueError("query region must contain sensors")

    @property
    def min_severity(self) -> float:
        """The absolute severity bar ``delta_s * length(T) * N``."""
        return self.delta_s * self.length_hours * self.num_sensors

    def is_significant(self, cluster: AtypicalCluster) -> bool:
        """Definition 5 (strict inequality)."""
        return cluster.severity() > self.min_severity

    def is_significant_severity(self, severity: float) -> bool:
        """Same test on a raw severity value (used for region totals)."""
        return severity > self.min_severity

    def scaled(self, length_hours: float) -> "SignificanceThreshold":
        """The same ``delta_s`` re-bound to a different time length.

        The *beforehand pruning* baseline applies the daily-scale threshold
        to micro-clusters, i.e. ``scaled(24)``.
        """
        return SignificanceThreshold(self.delta_s, length_hours, self.num_sensors)


def significant_clusters(
    clusters: Iterable[AtypicalCluster],
    threshold: SignificanceThreshold,
) -> List[AtypicalCluster]:
    """Filter ``clusters`` to the significant ones, most severe first."""
    found = [c for c in clusters if threshold.is_significant(c)]
    found.sort(key=lambda c: (-c.severity(), c.cluster_id))
    return found
