"""Atypical cluster integration (Algorithm 3).

Repeatedly merges every cluster pair whose similarity exceeds ``delta_sim``
until no pair qualifies, turning micro-clusters into macro-clusters. Two
implementations are provided:

* ``"naive"`` — the literal Algorithm 3: scan all pairs, merge, repeat.
  Quadratic per pass; kept for cross-validation and the ablation bench.
* ``"indexed"`` — maintains inverted indexes ``sensor -> clusters`` and
  ``window -> clusters``. Only clusters sharing a sensor or a window can
  have non-zero similarity (see
  :meth:`~repro.core.similarity.ClusterSimilarity.can_be_similar`), so each
  cluster only ever compares against its index candidates. This is the
  production path.

The paper notes (Sec. V-D) that hard clustering makes the result order-
dependent in principle but that the influence is limited; both
implementations here use deterministic tie-breaking (highest similarity,
then lowest id) so results are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.merge import merge_clusters
from repro.core.similarity import ClusterSimilarity

__all__ = ["IntegrationResult", "ClusterIntegrator", "integrate"]


@dataclass
class IntegrationResult:
    """Outcome of one integration run.

    ``created`` maps the id of every intermediate merge product to its
    cluster, so callers can walk full provenance chains (the clustering
    tree) even for clusters that were merged again later.
    """

    clusters: List[AtypicalCluster]
    merges: int = 0
    comparisons: int = 0
    created: Dict[int, AtypicalCluster] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)


class ClusterIntegrator:
    """Configured Algorithm 3 runner.

    Parameters
    ----------
    threshold:
        ``delta_sim``; a pair merges when ``sim > threshold`` (strict, as in
        Algorithm 3 line 3). Default 0.5, the value the paper recommends.
    similarity:
        The configured Eq. 2 measure (balance function choice).
    method:
        ``"indexed"`` (default) or ``"naive"``.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        similarity: ClusterSimilarity | str = "avg",
        method: str = "indexed",
    ):
        if not 0 <= threshold <= 1:
            raise ValueError(f"similarity threshold must be in [0, 1]: {threshold}")
        if method not in ("indexed", "naive"):
            raise ValueError(f"unknown integration method: {method!r}")
        self._threshold = float(threshold)
        self._sim = (
            similarity
            if isinstance(similarity, ClusterSimilarity)
            else ClusterSimilarity(similarity)
        )
        self._method = method

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def similarity(self) -> ClusterSimilarity:
        return self._sim

    # ------------------------------------------------------------------
    def integrate(
        self,
        clusters: Iterable[AtypicalCluster],
        ids: Optional[ClusterIdGenerator] = None,
    ) -> IntegrationResult:
        """Run Algorithm 3 over ``clusters`` and return the macro-cluster set."""
        cluster_list = list(clusters)
        if ids is None:
            start = max((c.cluster_id for c in cluster_list), default=-1) + 1
            ids = ClusterIdGenerator(start)
        if len(cluster_list) <= 1:
            return IntegrationResult(clusters=cluster_list)
        if self._method == "naive":
            result = self._integrate_naive(cluster_list, ids)
        else:
            result = self._integrate_indexed(cluster_list, ids)
        result.clusters.sort(key=lambda c: (-c.severity(), c.cluster_id))
        return result

    # ------------------------------------------------------------------
    def _integrate_naive(
        self, clusters: List[AtypicalCluster], ids: ClusterIdGenerator
    ) -> IntegrationResult:
        active = list(clusters)
        created: Dict[int, AtypicalCluster] = {}
        merges = 0
        comparisons = 0
        changed = True
        while changed:
            changed = False
            n = len(active)
            best: Optional[Tuple[int, int]] = None
            best_key: Optional[Tuple[float, int, int]] = None
            for i in range(n):
                for j in range(i + 1, n):
                    comparisons += 1
                    sim = self._sim(active[i], active[j])
                    if sim > self._threshold:
                        key = (-sim, active[i].cluster_id, active[j].cluster_id)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = (i, j)
            if best is not None:
                i, j = best
                merged = merge_clusters(active[i], active[j], ids)
                created[merged.cluster_id] = merged
                # remove j first (j > i) to keep indexes valid
                del active[j]
                del active[i]
                active.append(merged)
                merges += 1
                changed = True
        return IntegrationResult(
            clusters=active, merges=merges, comparisons=comparisons, created=created
        )

    # ------------------------------------------------------------------
    def _integrate_indexed(
        self, clusters: List[AtypicalCluster], ids: ClusterIdGenerator
    ) -> IntegrationResult:
        active: Dict[int, AtypicalCluster] = {c.cluster_id: c for c in clusters}
        if len(active) != len(clusters):
            raise ValueError("duplicate cluster ids in integration input")
        by_sensor: Dict[int, Set[int]] = {}
        by_window: Dict[int, Set[int]] = {}

        def index_add(cluster: AtypicalCluster) -> None:
            for sensor in cluster.spatial:
                by_sensor.setdefault(sensor, set()).add(cluster.cluster_id)
            for window in cluster.temporal:
                by_window.setdefault(window, set()).add(cluster.cluster_id)

        def index_remove(cluster: AtypicalCluster) -> None:
            for sensor in cluster.spatial:
                bucket = by_sensor.get(sensor)
                if bucket is not None:
                    bucket.discard(cluster.cluster_id)
                    if not bucket:
                        del by_sensor[sensor]
            for window in cluster.temporal:
                bucket = by_window.get(window)
                if bucket is not None:
                    bucket.discard(cluster.cluster_id)
                    if not bucket:
                        del by_window[window]

        for cluster in clusters:
            index_add(cluster)

        # Sensor-disjoint clusters have spatial similarity 0 under every
        # balance function, so Eq. 2 bounds their similarity by 1/2. When
        # the merge threshold is at least 0.5 only clusters sharing a
        # sensor can merge, and the window index would only produce
        # candidates that are rejected anyway — skip it entirely.
        use_window_candidates = self._threshold < 0.5

        created: Dict[int, AtypicalCluster] = {}
        merges = 0
        comparisons = 0
        # Process lowest ids first for determinism.
        queue: List[int] = sorted(active)
        queued: Set[int] = set(queue)
        head = 0
        while head < len(queue):
            cid = queue[head]
            head += 1
            queued.discard(cid)
            cluster = active.get(cid)
            if cluster is None:
                continue
            candidates: Set[int] = set()
            for sensor in cluster.spatial:
                candidates.update(by_sensor.get(sensor, ()))
            if use_window_candidates:
                for window in cluster.temporal:
                    candidates.update(by_window.get(window, ()))
            candidates.discard(cid)

            best_sim = self._threshold
            best_id: Optional[int] = None
            for other_id in sorted(candidates):
                comparisons += 1
                sim = self._sim(cluster, active[other_id])
                # strict improvement: ties resolve to the lowest id because
                # candidates are visited in ascending id order
                if sim > best_sim:
                    best_sim = sim
                    best_id = other_id
            if best_id is None:
                continue

            other = active.pop(best_id)
            active.pop(cid)
            index_remove(cluster)
            index_remove(other)
            merged = merge_clusters(cluster, other, ids)
            created[merged.cluster_id] = merged
            active[merged.cluster_id] = merged
            index_add(merged)
            merges += 1
            if merged.cluster_id not in queued:
                queue.append(merged.cluster_id)
                queued.add(merged.cluster_id)

        return IntegrationResult(
            clusters=list(active.values()),
            merges=merges,
            comparisons=comparisons,
            created=created,
        )


def integrate(
    clusters: Iterable[AtypicalCluster],
    threshold: float = 0.5,
    similarity: ClusterSimilarity | str = "avg",
    method: str = "indexed",
    ids: Optional[ClusterIdGenerator] = None,
) -> IntegrationResult:
    """Functional wrapper around :class:`ClusterIntegrator` (Algorithm 3)."""
    return ClusterIntegrator(threshold, similarity, method).integrate(clusters, ids)
