"""Atypical cluster integration (Algorithm 3).

Repeatedly merges every cluster pair whose similarity exceeds ``delta_sim``
until no pair qualifies, turning micro-clusters into macro-clusters. Two
implementations are provided:

* ``"naive"`` — Algorithm 3 with all-pairs comparisons, but with the
  best-pair scan maintained *incrementally*: all qualifying pairs are
  scored once up front (one CSR sparse product via
  :func:`~repro.core.similarity.ClusterSimilarity.matrix`) and kept in a
  max-heap; each merge only scores the merged cluster against the
  remaining active set instead of re-scanning every pair. Kept for
  cross-validation and the ablation bench — it measures the *comparison
  strategy* (all pairs vs. index candidates), not wasted re-scans.
* ``"indexed"`` — maintains inverted indexes ``sensor -> clusters`` and
  ``window -> clusters``. Only clusters sharing a sensor or a window can
  have non-zero similarity (see
  :meth:`~repro.core.similarity.ClusterSimilarity.can_be_similar`), so each
  cluster only ever compares against its index candidates, scored as one
  batch kernel call per queue pop. This is the production path.

Both paths share a :class:`SimilarityCache`: similarities are functions of
immutable clusters, so across fixpoint iterations only pairs touching a
freshly merged cluster are ever recomputed — each merge costs
O(candidates) instead of a full re-scan. A cache may also be shared across
integration runs (the atypical forest does this for its day -> week ->
month levels and for re-materialization after cache invalidation).

``comparisons`` counts *unique* full Eq. 2-4 evaluations: pairs eliminated
by the ``can_be_similar`` fast reject or answered from the cache are not
counted. Both paths use the same fast reject, so the ablation measures the
candidate-generation strategy alone.

The paper notes (Sec. V-D) that hard clustering makes the result order-
dependent in principle but that the influence is limited; both
implementations here use deterministic tie-breaking (highest similarity,
then lowest cluster-id pair) so results are reproducible run to run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.merge import merge_clusters
from repro.core.similarity import ClusterSimilarity

__all__ = [
    "IntegrationResult",
    "SimilarityCache",
    "ClusterIntegrator",
    "integrate",
]


class SimilarityCache:
    """Memo of pair similarities keyed by ``(low_id, high_id)``.

    Valid indefinitely because clusters are immutable and ids are never
    reused within a session; merged-away clusters simply stop being looked
    up. The forest shares one cache across all its level materializations
    so that re-integrating after ``add_day`` invalidation only scores the
    pairs the new day introduced.
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: Dict[Tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(a_id: int, b_id: int) -> Tuple[int, int]:
        return (a_id, b_id) if a_id <= b_id else (b_id, a_id)

    def get(self, a_id: int, b_id: int) -> Optional[float]:
        """Cached similarity for the pair, counting a hit or a miss."""
        value = self._store.get(self._key(a_id, b_id))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, a_id: int, b_id: int, value: float) -> None:
        """Memoize the similarity of an id pair (order-insensitive)."""
        self._store[self._key(a_id, b_id)] = value

    def contains(self, a_id: int, b_id: int) -> bool:
        """Membership peek that does not touch the hit/miss counters."""
        return self._key(a_id, b_id) in self._store

    def merge_from(
        self,
        other: "SimilarityCache",
        id_map: Optional[Dict[int, int]] = None,
    ) -> int:
        """Absorb another cache's entries, optionally remapping ids.

        This is the shard-safety hook for parallel construction: a worker
        process integrates a shard under *local* (or temporary) cluster
        ids and ships its cache back; the reducer folds it into the
        forest's shared cache after remapping local ids to their canonical
        values. ``id_map`` translates ids — ids absent from the map are
        assumed to already be canonical (micro-cluster ids are never
        remapped by the materialization phase). Similarity is a pure
        function of the two immutable clusters (Eq. 2-4), so absorbed
        entries are exactly what the parent would have computed itself.

        Returns the number of entries absorbed. The hit/miss counters of
        ``other`` are folded in too, keeping metrics parity.
        """
        absorbed = 0
        if id_map:
            for (low, high), value in other._store.items():
                self._store[
                    self._key(id_map.get(low, low), id_map.get(high, high))
                ] = value
                absorbed += 1
        else:
            absorbed = len(other._store)
            self._store.update(other._store)
        self.hits += other.hits
        self.misses += other.misses
        return absorbed

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class IntegrationResult:
    """Outcome of one integration run.

    ``created`` maps the id of every intermediate merge product to its
    cluster, so callers can walk full provenance chains (the clustering
    tree) even for clusters that were merged again later. ``comparisons``
    counts unique full Eq. 2-4 evaluations (fast-rejected and cached pairs
    excluded). ``fast_rejects`` counts the comparisons the candidate
    structure avoided: pairs masked out of the matrix warm-up plus, per
    fixpoint iteration, the active clusters the index (or
    ``can_be_similar``) never offered as candidates — skip *events*, not
    unique pairs.

    ``rounds`` counts fixpoint driver iterations: queue pops for the
    indexed path, heap pops for the naive path — *including* stale
    entries skipped by lazy deletion, so it measures the driver's actual
    work, not just merges. ``cache_hits``/``cache_misses`` are this run's
    deltas of the (possibly shared) :class:`SimilarityCache` counters —
    the same numbers the observability layer exports, surfaced here so
    the query explain report can mirror them exactly.
    """

    clusters: List[AtypicalCluster]
    merges: int = 0
    comparisons: int = 0
    fast_rejects: int = 0
    created: Dict[int, AtypicalCluster] = field(default_factory=dict)
    rounds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)


class ClusterIntegrator:
    """Configured Algorithm 3 runner.

    Parameters
    ----------
    threshold:
        ``delta_sim``; a pair merges when ``sim > threshold`` (strict, as in
        Algorithm 3 line 3). Default 0.5, the value the paper recommends.
    similarity:
        The configured Eq. 2 measure (balance function choice).
    method:
        ``"indexed"`` (default) or ``"naive"``.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        similarity: ClusterSimilarity | str = "avg",
        method: str = "indexed",
    ):
        if not 0 <= threshold <= 1:
            raise ValueError(f"similarity threshold must be in [0, 1]: {threshold}")
        if method not in ("indexed", "naive"):
            raise ValueError(f"unknown integration method: {method!r}")
        self._threshold = float(threshold)
        self._sim = (
            similarity
            if isinstance(similarity, ClusterSimilarity)
            else ClusterSimilarity(similarity)
        )
        self._method = method

    @property
    def threshold(self) -> float:
        """The merge threshold ``delta_sim`` (Algorithm 3 stop condition)."""
        return self._threshold

    @property
    def similarity(self) -> ClusterSimilarity:
        """The :class:`ClusterSimilarity` measure in use (Eq. 2-4)."""
        return self._sim

    # ------------------------------------------------------------------
    def integrate(
        self,
        clusters: Iterable[AtypicalCluster],
        ids: Optional[ClusterIdGenerator] = None,
        cache: Optional[SimilarityCache] = None,
    ) -> IntegrationResult:
        """Run Algorithm 3 over ``clusters`` and return the macro-cluster set.

        ``cache`` (optional) carries pair similarities across runs; pass the
        same cache to successive integrations over overlapping inputs to
        only pay for pairs not seen before.
        """
        cluster_list = list(clusters)
        if ids is None:
            start = max((c.cluster_id for c in cluster_list), default=-1) + 1
            ids = ClusterIdGenerator(start)
        if len(cluster_list) <= 1:
            return IntegrationResult(clusters=cluster_list)
        if cache is None:
            cache = SimilarityCache()
        hits_before = cache.hits
        misses_before = cache.misses
        with obs.span("integrate.fixpoint") as sp:
            if self._method == "naive":
                result = self._integrate_naive(cluster_list, ids, cache)
            else:
                result = self._integrate_indexed(cluster_list, ids, cache)
            result.clusters.sort(key=lambda c: (-c.severity(), c.cluster_id))
            result.cache_hits = cache.hits - hits_before
            result.cache_misses = cache.misses - misses_before
            if obs.enabled():
                self._export_metrics(sp, result, len(cluster_list))
        return result

    def _export_metrics(
        self,
        sp,
        result: "IntegrationResult",
        inputs: int,
    ) -> None:
        """Feed one run's counters into the registry and span attributes.

        The per-run deltas of the :class:`SimilarityCache` attributes
        (mirrored onto ``result.cache_hits``/``cache_misses`` by
        :meth:`integrate`) are pushed here in one shot, so the hot loops
        never touch the registry and the legacy ``hits``/``misses``
        attributes stay the source of truth (the test suite asserts both
        views agree).
        """
        obs.counter("integration.runs").inc()
        obs.counter("integration.merges").inc(result.merges)
        obs.counter("integration.comparisons").inc(result.comparisons)
        obs.counter("integration.fast_rejects").inc(result.fast_rejects)
        obs.counter("integration.rounds").inc(result.rounds)
        obs.counter("similarity.cache.hits").inc(result.cache_hits)
        obs.counter("similarity.cache.misses").inc(result.cache_misses)
        obs.histogram("integration.input_clusters").observe(inputs)
        looked_up = result.cache_hits + result.cache_misses
        sp.set(
            method=self._method,
            input_clusters=inputs,
            output_clusters=len(result.clusters),
            merges=result.merges,
            comparisons=result.comparisons,
            fast_rejects=result.fast_rejects,
            rounds=result.rounds,
            cache_hit_ratio=(
                round(result.cache_hits / looked_up, 4) if looked_up else 0.0
            ),
        )

    # ------------------------------------------------------------------
    def _score_batch(
        self,
        cluster: AtypicalCluster,
        candidate_ids: List[int],
        active: Dict[int, AtypicalCluster],
        cache: SimilarityCache,
        assume_fresh: bool = False,
    ) -> Tuple[List[float], int]:
        """Similarities of ``cluster`` vs each candidate id, cache-first.

        All cache misses are scored in one vectorized kernel call; returns
        the similarity list (aligned with ``candidate_ids``) and the number
        of fresh evaluations. ``assume_fresh`` skips the per-candidate
        cache scan — valid when ``cluster``'s id was just minted (a fresh
        merge product), because ids are never reused so no pair involving
        it can already be cached.
        """
        cid = cluster.cluster_id
        # same-module fast path: touch the cache dict directly so the inner
        # loop pays one dict lookup per candidate instead of three calls
        store = cache._store
        if assume_fresh:
            values = self._sim.batch(
                cluster, [active[other_id] for other_id in candidate_ids]
            )
            sims = values.tolist()
            store.update(
                zip(
                    (
                        (cid, other_id) if cid <= other_id else (other_id, cid)
                        for other_id in candidate_ids
                    ),
                    sims,
                )
            )
            cache.misses += len(candidate_ids)
            return sims, len(candidate_ids)
        sims: List[Optional[float]] = [None] * len(candidate_ids)
        fresh_pos: List[int] = []
        for pos, other_id in enumerate(candidate_ids):
            key = (cid, other_id) if cid <= other_id else (other_id, cid)
            cached = store.get(key)
            if cached is None:
                fresh_pos.append(pos)
            else:
                sims[pos] = cached
        cache.hits += len(candidate_ids) - len(fresh_pos)
        cache.misses += len(fresh_pos)
        if fresh_pos:
            if len(fresh_pos) <= self._SCALAR_BATCH_CUTOFF:
                # a tiny fresh set is cheaper through the scalar path (bit-
                # identical to the kernel) than through a kernel call's
                # fixed overhead
                score = self._sim
                for pos in fresh_pos:
                    other_id = candidate_ids[pos]
                    value = score(cluster, active[other_id])
                    sims[pos] = value
                    store[
                        (cid, other_id) if cid <= other_id else (other_id, cid)
                    ] = value
            else:
                fresh_clusters = [active[candidate_ids[pos]] for pos in fresh_pos]
                values = self._sim.batch(cluster, fresh_clusters)
                for pos, value in zip(fresh_pos, values.tolist()):
                    sims[pos] = value
                    other_id = candidate_ids[pos]
                    store[
                        (cid, other_id) if cid <= other_id else (other_id, cid)
                    ] = value
        return sims, len(fresh_pos)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _integrate_naive(
        self,
        clusters: List[AtypicalCluster],
        ids: ClusterIdGenerator,
        cache: SimilarityCache,
    ) -> IntegrationResult:
        active: Dict[int, AtypicalCluster] = {c.cluster_id: c for c in clusters}
        if len(active) != len(clusters):
            raise ValueError("duplicate cluster ids in integration input")
        created: Dict[int, AtypicalCluster] = {}
        merges = 0
        comparisons = 0
        fast_rejects = 0
        threshold = self._threshold
        # (-sim, low_id, high_id): pops the highest similarity first, ties
        # resolve to the lexicographically smallest id pair
        heap: List[Tuple[float, int, int]] = []

        def push_qualifying(a_id: int, b_id: int, sim: float) -> None:
            if sim > threshold:
                low, high = (a_id, b_id) if a_id <= b_id else (b_id, a_id)
                heapq.heappush(heap, (-sim, low, high))

        # Seed every qualifying pair once. One CSR sparse product scores
        # the whole input; its candidate mask (pairs sharing a sensor or a
        # window) doubles as the ``can_be_similar`` fast reject — masked-out
        # pairs have exactly similarity 0 and are neither counted nor
        # pushed. Pairs a shared cache already knows are overwritten with
        # bit-identical values; only the genuinely new ones count.
        ordered = sorted(active)
        sim_matrix, candidates = self._sim.matrix_and_candidates(
            [active[cid] for cid in ordered], True
        )
        rows, cols = np.nonzero(np.triu(candidates, k=1))
        id_arr = np.asarray(ordered, dtype=np.int64)
        pair_a = id_arr[rows].tolist()
        pair_b = id_arr[cols].tolist()
        values = sim_matrix[rows, cols]
        store = cache._store
        before = len(store)
        store.update(zip(zip(pair_a, pair_b), values.tolist()))
        comparisons += len(store) - before
        n = len(ordered)
        fast_rejects += n * (n - 1) // 2 - len(pair_a)
        for pos in np.nonzero(values > threshold)[0].tolist():
            heapq.heappush(heap, (-float(values[pos]), pair_a[pos], pair_b[pos]))

        rounds = 0
        while heap:
            rounds += 1
            neg_sim, a_id, b_id = heapq.heappop(heap)
            first = active.get(a_id)
            second = active.get(b_id)
            if first is None or second is None:
                continue  # stale: one side was already merged away
            del active[a_id]
            del active[b_id]
            merged = merge_clusters(first, second, ids)
            created[merged.cluster_id] = merged
            merges += 1
            # incremental best-pair maintenance: only the merged cluster's
            # pairs are new — everything else in the heap stays valid
            if active:
                candidate_ids = [
                    oid
                    for oid in sorted(active)
                    if ClusterSimilarity.can_be_similar(merged, active[oid])
                ]
                fast_rejects += len(active) - len(candidate_ids)
                sims, fresh = self._score_batch(
                    merged, candidate_ids, active, cache
                )
                comparisons += fresh
                for oid, sim in zip(candidate_ids, sims):
                    push_qualifying(merged.cluster_id, oid, sim)
            active[merged.cluster_id] = merged

        return IntegrationResult(
            clusters=list(active.values()),
            merges=merges,
            comparisons=comparisons,
            fast_rejects=fast_rejects,
            created=created,
            rounds=rounds,
        )

    # Above this size the n x n similarity matrix of the warm-up pass costs
    # more memory than the per-pop batch path saves (2048**2 float64 = 32 MB).
    _WARM_CAP = 2048
    # Fresh sets at or below this size go through the scalar similarity
    # (bit-identical); the kernel's fixed call overhead only pays off on
    # larger candidate batches.
    _SCALAR_BATCH_CUTOFF = 8

    def _warm_cache(
        self,
        active: Dict[int, AtypicalCluster],
        include_window: bool,
        cache: SimilarityCache,
    ) -> Tuple[int, int]:
        """Pre-score every candidate pair with one CSR matrix product.

        Filling the cache up front turns the per-pop ``_score_batch`` calls
        of the indexed fixpoint into pure hits for all original-input pairs;
        only pairs touching a freshly merged cluster are scored later.
        Returns ``(fresh, rejected)``: the number of fresh evaluations
        (pairs not already cached) and the number of pairs the candidate
        mask proved trivially dissimilar.
        """
        n = len(active)
        if n < 2 or n > self._WARM_CAP:
            return 0, 0
        ordered = sorted(active)
        sim, candidates = self._sim.matrix_and_candidates(
            [active[cid] for cid in ordered], include_window
        )
        rows, cols = np.nonzero(np.triu(candidates, k=1))
        id_arr = np.asarray(ordered, dtype=np.int64)
        # ordered is ascending and row < col, so each pair is already a
        # cache key; one bulk dict.update instead of a per-pair loop.
        # Pairs a shared cache already knows are overwritten with the same
        # value (the matrix and batch kernels are bit-identical).
        store = cache._store
        before = len(store)
        store.update(
            zip(
                zip(id_arr[rows].tolist(), id_arr[cols].tolist()),
                sim[rows, cols].tolist(),
            )
        )
        return len(store) - before, n * (n - 1) // 2 - len(rows)

    # ------------------------------------------------------------------
    def _integrate_indexed(
        self,
        clusters: List[AtypicalCluster],
        ids: ClusterIdGenerator,
        cache: SimilarityCache,
    ) -> IntegrationResult:
        active: Dict[int, AtypicalCluster] = {c.cluster_id: c for c in clusters}
        if len(active) != len(clusters):
            raise ValueError("duplicate cluster ids in integration input")
        by_sensor: Dict[int, Set[int]] = {}
        by_window: Dict[int, Set[int]] = {}

        def index_add(cluster: AtypicalCluster) -> None:
            for sensor in cluster.spatial:
                by_sensor.setdefault(sensor, set()).add(cluster.cluster_id)
            for window in cluster.temporal:
                by_window.setdefault(window, set()).add(cluster.cluster_id)

        def index_remove(cluster: AtypicalCluster) -> None:
            for sensor in cluster.spatial:
                bucket = by_sensor.get(sensor)
                if bucket is not None:
                    bucket.discard(cluster.cluster_id)
                    if not bucket:
                        del by_sensor[sensor]
            for window in cluster.temporal:
                bucket = by_window.get(window)
                if bucket is not None:
                    bucket.discard(cluster.cluster_id)
                    if not bucket:
                        del by_window[window]

        for cluster in clusters:
            index_add(cluster)

        def collect_candidates(cluster: AtypicalCluster) -> Set[int]:
            found: Set[int] = set()
            for sensor in cluster.spatial:
                found.update(by_sensor.get(sensor, ()))
            if use_window_candidates:
                for window in cluster.temporal:
                    found.update(by_window.get(window, ()))
            found.discard(cluster.cluster_id)
            return found

        # Sensor-disjoint clusters have spatial similarity 0 under every
        # balance function, so Eq. 2 bounds their similarity by 1/2. When
        # the merge threshold is at least 0.5 only clusters sharing a
        # sensor can merge, and the window index would only produce
        # candidates that are rejected anyway — skip it entirely.
        use_window_candidates = self._threshold < 0.5

        created: Dict[int, AtypicalCluster] = {}
        merges = 0
        fast_rejects = 0
        comparisons, fast_rejects = self._warm_cache(
            active, use_window_candidates, cache
        )
        # Process lowest ids first for determinism.
        queue: List[int] = sorted(active)
        queued: Set[int] = set(queue)
        head = 0
        rounds = 0
        while head < len(queue):
            rounds += 1
            cid = queue[head]
            head += 1
            queued.discard(cid)
            cluster = active.get(cid)
            if cluster is None:
                continue
            candidates = collect_candidates(cluster)
            # index pruning: active clusters never offered as candidates
            # are comparisons the inverted indexes saved this iteration
            fast_rejects += len(active) - 1 - len(candidates)
            if not candidates:
                continue

            # one batch kernel call scores the node's whole candidate set;
            # pairs already known (from a previous iteration or a shared
            # forest cache) are answered from the cache
            candidate_ids = sorted(candidates)
            sims, fresh = self._score_batch(cluster, candidate_ids, active, cache)
            comparisons += fresh

            best_sim = self._threshold
            best_id: Optional[int] = None
            for other_id, sim in zip(candidate_ids, sims):
                # strict improvement: ties resolve to the lowest id because
                # candidates are visited in ascending id order
                if sim > best_sim:
                    best_sim = sim
                    best_id = other_id
            if best_id is None:
                continue

            other = active.pop(best_id)
            active.pop(cid)
            index_remove(cluster)
            index_remove(other)
            merged = merge_clusters(cluster, other, ids)
            created[merged.cluster_id] = merged
            active[merged.cluster_id] = merged
            index_add(merged)
            merges += 1
            # score the merged cluster against its whole candidate set now,
            # in one batch call; later pops that see it answer from the
            # cache instead of paying a tiny kernel call per stale pair
            new_candidates = collect_candidates(merged)
            if new_candidates:
                _, fresh = self._score_batch(
                    merged, sorted(new_candidates), active, cache,
                    assume_fresh=True,
                )
                comparisons += fresh
            if merged.cluster_id not in queued:
                queue.append(merged.cluster_id)
                queued.add(merged.cluster_id)

        return IntegrationResult(
            clusters=list(active.values()),
            merges=merges,
            comparisons=comparisons,
            fast_rejects=fast_rejects,
            created=created,
            rounds=rounds,
        )


def integrate(
    clusters: Iterable[AtypicalCluster],
    threshold: float = 0.5,
    similarity: ClusterSimilarity | str = "avg",
    method: str = "indexed",
    ids: Optional[ClusterIdGenerator] = None,
    cache: Optional[SimilarityCache] = None,
) -> IntegrationResult:
    """Functional wrapper around :class:`ClusterIntegrator` (Algorithm 3)."""
    return ClusterIntegrator(threshold, similarity, method).integrate(
        clusters, ids, cache
    )
