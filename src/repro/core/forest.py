"""Clustering trees and the atypical forest (Sec. III-C, Fig. 10).

Micro-clusters are the leaves; macro-clusters integrate them level by level
(day -> week -> month), and the hierarchy of different aggregation paths
forms the *atypical forest*. In practical deployments only the lower levels
are materialized (Sec. IV) and higher levels are integrated on demand by
the query processor.

The forest keeps a registry of every cluster it has produced, so the
clustering tree of any macro-cluster can be traversed through the
``members`` provenance links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.integration import ClusterIntegrator, SimilarityCache
from repro.spatial.regions import QueryRegion
from repro.temporal.hierarchy import Calendar
from repro.temporal.windows import WindowSpec

__all__ = ["AtypicalForest", "ForestStats"]


@dataclass(frozen=True)
class ForestStats:
    """Cluster counts per materialized level (feeds Fig. 20)."""

    num_days: int
    num_micro: int
    num_week_macro: int
    num_month_macro: int


class AtypicalForest:
    """Partially materialized hierarchy of atypical clusters.

    Day-level micro-clusters are always stored; week and month levels are
    materialized lazily through :meth:`week_clusters` / :meth:`month_clusters`
    using the configured integrator (Algorithm 3).
    """

    def __init__(
        self,
        calendar: Calendar,
        window_spec: WindowSpec = WindowSpec(),
        integrator: Optional[ClusterIntegrator] = None,
        ids: Optional[ClusterIdGenerator] = None,
    ):
        self._calendar = calendar
        self._spec = window_spec
        self._integrator = integrator if integrator is not None else ClusterIntegrator()
        self._ids = ids if ids is not None else ClusterIdGenerator()
        self._micro_by_day: Dict[int, List[AtypicalCluster]] = {}
        self._week_cache: Dict[int, List[AtypicalCluster]] = {}
        self._month_cache: Dict[int, List[AtypicalCluster]] = {}
        self._registry: Dict[int, AtypicalCluster] = {}
        # shared across every level materialization: after add_day
        # invalidates a week/month, re-integration only scores the pairs
        # the new day introduced (cluster ids are never reused, so stale
        # entries are simply never looked up again)
        self._sim_cache = SimilarityCache()
        # how the forest was constructed (set by the sharded builder);
        # deliberately independent of the worker count so that serial and
        # parallel builds of the same shard plan serialize identically
        self._provenance: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def calendar(self) -> Calendar:
        """The day/week/month calendar the forest levels follow."""
        return self._calendar

    @property
    def window_spec(self) -> WindowSpec:
        """The time-of-day window spec shared with extraction."""
        return self._spec

    @property
    def ids(self) -> ClusterIdGenerator:
        """The forest's cluster-id generator; ids are never reused."""
        return self._ids

    @property
    def integrator(self) -> ClusterIntegrator:
        """The Algorithm 3 integrator used to materialize levels."""
        return self._integrator

    @property
    def similarity_cache(self) -> SimilarityCache:
        """The pair-similarity memo shared by all level materializations."""
        return self._sim_cache

    @property
    def days(self) -> List[int]:
        """Days with stored micro-clusters, ascending."""
        return sorted(self._micro_by_day)

    @property
    def provenance(self) -> Optional[Dict[str, object]]:
        """Shard provenance recorded by the parallel builder, or None.

        A JSON-compatible description of how the day partition was
        constructed: the shard axis (``day`` / ``day-district``), the
        district connectivity groups, and per-shard cluster-id ranges. It
        is a function of the shard *plan*, never of the worker count, so
        ``--workers 1`` and ``--workers 4`` builds serialize byte-for-byte
        identically (see :mod:`repro.storage.forest_io`).
        """
        return self._provenance

    def set_provenance(self, provenance: Optional[Dict[str, object]]) -> None:
        """Attach shard provenance (see :attr:`provenance`)."""
        self._provenance = dict(provenance) if provenance is not None else None

    # ------------------------------------------------------------------
    def add_day(self, day: int, clusters: Sequence[AtypicalCluster]) -> None:
        """Store the micro-clusters extracted for ``day``.

        Invalidates any cached week/month materialization covering the day.
        """
        if day in self._micro_by_day:
            raise ValueError(f"day {day} already added to the forest")
        self._micro_by_day[day] = list(clusters)
        for cluster in clusters:
            self._register(cluster)
        self._week_cache.pop(self._calendar.week_of_day(day), None)
        self._month_cache.pop(self._calendar.month_of_day(day), None)

    def _register(self, cluster: AtypicalCluster) -> None:
        existing = self._registry.get(cluster.cluster_id)
        if existing is not None and existing is not cluster:
            raise ValueError(f"duplicate cluster id in forest: {cluster.cluster_id}")
        self._registry[cluster.cluster_id] = cluster

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def day_clusters(self, day: int) -> List[AtypicalCluster]:
        """Micro-clusters of one day (empty if the day was never added)."""
        return list(self._micro_by_day.get(day, ()))

    def micro_clusters(
        self,
        days: Iterable[int],
        region: Optional[QueryRegion] = None,
    ) -> List[AtypicalCluster]:
        """Micro-clusters of the given days, optionally region-filtered.

        A cluster qualifies when at least one of its sensors lies in the
        query region — events straddling the region boundary still
        contribute severity inside it.
        """
        result: List[AtypicalCluster] = []
        for day in days:
            for cluster in self._micro_by_day.get(day, ()):
                if region is None or cluster.intersects_sensors(region.sensor_ids):
                    result.append(cluster)
        return result

    def week_clusters(self, week: int) -> List[AtypicalCluster]:
        """Macro-clusters of one calendar week (materialized on demand)."""
        cached = self._week_cache.get(week)
        if cached is None:
            micro = self.micro_clusters(self._calendar.week_day_range(week))
            cached = self._integrate_and_register(micro)
            self._week_cache[week] = cached
        return list(cached)

    def month_clusters(self, month: int) -> List[AtypicalCluster]:
        """Macro-clusters of one calendar month.

        Follows the day -> week -> month aggregation path of Fig. 10: the
        month level integrates the materialized week clusters, exercising
        the associativity of the merge (Property 3).
        """
        cached = self._month_cache.get(month)
        if cached is None:
            weeks = sorted(
                {
                    self._calendar.week_of_day(day)
                    for day in self._calendar.month_day_range(month)
                    if day in self._micro_by_day
                }
            )
            inputs: List[AtypicalCluster] = []
            for week in weeks:
                inputs.extend(self.week_clusters(week))
            cached = self._integrate_and_register(inputs)
            self._month_cache[month] = cached
        return list(cached)

    def materialize(self) -> "ForestStats":
        """Materialize every week and month level covering the stored days.

        Follows the day -> week -> month path of Fig. 10 bottom-up, so the
        month level consumes the freshly built week clusters; all candidate
        pairs of one level are scored through the batch similarity kernels
        and remembered in the shared cache for later re-materializations.
        """
        weeks = sorted({self._calendar.week_of_day(d) for d in self._micro_by_day})
        for week in weeks:
            self.week_clusters(week)
        months = sorted({self._calendar.month_of_day(d) for d in self._micro_by_day})
        for month in months:
            self.month_clusters(month)
        return self.stats()

    def _integrate_and_register(
        self, clusters: List[AtypicalCluster]
    ) -> List[AtypicalCluster]:
        result = self._integrator.integrate(clusters, self._ids, self._sim_cache)
        # register intermediate merge products too: the clustering tree
        # walks ``members`` links through them down to the micro leaves
        for cluster in result.created.values():
            self._register(cluster)
        for cluster in result.clusters:
            self._register(cluster)
        return result.clusters

    # ------------------------------------------------------------------
    # Externally computed materializations (see repro.parallel.reduce)
    # ------------------------------------------------------------------
    def install_week(
        self,
        week: int,
        clusters: Sequence[AtypicalCluster],
        created: Sequence[AtypicalCluster] = (),
    ) -> None:
        """Install a week materialization computed outside the forest.

        The parallel builder integrates week shards in worker processes
        (Algorithm 3) and installs the remapped results here. Registration
        order matches :meth:`_integrate_and_register` — intermediate merge
        products first, result clusters second — so a forest populated
        this way serializes identically to one that materialized in
        process. Clusters that survived integration unmerged must be the
        registry's own objects (use :meth:`lookup`), because re-registering
        an id with a different object is an error.
        """
        if week in self._week_cache:
            raise ValueError(f"week {week} already materialized")
        for cluster in created:
            self._register(cluster)
        for cluster in clusters:
            self._register(cluster)
        self._week_cache[week] = list(clusters)

    def install_month(
        self,
        month: int,
        clusters: Sequence[AtypicalCluster],
        created: Sequence[AtypicalCluster] = (),
    ) -> None:
        """Install a month materialization (see :meth:`install_week`)."""
        if month in self._month_cache:
            raise ValueError(f"month {month} already materialized")
        for cluster in created:
            self._register(cluster)
        for cluster in clusters:
            self._register(cluster)
        self._month_cache[month] = list(clusters)

    # ------------------------------------------------------------------
    # Provenance (clustering trees)
    # ------------------------------------------------------------------
    def lookup(self, cluster_id: int) -> AtypicalCluster:
        """The registered cluster with this id (KeyError if unknown)."""
        return self._registry[cluster_id]

    def children_of(self, cluster: AtypicalCluster) -> List[AtypicalCluster]:
        """Registered child clusters that were merged into ``cluster``."""
        return [self._registry[m] for m in cluster.members if m in self._registry]

    def leaves_of(self, cluster: AtypicalCluster) -> List[AtypicalCluster]:
        """Micro-cluster leaves of a macro-cluster's clustering tree."""
        if cluster.is_micro:
            return [cluster]
        leaves: List[AtypicalCluster] = []
        stack = [cluster]
        while stack:
            node = stack.pop()
            if node.is_micro:
                leaves.append(node)
            else:
                stack.extend(self.children_of(node))
        return leaves

    # ------------------------------------------------------------------
    # Persistence support (see repro.storage.forest_io)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Structural snapshot: every registered cluster plus the id maps."""
        return {
            "clusters": list(self._registry.values()),
            "micro_by_day": {
                day: [c.cluster_id for c in clusters]
                for day, clusters in self._micro_by_day.items()
            },
            "week_cache": {
                week: [c.cluster_id for c in clusters]
                for week, clusters in self._week_cache.items()
            },
            "month_cache": {
                month: [c.cluster_id for c in clusters]
                for month, clusters in self._month_cache.items()
            },
            "provenance": self._provenance,
        }

    def import_state(
        self,
        clusters: Sequence[AtypicalCluster],
        micro_by_day: Dict[int, List[int]],
        week_cache: Dict[int, List[int]],
        month_cache: Dict[int, List[int]],
        provenance: Optional[Dict[str, object]] = None,
    ) -> None:
        """Restore a snapshot into an empty forest."""
        if self._registry or self._micro_by_day:
            raise ValueError("import_state requires an empty forest")
        self._provenance = dict(provenance) if provenance is not None else None
        for cluster in clusters:
            self._register(cluster)
        for day, ids in micro_by_day.items():
            self._micro_by_day[day] = [self._registry[i] for i in ids]
        for week, ids in week_cache.items():
            self._week_cache[week] = [self._registry[i] for i in ids]
        for month, ids in month_cache.items():
            self._month_cache[month] = [self._registry[i] for i in ids]

    # ------------------------------------------------------------------
    def stats(self) -> ForestStats:
        """Counts of materialized clusters at each level."""
        return ForestStats(
            num_days=len(self._micro_by_day),
            num_micro=sum(len(v) for v in self._micro_by_day.values()),
            num_week_macro=sum(len(v) for v in self._week_cache.values()),
            num_month_macro=sum(len(v) for v in self._month_cache.values()),
        )

    def __iter__(self) -> Iterator[AtypicalCluster]:
        for day in sorted(self._micro_by_day):
            yield from self._micro_by_day[day]
