"""Spatial and temporal features of atypical clusters (Definition 4).

A micro-cluster summarizes an atypical event with two algebraic features:

* the **spatial feature** ``SF = {<s_i, mu_i>}`` where ``mu_i`` is the
  aggregated severity of sensor ``s_i`` over the event, and
* the **temporal feature** ``TF = {<t_j, nu_j>}`` where ``nu_j`` is the
  aggregated severity over all sensors during window ``t_j``.

Both are severity-weighted multisets over integer keys and share one
implementation, :class:`SeverityFeature`. The merge operation implements
Equations 5/6 and is commutative and associative (Properties 2-3), which the
test suite verifies with property-based tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

__all__ = ["SeverityFeature", "SpatialFeature", "TemporalFeature"]


class SeverityFeature:
    """An immutable mapping ``key -> aggregated severity`` (minutes).

    Keys are sensor ids for spatial features and window indices for temporal
    features. Severities are strictly positive; merging sums severities on
    common keys and keeps the non-overlapping ones (Eq. 5/6).
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[int, float] | Iterable[Tuple[int, float]] = ()):
        data: Dict[int, float] = {}
        pairs = items.items() if isinstance(items, Mapping) else items
        for key, severity in pairs:
            severity = float(severity)
            if severity <= 0:
                raise ValueError(
                    f"feature severities must be positive, got {severity} for key {key}"
                )
            data[int(key)] = data.get(int(key), 0.0) + severity
        self._items = data

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __contains__(self, key: int) -> bool:
        return key in self._items

    def __getitem__(self, key: int) -> float:
        return self._items[key]

    def get(self, key: int, default: float = 0.0) -> float:
        return self._items.get(key, default)

    def keys(self) -> frozenset[int]:
        return frozenset(self._items)

    def items(self) -> Iterator[Tuple[int, float]]:
        return iter(self._items.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeverityFeature):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(frozenset(self._items.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(
            f"<{k}, {v:g}>" for k, v in sorted(self._items.items())[:4]
        )
        suffix = ", ..." if len(self._items) > 4 else ""
        return f"{type(self).__name__}({{{preview}{suffix}}})"

    # ------------------------------------------------------------------
    # Severity arithmetic
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Total severity over all keys; ``severity(C)`` sums this."""
        return sum(self._items.values())

    def overlap(self, other: "SeverityFeature") -> float:
        """Severity of *this* feature restricted to keys shared with ``other``.

        This is the numerator of Eq. 3/4: ``sum_{S1 ∩ S2} mu_1``. Note the
        asymmetry — each side of the similarity uses its own severities.
        """
        if len(self) <= len(other):
            return sum(v for k, v in self._items.items() if k in other._items)
        return sum(self._items[k] for k in other._items if k in self._items)

    def overlap_fraction(self, other: "SeverityFeature") -> float:
        """``overlap(other) / total()`` — one argument of the balance function."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.overlap(other) / total

    def merge(self, other: "SeverityFeature") -> "SeverityFeature":
        """Eq. 5/6: sum severities on common keys, keep the rest (Algorithm 2)."""
        merged = dict(self._items)
        for key, severity in other._items.items():
            merged[key] = merged.get(key, 0.0) + severity
        result = SeverityFeature()
        result._items = merged
        return result

    def restricted(self, keys: Iterable[int]) -> "SeverityFeature":
        """Sub-feature on the given keys (used by query-range clipping)."""
        wanted = set(int(k) for k in keys)
        result = SeverityFeature()
        result._items = {k: v for k, v in self._items.items() if k in wanted}
        return result

    def argmax(self) -> Tuple[int, float]:
        """The most severe key, e.g. 'on which road segment is the
        congestion most serious' from Example 1."""
        if not self._items:
            raise ValueError("empty feature has no argmax")
        key = max(self._items, key=lambda k: (self._items[k], -k))
        return key, self._items[key]

    def min_key(self) -> int:
        """Smallest key (e.g. the start window of an event)."""
        if not self._items:
            raise ValueError("empty feature has no keys")
        return min(self._items)

    def max_key(self) -> int:
        if not self._items:
            raise ValueError("empty feature has no keys")
        return max(self._items)

    def top(self, k: int) -> list[Tuple[int, float]]:
        """The ``k`` most severe entries, most severe first."""
        return sorted(self._items.items(), key=lambda item: (-item[1], item[0]))[:k]


class SpatialFeature(SeverityFeature):
    """``SF``: aggregated severity per sensor (Def. 4)."""

    __slots__ = ()

    def merge(self, other: "SeverityFeature") -> "SpatialFeature":
        merged = super().merge(other)
        result = SpatialFeature()
        result._items = merged._items
        return result

    def restricted(self, keys: Iterable[int]) -> "SpatialFeature":
        base = super().restricted(keys)
        result = SpatialFeature()
        result._items = base._items
        return result


class TemporalFeature(SeverityFeature):
    """``TF``: aggregated severity per time window (Def. 4)."""

    __slots__ = ()

    def merge(self, other: "SeverityFeature") -> "TemporalFeature":
        merged = super().merge(other)
        result = TemporalFeature()
        result._items = merged._items
        return result

    def restricted(self, keys: Iterable[int]) -> "TemporalFeature":
        base = super().restricted(keys)
        result = TemporalFeature()
        result._items = base._items
        return result
