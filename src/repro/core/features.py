"""Spatial and temporal features of atypical clusters (Definition 4).

A micro-cluster summarizes an atypical event with two algebraic features:

* the **spatial feature** ``SF = {<s_i, mu_i>}`` where ``mu_i`` is the
  aggregated severity of sensor ``s_i`` over the event, and
* the **temporal feature** ``TF = {<t_j, nu_j>}`` where ``nu_j`` is the
  aggregated severity over all sensors during window ``t_j``.

Both are severity-weighted multisets over integer keys and share one
implementation, :class:`SeverityFeature`. The merge operation implements
Equations 5/6 and is commutative and associative (Properties 2-3), which the
test suite verifies with property-based tests.

The representation is array-backed: a sorted ``int64`` key array, a parallel
``float64`` severity array, and a cached total. That turns the Eq. 3/4
overlap numerators into ``searchsorted`` kernels, the Eq. 5/6 merge into a
``reduceat`` segment sum, and lets :mod:`repro.core.kernels` pack many
features into one CSR matrix for batch similarity scoring. All severity
sums run in ascending-key order, so the scalar and batch kernels produce
bit-identical floats (see DESIGN.md, "Performance architecture").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Tuple

import numpy as np

__all__ = ["SeverityFeature", "SpatialFeature", "TemporalFeature"]


class SeverityFeature:
    """An immutable mapping ``key -> aggregated severity`` (minutes).

    Keys are sensor ids for spatial features and window indices for temporal
    features. Severities are strictly positive; merging sums severities on
    common keys and keeps the non-overlapping ones (Eq. 5/6).

    Internally the feature stores a sorted ``int64`` key array and a parallel
    ``float64`` severity array (both frozen), plus the cached total severity.
    """

    __slots__ = ("_keys", "_values", "_total", "_cached_hash")

    def __init__(self, items: Mapping[int, float] | Iterable[Tuple[int, float]] = ()):
        data: dict[int, float] = {}
        pairs = items.items() if isinstance(items, Mapping) else items
        for key, severity in pairs:
            severity = float(severity)
            if severity <= 0:
                raise ValueError(
                    f"feature severities must be positive, got {severity} for key {key}"
                )
            data[int(key)] = data.get(int(key), 0.0) + severity
        keys = np.fromiter(data.keys(), dtype=np.int64, count=len(data))
        values = np.fromiter(data.values(), dtype=np.float64, count=len(data))
        order = np.argsort(keys, kind="stable")
        self._set_arrays(keys[order], values[order])

    # ------------------------------------------------------------------
    # Array-backed constructors
    # ------------------------------------------------------------------
    def _set_arrays(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys.flags.writeable = False
        values.flags.writeable = False
        self._keys = keys
        self._values = values
        self._total = float(values.sum()) if values.size else 0.0
        self._cached_hash = None

    @classmethod
    def _from_sorted(cls, keys: np.ndarray, values: np.ndarray) -> "SeverityFeature":
        """Internal: wrap already-sorted, unique-key, positive arrays."""
        result = cls.__new__(cls)
        result._set_arrays(keys, values)
        return result

    @classmethod
    def from_arrays(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        assume_sorted: bool = False,
        validate: bool = True,
    ) -> "SeverityFeature":
        """Build a feature from parallel key/severity arrays.

        Keys must be unique; with ``assume_sorted`` they must also be in
        ascending order. ``validate`` controls the positivity/uniqueness
        checks — callers that already aggregated severities from positive
        records (e.g. the event extractor) can skip them.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be parallel 1-d arrays")
        if not assume_sorted:
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = values[order]
        if validate:
            if values.size and float(values.min()) <= 0.0:
                raise ValueError("feature severities must be positive")
            if keys.size > 1 and not np.all(keys[1:] > keys[:-1]):
                raise ValueError("feature keys must be unique and ascending")
        if keys.flags.writeable:
            keys = keys.copy()
        if values.flags.writeable:
            values = values.copy()
        return cls._from_sorted(keys, values)

    @classmethod
    def from_aggregates(cls, aggregates: Mapping[int, float]) -> "SeverityFeature":
        """Fast path for ``key -> severity`` dicts of positive aggregates.

        Skips the per-item coercion loop of ``__init__``; used by the
        streaming tracker and event extractor whose accumulators already
        hold positive per-key sums.
        """
        keys = np.fromiter(aggregates.keys(), dtype=np.int64, count=len(aggregates))
        values = np.fromiter(
            aggregates.values(), dtype=np.float64, count=len(aggregates)
        )
        if values.size and float(values.min()) <= 0.0:
            raise ValueError("feature severities must be positive")
        order = np.argsort(keys, kind="stable")
        result = cls.__new__(cls)
        result._set_arrays(keys[order], values[order])
        return result

    # ------------------------------------------------------------------
    # Array views (consumed by repro.core.kernels)
    # ------------------------------------------------------------------
    @property
    def key_array(self) -> np.ndarray:
        """Sorted ``int64`` keys (read-only view)."""
        return self._keys

    @property
    def value_array(self) -> np.ndarray:
        """Severities parallel to :attr:`key_array` (read-only view)."""
        return self._values

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def _find(self, key: int) -> int:
        """Index of ``key`` in the sorted key array, or -1."""
        keys = self._keys
        if keys.size == 0:
            return -1
        pos = int(np.searchsorted(keys, key))
        if pos < keys.size and keys[pos] == key:
            return pos
        return -1

    def __len__(self) -> int:
        return self._keys.size

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys.tolist())

    def __contains__(self, key: int) -> bool:
        return self._find(key) >= 0

    def __getitem__(self, key: int) -> float:
        pos = self._find(key)
        if pos < 0:
            raise KeyError(key)
        return float(self._values[pos])

    def get(self, key: int, default: float = 0.0) -> float:
        """Severity at ``key``, or ``default`` when the key is absent."""
        pos = self._find(key)
        return float(self._values[pos]) if pos >= 0 else default

    def keys(self) -> frozenset[int]:
        """The feature's keys as a frozenset."""
        return frozenset(self._keys.tolist())

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(key, severity)`` pairs in ascending key order."""
        return iter(zip(self._keys.tolist(), self._values.tolist()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeverityFeature):
            return NotImplemented
        return np.array_equal(self._keys, other._keys) and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        if self._cached_hash is None:
            self._cached_hash = hash(
                (self._keys.tobytes(), self._values.tobytes())
            )
        return self._cached_hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(
            f"<{k}, {v:g}>" for k, v in list(self.items())[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return f"{type(self).__name__}({{{preview}{suffix}}})"

    # ------------------------------------------------------------------
    # Severity arithmetic
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Total severity over all keys; ``severity(C)`` sums this. Cached."""
        return self._total

    def overlap(self, other: "SeverityFeature") -> float:
        """Severity of *this* feature restricted to keys shared with ``other``.

        This is the numerator of Eq. 3/4: ``sum_{S1 ∩ S2} mu_1``. Note the
        asymmetry — each side of the similarity uses its own severities.
        The sum runs in ascending-key order (the shared convention of all
        kernels, see module docstring).
        """
        keys, values = self._keys, self._values
        other_keys = other._keys
        if keys.size == 0 or other_keys.size == 0:
            return 0.0
        pos = np.searchsorted(other_keys, keys)
        np.minimum(pos, other_keys.size - 1, out=pos)
        mask = other_keys[pos] == keys
        if not mask.any():
            return 0.0
        # cumsum scans sequentially in key order, matching the batch
        # kernels' bincount accumulation bit for bit (np.sum would use
        # pairwise summation and drift at the last ulp)
        return float(np.cumsum(values[mask])[-1])

    def overlap_fraction(self, other: "SeverityFeature") -> float:
        """``overlap(other) / total()`` — one argument of the balance function."""
        total = self._total
        if total == 0:
            return 0.0
        return self.overlap(other) / total

    def intersects(self, other: "SeverityFeature") -> bool:
        """True when the two key sets share at least one key (fast reject)."""
        keys, other_keys = self._keys, other._keys
        if keys.size == 0 or other_keys.size == 0:
            return False
        # disjoint key ranges settle most rejects with two scalar compares
        if keys[-1] < other_keys[0] or other_keys[-1] < keys[0]:
            return False
        if keys.size > other_keys.size:
            keys, other_keys = other_keys, keys
        pos = other_keys.searchsorted(keys)
        np.minimum(pos, other_keys.size - 1, out=pos)
        return bool((other_keys[pos] == keys).any())

    def merge(self, other: "SeverityFeature") -> "SeverityFeature":
        """Eq. 5/6: sum severities on common keys, keep the rest (Algorithm 2).

        Implemented as a stable-sorted concatenation plus a ``reduceat``
        segment sum; on common keys this adds *this* feature's severity
        first, exactly like the scalar accumulation it replaced.
        """
        return type(self)._merge_arrays(
            (self._keys, other._keys), (self._values, other._values)
        )

    @classmethod
    def merge_all(cls, features: Iterable["SeverityFeature"]) -> "SeverityFeature":
        """K-way Eq. 5/6 merge in one kernel call (used by ``merge_many``)."""
        feature_list = list(features)
        if not feature_list:
            return cls()
        if len(feature_list) == 1:
            single = feature_list[0]
            return cls._from_sorted(single._keys, single._values)
        return cls._merge_arrays(
            tuple(f._keys for f in feature_list),
            tuple(f._values for f in feature_list),
        )

    @classmethod
    def _merge_arrays(
        cls,
        key_arrays: Tuple[np.ndarray, ...],
        value_arrays: Tuple[np.ndarray, ...],
    ) -> "SeverityFeature":
        keys = np.concatenate(key_arrays)
        if keys.size == 0:
            return cls()
        values = np.concatenate(value_arrays)
        # stable: equal keys stay in operand order, so segment sums
        # accumulate left-to-right like the scalar fold they replaced
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        starts = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
        return cls._from_sorted(keys[starts], np.add.reduceat(values, starts))

    def restricted(self, keys: Iterable[int]) -> "SeverityFeature":
        """Sub-feature on the given keys (used by query-range clipping)."""
        if isinstance(keys, SeverityFeature):
            wanted = keys._keys
        else:
            wanted = np.unique(
                np.fromiter((int(k) for k in keys), dtype=np.int64)
            )
        own = self._keys
        if own.size == 0 or wanted.size == 0:
            return type(self)()
        pos = np.searchsorted(wanted, own)
        np.minimum(pos, wanted.size - 1, out=pos)
        mask = wanted[pos] == own
        return type(self)._from_sorted(own[mask].copy(), self._values[mask].copy())

    def argmax(self) -> Tuple[int, float]:
        """The most severe key, e.g. 'on which road segment is the
        congestion most serious' from Example 1."""
        if self._keys.size == 0:
            raise ValueError("empty feature has no argmax")
        # first maximum = smallest key among ties (keys are sorted)
        pos = int(np.argmax(self._values))
        return int(self._keys[pos]), float(self._values[pos])

    def min_key(self) -> int:
        """Smallest key (e.g. the start window of an event)."""
        if self._keys.size == 0:
            raise ValueError("empty feature has no keys")
        return int(self._keys[0])

    def max_key(self) -> int:
        """Largest key; raises ``ValueError`` on an empty feature."""
        if self._keys.size == 0:
            raise ValueError("empty feature has no keys")
        return int(self._keys[-1])

    def top(self, k: int) -> list[Tuple[int, float]]:
        """The ``k`` most severe entries, most severe first."""
        # stable sort on descending severity: ties keep ascending key order
        order = np.argsort(-self._values, kind="stable")[:k]
        return [
            (int(self._keys[i]), float(self._values[i])) for i in order
        ]


class SpatialFeature(SeverityFeature):
    """``SF``: aggregated severity per sensor (Def. 4)."""

    __slots__ = ()


class TemporalFeature(SeverityFeature):
    """``TF``: aggregated severity per time window (Def. 4)."""

    __slots__ = ()
