"""Online atypical-event tracking.

The abstract promises "scalable, flexible and online analysis"; the batch
extractor (Algorithm 1) needs a full day of records, but a deployed CPS
receives readings window by window. :class:`OnlineEventTracker` maintains
the open atypical events incrementally:

* each arriving window's records join an open event when they are within
  ``delta_d`` of one of its recent records (Def. 1 against the event's
  *frontier* — records newer than ``delta_t`` ago);
* records bridging several open events merge them (Def. 2 transitivity);
* an event with no frontier left (quiet for ``delta_t``) is *closed* and
  emitted as a micro-cluster.

The tracker produces exactly the same events as the batch extractor when
fed the same records in window order (the test suite verifies this), while
holding only the open events in memory — the streaming counterpart of
Proposition 1's one-scan claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro import obs
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.features import SpatialFeature, TemporalFeature
from repro.core.records import RecordBatch
from repro.spatial.grid import SensorGridIndex
from repro.spatial.network import SensorNetwork
from repro.temporal.windows import WindowSpec

__all__ = ["OpenEvent", "OnlineEventTracker", "NO_ORDER_KEY"]

#: Sentinel order key for an event that has absorbed no records yet; any
#: real packed ``(sensor, window)`` key is smaller.
NO_ORDER_KEY = (1 << 63) - 1


@dataclass
class OpenEvent:
    """An atypical event still receiving records.

    Aggregates the micro-cluster features incrementally; the *frontier*
    maps each recently-active sensor to the last window it reported, which
    is all Def. 1 needs to test whether a new record joins the event.
    """

    event_id: int
    spatial: Dict[int, float] = field(default_factory=dict)
    temporal: Dict[int, float] = field(default_factory=dict)
    frontier: Dict[int, int] = field(default_factory=dict)
    last_window: int = -1
    num_records: int = 0
    order_key: int = NO_ORDER_KEY

    def absorb(
        self,
        sensor: int,
        window: int,
        severity: float,
        tf_key: int,
        order_key: Optional[int] = None,
    ) -> None:
        """Fold one record into the running feature maps.

        ``order_key`` is the record's packed canonical-order key (see
        :attr:`OnlineEventTracker.order_keys`); the event keeps the
        minimum over all absorbed records.
        """
        self.spatial[sensor] = self.spatial.get(sensor, 0.0) + severity
        self.temporal[tf_key] = self.temporal.get(tf_key, 0.0) + severity
        current = self.frontier.get(sensor)
        if current is None or window > current:
            self.frontier[sensor] = window
        if window > self.last_window:
            self.last_window = window
        if order_key is not None and order_key < self.order_key:
            self.order_key = order_key
        self.num_records += 1

    def merge_from(self, other: "OpenEvent") -> None:
        """Absorb another open event after a record bridges the two."""
        for sensor, severity in other.spatial.items():
            self.spatial[sensor] = self.spatial.get(sensor, 0.0) + severity
        for key, severity in other.temporal.items():
            self.temporal[key] = self.temporal.get(key, 0.0) + severity
        for sensor, window in other.frontier.items():
            if self.frontier.get(sensor, -1) < window:
                self.frontier[sensor] = window
        self.last_window = max(self.last_window, other.last_window)
        self.order_key = min(self.order_key, other.order_key)
        self.num_records += other.num_records

    def prune_frontier(self, horizon: int) -> None:
        """Forget frontier entries older than ``horizon`` (they can no
        longer relate to any future record)."""
        stale = [s for s, w in self.frontier.items() if w < horizon]
        for sensor in stale:
            del self.frontier[sensor]

    def severity(self) -> float:
        """Total severity absorbed so far, in minutes."""
        return sum(self.spatial.values())


class OnlineEventTracker:
    """Incremental Def. 1-3 event tracking over a window-ordered stream."""

    def __init__(
        self,
        network: SensorNetwork,
        distance_miles: float = 1.5,
        time_gap_minutes: float = 15.0,
        window_spec: WindowSpec = WindowSpec(),
        time_of_day_features: bool = True,
        ids: Optional[ClusterIdGenerator] = None,
    ):
        self._network = network
        self._spec = window_spec
        self._grid = SensorGridIndex(network, distance_miles)
        self._max_gap = window_spec.windows_within(time_gap_minutes)
        self._tf_modulo = (
            window_spec.windows_per_day if time_of_day_features else 0
        )
        self._ids = ids if ids is not None else ClusterIdGenerator()
        self._open: Dict[int, OpenEvent] = {}
        # sensor -> event owning its frontier entry (at most one: events
        # sharing a frontier sensor would have merged)
        self._frontier_owner: Dict[int, int] = {}
        self._next_event_id = 0
        self._last_window_seen = -1
        self._closed_clusters: List[AtypicalCluster] = []
        self._order_keys: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def open_events(self) -> List[OpenEvent]:
        """Events still open (not yet emitted), in insertion order."""
        return list(self._open.values())

    # ------------------------------------------------------------------
    def push_window(self, window: int, batch: RecordBatch) -> List[AtypicalCluster]:
        """Feed all atypical records of one window; returns newly closed
        micro-clusters.

        Windows must arrive in non-decreasing order; ``batch`` must only
        contain records of ``window``.
        """
        if window < self._last_window_seen:
            raise ValueError(
                f"windows must arrive in order: got {window} after "
                f"{self._last_window_seen}"
            )
        if len(batch) and not np.all(batch.windows == window):
            raise ValueError("batch contains records of a different window")
        self._last_window_seen = window
        closed = self._close_stale(window)

        tf_key = window % self._tf_modulo if self._tf_modulo else window
        for sensor, severity in zip(
            batch.sensor_ids.tolist(), batch.severities.tolist()
        ):
            self._ingest(int(sensor), window, float(severity), tf_key)
        if obs.enabled():
            obs.counter("streaming.records").inc(len(batch))
            obs.gauge("streaming.events.open").set(len(self._open))
        return closed

    def flush(self) -> List[AtypicalCluster]:
        """Close every remaining open event (end of stream)."""
        clusters = [self._to_cluster(e) for e in self._open.values() if e.num_records]
        clusters.sort(key=lambda c: (-c.severity(), c.cluster_id))
        self._open.clear()
        self._frontier_owner.clear()
        self._closed_clusters.extend(clusters)
        if obs.enabled():
            obs.counter("streaming.events.closed").inc(len(clusters))
            obs.gauge("streaming.events.open").set(0)
        return clusters

    @property
    def closed_clusters(self) -> List[AtypicalCluster]:
        """All micro-clusters emitted so far (closed + flushed)."""
        return list(self._closed_clusters)

    @property
    def order_keys(self) -> Dict[int, int]:
        """Canonical batch-extraction order key per closed cluster id.

        The key is the minimum packed ``(sensor_id << 32) | window`` over
        the cluster's records (``(window << 32) | sensor_id`` in the
        degenerate no-temporal-join regime), exactly the ordering
        :func:`repro.core.events.extract_micro_clusters_ordered` reports
        for the batch extractor. Sorting a day's closed clusters by this
        key reproduces the batch id-assignment order, which is what lets
        a streaming ingest re-mint ids that match a batch build
        byte-for-byte.
        """
        return dict(self._order_keys)

    def _pack_key(self, sensor: int, window: int) -> int:
        if self._max_gap < 0:
            return (window << 32) | sensor
        return (sensor << 32) | window

    # ------------------------------------------------------------------
    def _ingest(self, sensor: int, window: int, severity: float, tf_key: int) -> None:
        touched: Set[int] = set()
        for neighbour in self._grid.neighbours(sensor):
            owner = self._frontier_owner.get(neighbour)
            if owner is None:
                continue
            event = self._open.get(owner)
            if event is None:  # stale ownership after a merge
                continue
            last = event.frontier.get(neighbour)
            if last is not None and window - last <= self._max_gap:
                touched.add(owner)

        if not touched:
            event = OpenEvent(event_id=self._next_event_id)
            self._next_event_id += 1
            self._open[event.event_id] = event
            obs.counter("streaming.events.opened").inc()
        else:
            survivors = sorted(touched)
            event = self._open[survivors[0]]
            if len(survivors) > 1:
                obs.counter("streaming.events.merged").inc(len(survivors) - 1)
            for other_id in survivors[1:]:
                other = self._open.pop(other_id)
                event.merge_from(other)
                for s in other.frontier:
                    self._frontier_owner[s] = event.event_id
        event.absorb(sensor, window, severity, tf_key, self._pack_key(sensor, window))
        self._frontier_owner[sensor] = event.event_id

    def _close_stale(self, window: int) -> List[AtypicalCluster]:
        horizon = window - self._max_gap
        closed: List[AtypicalCluster] = []
        for event_id in list(self._open):
            event = self._open[event_id]
            if event.last_window < horizon:
                del self._open[event_id]
                for sensor, last in event.frontier.items():
                    if self._frontier_owner.get(sensor) == event_id:
                        del self._frontier_owner[sensor]
                closed.append(self._to_cluster(event))
            else:
                event.prune_frontier(horizon)
        closed.sort(key=lambda c: (-c.severity(), c.cluster_id))
        self._closed_clusters.extend(closed)
        if closed:
            obs.counter("streaming.events.closed").inc(len(closed))
        return closed

    def _to_cluster(self, event: OpenEvent) -> AtypicalCluster:
        # the open-event accumulators already hold positive per-key sums,
        # so the array-backed features can skip the per-item coercion loop
        cluster = AtypicalCluster.micro(
            SpatialFeature.from_aggregates(event.spatial),
            TemporalFeature.from_aggregates(event.temporal),
            self._ids,
        )
        self._order_keys[cluster.cluster_id] = event.order_key
        return cluster
