"""Core atypical-cluster model and algorithms (the paper's contribution)."""

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.events import (
    AtypicalEvent,
    EventExtractor,
    ExtractionParams,
    UnionFind,
)
from repro.core.features import SeverityFeature, SpatialFeature, TemporalFeature
from repro.core.forest import AtypicalForest, ForestStats
from repro.core.integration import ClusterIntegrator, IntegrationResult, integrate
from repro.core.merge import merge_clusters, merge_many
from repro.core.query import (
    STRATEGIES,
    AnalyticalQuery,
    QueryProcessor,
    QueryResult,
    QueryStats,
    RegionSeverityProvider,
)
from repro.core.records import AtypicalRecord, RecordBatch
from repro.core.redzone import RedZones, compute_red_zones, filter_by_red_zones
from repro.core.significance import SignificanceThreshold, significant_clusters
from repro.core.streaming import OnlineEventTracker, OpenEvent
from repro.core.similarity import (
    BALANCE_FUNCTIONS,
    ClusterSimilarity,
    balance_function,
    similarity,
    spatial_similarity,
    temporal_similarity,
)

__all__ = [
    "AtypicalCluster",
    "ClusterIdGenerator",
    "AtypicalEvent",
    "EventExtractor",
    "ExtractionParams",
    "UnionFind",
    "SeverityFeature",
    "SpatialFeature",
    "TemporalFeature",
    "AtypicalForest",
    "ForestStats",
    "ClusterIntegrator",
    "IntegrationResult",
    "integrate",
    "merge_clusters",
    "merge_many",
    "STRATEGIES",
    "AnalyticalQuery",
    "QueryProcessor",
    "QueryResult",
    "QueryStats",
    "RegionSeverityProvider",
    "AtypicalRecord",
    "RecordBatch",
    "RedZones",
    "compute_red_zones",
    "filter_by_red_zones",
    "SignificanceThreshold",
    "significant_clusters",
    "OnlineEventTracker",
    "OpenEvent",
    "BALANCE_FUNCTIONS",
    "ClusterSimilarity",
    "balance_function",
    "similarity",
    "spatial_similarity",
    "temporal_similarity",
]
