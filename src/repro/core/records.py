"""Atypical records — the input tuples of the whole pipeline.

Sec. II-A: "The atypical records are represented in the format of
``(s, t, f(s, t))``, where the severity measure ``f(s, t)`` is a numerical
value collected from sensor ``s`` in time window ``t``. Without loss of
generality, we adopt the atypical duration as the severity measure."

Records are exposed both as a lightweight :class:`AtypicalRecord` value type
for API-level use and as a columnar :class:`RecordBatch` (numpy arrays) for
the bulk paths: event extraction, the bottom-up cube, and the storage layer
all operate on batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["AtypicalRecord", "RecordBatch"]


@dataclass(frozen=True, order=True)
class AtypicalRecord:
    """One atypical reading ``(s, t, f(s, t))``.

    ``severity`` is the atypical duration in minutes within the window,
    e.g. ``AtypicalRecord(1, 97, 4.0)`` means sensor 1 reported atypical
    readings for 4 minutes during window 97.
    """

    sensor_id: int
    window: int
    severity: float

    def __post_init__(self) -> None:
        if self.severity <= 0:
            raise ValueError(
                f"atypical record must have positive severity, got {self.severity}"
            )


class RecordBatch:
    """A columnar batch of atypical records.

    Columns: ``sensor_ids`` (int32), ``windows`` (int32) and ``severities``
    (float64, minutes). Batches are immutable; all transformation helpers
    return new batches.
    """

    __slots__ = ("_sensor_ids", "_windows", "_severities")

    def __init__(
        self,
        sensor_ids: np.ndarray | Sequence[int],
        windows: np.ndarray | Sequence[int],
        severities: np.ndarray | Sequence[float],
    ):
        sensor_arr = np.asarray(sensor_ids, dtype=np.int32)
        window_arr = np.asarray(windows, dtype=np.int32)
        severity_arr = np.asarray(severities, dtype=np.float64)
        if not (len(sensor_arr) == len(window_arr) == len(severity_arr)):
            raise ValueError("record batch columns must have equal lengths")
        for arr in (sensor_arr, window_arr, severity_arr):
            arr.flags.writeable = False
        self._sensor_ids = sensor_arr
        self._windows = window_arr
        self._severities = severity_arr

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RecordBatch":
        """A batch with zero records."""
        return cls(np.empty(0, np.int32), np.empty(0, np.int32), np.empty(0, np.float64))

    @classmethod
    def from_records(cls, records: Iterable[AtypicalRecord]) -> "RecordBatch":
        """Batch from an iterable of :class:`AtypicalRecord`."""
        records = list(records)
        return cls(
            np.array([r.sensor_id for r in records], dtype=np.int32),
            np.array([r.window for r in records], dtype=np.int32),
            np.array([r.severity for r in records], dtype=np.float64),
        )

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches in order, dropping empty ones."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        return cls(
            np.concatenate([b.sensor_ids for b in batches]),
            np.concatenate([b.windows for b in batches]),
            np.concatenate([b.severities for b in batches]),
        )

    # ------------------------------------------------------------------
    @property
    def sensor_ids(self) -> np.ndarray:
        """Per-record sensor ids (int32 array, read-only view)."""
        return self._sensor_ids

    @property
    def windows(self) -> np.ndarray:
        """Per-record absolute window indices (int32 array)."""
        return self._windows

    @property
    def severities(self) -> np.ndarray:
        """Per-record severities in minutes (float64 array)."""
        return self._severities

    def __len__(self) -> int:
        return len(self._sensor_ids)

    def __iter__(self) -> Iterator[AtypicalRecord]:
        for sid, window, severity in zip(
            self._sensor_ids, self._windows, self._severities
        ):
            yield AtypicalRecord(int(sid), int(window), float(severity))

    def __getitem__(self, index: int) -> AtypicalRecord:
        return AtypicalRecord(
            int(self._sensor_ids[index]),
            int(self._windows[index]),
            float(self._severities[index]),
        )

    # ------------------------------------------------------------------
    def total_severity(self) -> float:
        """``F`` over the batch: the distributive total-severity measure."""
        return float(self._severities.sum())

    def select(self, mask: np.ndarray) -> "RecordBatch":
        """New batch with rows where ``mask`` is true."""
        return RecordBatch(
            self._sensor_ids[mask], self._windows[mask], self._severities[mask]
        )

    def restrict_windows(self, first: int, last: int) -> "RecordBatch":
        """Rows with ``first <= window <= last``."""
        mask = (self._windows >= first) & (self._windows <= last)
        return self.select(mask)

    def restrict_sensors(self, sensor_ids: Iterable[int]) -> "RecordBatch":
        """Rows whose sensor is in ``sensor_ids``."""
        wanted = np.fromiter(
            (int(s) for s in sensor_ids), dtype=np.int64, count=-1
        )
        mask = np.isin(self._sensor_ids, wanted)
        return self.select(mask)

    def sorted_by_window(self) -> "RecordBatch":
        """Copy sorted by ``(window, sensor)`` — the canonical record order."""
        order = np.lexsort((self._sensor_ids, self._windows))
        return RecordBatch(
            self._sensor_ids[order], self._windows[order], self._severities[order]
        )

    def validate(self) -> None:
        """Raise if any record violates the atypical-record contract."""
        if len(self) and float(self._severities.min()) <= 0:
            raise ValueError("atypical records must have positive severity")
        if len(self) and int(self._windows.min()) < 0:
            raise ValueError("windows must be non-negative")
        if len(self) and int(self._sensor_ids.min()) < 0:
            raise ValueError("sensor ids must be non-negative")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordBatch({len(self)} records)"
