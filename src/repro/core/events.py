"""Atypical event extraction (Definitions 1-3, Algorithm 1).

Two atypical records are *direct atypical related* when their sensors are
within ``delta_d`` miles and their windows within ``delta_t`` minutes
(Def. 1); *atypical related* is the transitive closure (Def. 2); an
*atypical event* is a maximal connected set of atypical records (Def. 3).

Events are therefore the connected components of the record graph. The
extractor computes them with a union-find over record indices:

* the ``"grid"`` method enumerates only sensor pairs within ``delta_d``
  (via :class:`~repro.spatial.grid.SensorGridIndex`) and matches their
  per-sensor window lists with a two-pointer sweep — the "with index" bound
  of Proposition 1, ``O(N + n log n)``;
* the ``"naive"`` method checks all record pairs — the ``O(N + n^2)``
  baseline, kept for the ablation benchmark and for cross-validation tests.

Micro-clusters (Def. 4) are built in the same pass by aggregating severity
per sensor and per window inside each component, as Algorithm 1 does.

Temporal feature keys
---------------------
Event *connectivity* always uses absolute windows (Def. 1 relates records
by wall-clock interval). The temporal features of the resulting clusters,
however, default to **time-of-day** window keys (0..windows_per_day-1),
matching the paper's presentation (Fig. 4/5 label windows as
``8:05am - 8:10am``) and, crucially, enabling the day -> week -> month
integration of Sec. III-C: recurring events on different days share
time-of-day windows, so their temporal similarity (Eq. 4) is positive and
Algorithm 3 can merge them. Pass ``time_of_day_features=False`` to keep
absolute window keys (single-day analyses, ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro import obs
from repro.core.cluster import AtypicalCluster, ClusterIdGenerator
from repro.core.features import SpatialFeature, TemporalFeature
from repro.core.records import RecordBatch
from repro.spatial.grid import SensorGridIndex
from repro.spatial.network import SensorNetwork
from repro.temporal.windows import WindowSpec

__all__ = ["ExtractionParams", "AtypicalEvent", "EventExtractor", "UnionFind"]


@dataclass(frozen=True)
class ExtractionParams:
    """Thresholds of Definition 1 (defaults follow Fig. 14)."""

    distance_miles: float = 1.5
    time_gap_minutes: float = 15.0

    def __post_init__(self) -> None:
        if self.distance_miles <= 0:
            raise ValueError("distance threshold must be positive")
        if self.time_gap_minutes <= 0:
            raise ValueError("time-gap threshold must be positive")


class UnionFind:
    """Union-find with path halving and union by size."""

    __slots__ = ("_parent", "_size")

    def __init__(self, n: int):
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, x: int) -> int:
        """Root of ``x``'s component, with path halving."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def labels(self) -> List[int]:
        """Canonical component label per element (root index)."""
        return [self.find(i) for i in range(len(self._parent))]


class AtypicalEvent:
    """A maximal set of atypical-related records (Def. 3).

    The event is the *holistic* model (Property 1): it stores every member
    record, so its size is unbounded. It exists as an intermediate object
    and for model-size accounting (Fig. 16); analytical processing uses the
    micro-cluster summary instead.
    """

    __slots__ = ("_records",)

    def __init__(self, records: RecordBatch):
        if not len(records):
            raise ValueError("an atypical event must contain records")
        self._records = records

    @property
    def records(self) -> RecordBatch:
        """The event's records as one batch."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def sensor_ids(self) -> frozenset[int]:
        """Distinct sensors touched by the event."""
        return frozenset(int(s) for s in np.unique(self._records.sensor_ids))

    @property
    def windows(self) -> frozenset[int]:
        """Distinct absolute windows touched by the event."""
        return frozenset(int(w) for w in np.unique(self._records.windows))

    def total_severity(self) -> float:
        """Sum of the event's record severities, in minutes."""
        return self._records.total_severity()

    def to_micro_cluster(
        self,
        ids: Optional[ClusterIdGenerator] = None,
        windows_per_day: Optional[int] = None,
    ) -> AtypicalCluster:
        """Summarize this event as a micro-cluster (Algorithm 1, lines 6-12).

        ``windows_per_day`` folds temporal keys to time-of-day (see module
        docstring); None keeps absolute window keys.
        """
        spatial, temporal = _aggregate_features(self._records, windows_per_day)
        if ids is None:
            return AtypicalCluster.micro(spatial, temporal)
        return AtypicalCluster.micro(spatial, temporal, ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AtypicalEvent({len(self)} records, {len(self.sensor_ids)} sensors, "
            f"severity={self.total_severity():.1f})"
        )


def _aggregate_features(
    records: RecordBatch,
    tf_modulo: Optional[int] = None,
) -> Tuple[SpatialFeature, TemporalFeature]:
    """Aggregate severities per sensor (``mu_i``) and window (``nu_j``).

    ``tf_modulo`` folds absolute window indices to time-of-day keys.
    """
    spatial: Dict[int, float] = {}
    temporal: Dict[int, float] = {}
    for sid, window, severity in zip(
        records.sensor_ids.tolist(),
        records.windows.tolist(),
        records.severities.tolist(),
    ):
        key = window % tf_modulo if tf_modulo else window
        spatial[sid] = spatial.get(sid, 0.0) + severity
        temporal[key] = temporal.get(key, 0.0) + severity
    return (
        SpatialFeature.from_aggregates(spatial),
        TemporalFeature.from_aggregates(temporal),
    )


class EventExtractor:
    """Retrieves atypical events / micro-clusters from a record batch.

    Parameters
    ----------
    network:
        The sensor network (fixed sensor locations).
    params:
        The ``delta_d`` / ``delta_t`` thresholds.
    window_spec:
        Window width used to convert ``delta_t`` minutes into a window gap.
    method:
        ``"grid"`` (indexed, default) or ``"naive"`` (all pairs).
    """

    def __init__(
        self,
        network: SensorNetwork,
        params: ExtractionParams = ExtractionParams(),
        window_spec: WindowSpec = WindowSpec(),
        method: str = "grid",
        time_of_day_features: bool = True,
    ):
        if method not in ("grid", "naive"):
            raise ValueError(f"unknown extraction method: {method!r}")
        self._network = network
        self._params = params
        self._spec = window_spec
        self._method = method
        self._tf_modulo: Optional[int] = (
            window_spec.windows_per_day if time_of_day_features else None
        )
        self._max_gap = window_spec.windows_within(params.time_gap_minutes)
        self._grid = (
            SensorGridIndex(network, params.distance_miles)
            if method == "grid"
            else None
        )

    @property
    def params(self) -> ExtractionParams:
        """The ``(delta_d, delta_t)`` relatedness thresholds (Def. 2)."""
        return self._params

    # ------------------------------------------------------------------
    def label_components(self, batch: RecordBatch) -> np.ndarray:
        """Component label (an arbitrary canonical index) per record."""
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self._max_gap < 0:
            # delta_t smaller than one window: nothing is related, every
            # record is its own event.
            return np.arange(n, dtype=np.int64)
        if self._method == "naive":
            uf = self._link_naive(batch)
            return np.asarray(uf.labels(), dtype=np.int64)
        return self._label_grid(batch)

    def _link_naive(self, batch: RecordBatch) -> UnionFind:
        n = len(batch)
        uf = UnionFind(n)
        sensors = batch.sensor_ids
        windows = batch.windows
        network = self._network
        delta_d = self._params.distance_miles
        max_gap = self._max_gap
        for i in range(n):
            for j in range(i + 1, n):
                if abs(int(windows[i]) - int(windows[j])) > max_gap:
                    continue
                if network.distance(int(sensors[i]), int(sensors[j])) < delta_d:
                    uf.union(i, j)
        return uf

    def _label_grid(self, batch: RecordBatch) -> np.ndarray:
        """Vectorized component labelling.

        Builds the direct-relation graph sparsely and labels components
        with :func:`scipy.sparse.csgraph.connected_components`. Edges are
        generated per neighbouring sensor pair, but only a constant number
        per record: within one sensor, records are pre-grouped into
        temporal *runs* (consecutive records within the gap), and a record
        of sensor ``a`` is linked to at most one record of each run of
        sensor ``b`` intersecting its window range. At most three runs can
        intersect a ``2*gap + 1`` window (runs are separated by more than
        ``gap``), so three links per record pair suffice for exactly the
        same connectivity as all-pairs linking.
        """
        n = len(batch)
        max_gap = self._max_gap
        order = np.lexsort((batch.windows, batch.sensor_ids))
        sensors_sorted = batch.sensor_ids[order].astype(np.int64)
        windows_sorted = batch.windows[order].astype(np.int64)

        # per-sensor slices
        boundaries = np.flatnonzero(np.diff(sensors_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        slice_of: Dict[int, Tuple[int, int]] = {
            int(sensors_sorted[s]): (int(s), int(e)) for s, e in zip(starts, ends)
        }

        # temporal runs per sensor (vectorized over the whole sorted array)
        same_sensor = sensors_sorted[1:] == sensors_sorted[:-1]
        close = np.diff(windows_sorted) <= max_gap
        linked_to_prev = same_sensor & close
        run_id = np.concatenate(([0], np.cumsum(~linked_to_prev)))

        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []

        # self links: each record to its predecessor within the run
        self_targets = np.flatnonzero(linked_to_prev) + 1
        if len(self_targets):
            rows.append(self_targets - 1)
            cols.append(self_targets)

        # run start position for every global run id
        run_starts = np.concatenate(
            ([0], np.flatnonzero(~linked_to_prev) + 1)
        )

        grid = self._grid
        assert grid is not None
        for sid_a, (a_start, a_end) in slice_of.items():
            wa = windows_sorted[a_start:a_end]
            a_min = int(wa[0])
            a_max = int(wa[-1])
            for sid_b in grid.neighbours(sid_a):
                if sid_b <= sid_a:
                    continue
                b_slice = slice_of.get(sid_b)
                if b_slice is None:
                    continue
                b_start, b_end = b_slice
                # cheap reject: the sensors were never active within the
                # same gap window (e.g. AM vs PM rush on co-located
                # opposite directions)
                if (
                    int(windows_sorted[b_start]) > a_max + max_gap
                    or int(windows_sorted[b_end - 1]) < a_min - max_gap
                ):
                    continue
                wb = windows_sorted[b_start:b_end]
                lo = np.searchsorted(wb, wa - max_gap, side="left")
                hi = np.searchsorted(wb, wa + max_gap, side="right")
                valid = hi > lo
                a_pos = np.flatnonzero(valid)
                if not len(a_pos):
                    continue
                lo_v = lo[a_pos] + b_start
                hi_v = hi[a_pos] + b_start
                a_pos = a_pos + a_start
                # first matched record (covers the first intersecting run)
                rows.append(a_pos)
                cols.append(lo_v)
                # last matched record (covers the last intersecting run)
                rows.append(a_pos)
                cols.append(hi_v - 1)
                # start of the middle run, when a third run intersects
                first_run = run_id[lo_v]
                next_run = first_run + 1
                has_next = next_run < len(run_starts)
                mid = np.where(has_next, run_starts[np.minimum(next_run, len(run_starts) - 1)], n)
                in_window = mid < hi_v
                if in_window.any():
                    rows.append(a_pos[in_window])
                    cols.append(mid[in_window])

        if rows:
            row_idx = np.concatenate(rows)
            col_idx = np.concatenate(cols)
            graph = coo_matrix(
                (np.ones(len(row_idx), dtype=np.int8), (row_idx, col_idx)),
                shape=(n, n),
            )
            _, sorted_labels = connected_components(graph, directed=False)
        else:
            sorted_labels = np.arange(n, dtype=np.int64)

        labels = np.empty(n, dtype=np.int64)
        labels[order] = sorted_labels
        return labels

    # ------------------------------------------------------------------
    def extract_events(self, batch: RecordBatch) -> List[AtypicalEvent]:
        """All atypical events of ``batch`` (Def. 3), largest first."""
        labels = self.label_components(batch)
        events: List[AtypicalEvent] = []
        for indices in _group_indices(labels):
            events.append(AtypicalEvent(batch.select(indices)))
        events.sort(key=lambda e: (-e.total_severity(), min(e.windows)))
        return events

    def extract_micro_clusters(
        self,
        batch: RecordBatch,
        ids: Optional[ClusterIdGenerator] = None,
    ) -> List[AtypicalCluster]:
        """Algorithm 1: micro-clusters of all events in ``batch``.

        Severity aggregation happens directly on the component labels with
        vectorized group-bys, so the holistic event objects are never
        materialized.
        """
        clusters, _ = self._extract(batch, ids, with_order_keys=False)
        return clusters

    def extract_micro_clusters_ordered(
        self,
        batch: RecordBatch,
        ids: Optional[ClusterIdGenerator] = None,
    ) -> Tuple[List[AtypicalCluster], List[int]]:
        """Algorithm 1 plus a canonical *order key* per micro-cluster.

        The order key is the packed ``(sensor_id << 32) | window`` minimum
        over the cluster's records — the position of the component's first
        record in the sensor-major record order, which is exactly the order
        the ``"grid"`` labeller assigns component ranks (and therefore
        cluster ids) in. A sharded builder that partitions one day's
        records into connectivity-closed sub-batches (see
        :mod:`repro.parallel.sharding`) can sort the union of shard
        clusters by order key to reproduce the id assignment a whole-day
        extraction would have produced.

        When ``delta_t`` is below one window every record is its own event
        and ranks follow the window-major record order, so the packed key
        degenerates to ``(window << 32) | sensor_id``.

        Raises ``ValueError`` for the ``"naive"`` method, whose union-find
        root ranks are not a function of per-cluster record sets.
        """
        if self._method == "naive" and self._max_gap >= 0:
            raise ValueError(
                "ordered extraction requires the 'grid' method: naive "
                "union-find component ranks are not reproducible from "
                "per-shard record sets"
            )
        clusters, keys = self._extract(batch, ids, with_order_keys=True)
        assert keys is not None
        return clusters, keys

    def _extract(
        self,
        batch: RecordBatch,
        ids: Optional[ClusterIdGenerator],
        with_order_keys: bool,
    ) -> Tuple[List[AtypicalCluster], Optional[List[int]]]:
        if not len(batch):
            return [], ([] if with_order_keys else None)
        # Canonicalize the accumulation order: severities are summed in
        # (window, sensor) order so the result is bit-identical no matter
        # how the batch rows were arranged — and matches the streaming
        # tracker, which by construction absorbs records window by window
        # (float addition is not associative, so order must be pinned).
        batch = batch.sorted_by_window()
        labels = self.label_components(batch)
        generator = ids if ids is not None else ClusterIdGenerator()
        _, cluster_idx = np.unique(labels, return_inverse=True)
        severities = batch.severities

        def grouped_sums(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            """(cluster, key) -> summed severity, cluster-major order."""
            span = int(keys.max()) + 1
            combo = cluster_idx.astype(np.int64) * span + keys.astype(np.int64)
            unique_combo, inverse = np.unique(combo, return_inverse=True)
            sums = np.zeros(len(unique_combo))
            np.add.at(sums, inverse, severities)
            return unique_combo // span, unique_combo % span, sums

        tf_keys = (
            batch.windows % self._tf_modulo if self._tf_modulo else batch.windows
        )
        s_cluster, s_key, s_sum = grouped_sums(batch.sensor_ids)
        t_cluster, t_key, t_sum = grouped_sums(np.asarray(tf_keys))

        num_clusters = int(cluster_idx.max()) + 1
        s_splits = np.searchsorted(s_cluster, np.arange(1, num_clusters))
        t_splits = np.searchsorted(t_cluster, np.arange(1, num_clusters))
        s_key_groups = np.split(s_key, s_splits)
        s_sum_groups = np.split(s_sum, s_splits)
        t_key_groups = np.split(t_key, t_splits)
        t_sum_groups = np.split(t_sum, t_splits)

        clusters: List[AtypicalCluster] = []
        for c in range(num_clusters):
            # the grouped sums are already unique-key, ascending and
            # positive — hand the arrays to the feature without re-checking
            spatial = SpatialFeature.from_arrays(
                s_key_groups[c], s_sum_groups[c], assume_sorted=True, validate=False
            )
            temporal = TemporalFeature.from_arrays(
                t_key_groups[c], t_sum_groups[c], assume_sorted=True, validate=False
            )
            clusters.append(AtypicalCluster.micro(spatial, temporal, generator))

        order_keys: Optional[List[int]] = None
        if with_order_keys:
            # min packed (sensor, window) — or (window, sensor) in the
            # degenerate every-record-its-own-event case — per component;
            # see extract_micro_clusters_ordered
            sensors64 = batch.sensor_ids.astype(np.int64)
            windows64 = batch.windows.astype(np.int64)
            if self._max_gap < 0:
                packed = (windows64 << 32) | sensors64
            else:
                packed = (sensors64 << 32) | windows64
            mins = np.full(num_clusters, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(mins, cluster_idx, packed)
            keyed = sorted(
                zip(clusters, mins.tolist()),
                key=lambda pair: (-pair[0].severity(), pair[0].start_window()),
            )
            clusters = [c for c, _ in keyed]
            order_keys = [k for _, k in keyed]
        else:
            clusters.sort(key=lambda c: (-c.severity(), c.start_window()))
        if obs.enabled():
            obs.counter("extract.records").inc(len(batch))
            obs.counter("extract.micro_clusters").inc(num_clusters)
            obs.histogram("extract.records_per_event").observe(
                len(batch) / num_clusters
            )
        return clusters, order_keys


def _group_indices(labels: np.ndarray) -> List[np.ndarray]:
    """Index arrays of each distinct label, in first-seen order."""
    if len(labels) == 0:
        return []
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    return np.split(order, boundaries)
