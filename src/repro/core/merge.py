"""Merging two atypical clusters (Algorithm 2, Equations 5-6).

The merged macro-cluster accumulates the severities of common sensors and
time windows and keeps the non-overlapping entries; a fresh id is assigned.
The operation is commutative and associative (Property 3), which makes the
integration result independent of merge order at the feature level.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.cluster import AtypicalCluster, ClusterIdGenerator

__all__ = ["merge_clusters", "merge_many"]


def merge_clusters(
    a: AtypicalCluster,
    b: AtypicalCluster,
    ids: Optional[ClusterIdGenerator] = None,
) -> AtypicalCluster:
    """Algorithm 2: merge ``a`` and ``b`` into a new macro-cluster.

    The returned cluster's features follow Eq. 5/6; its ``members`` records
    the two input ids (provenance for the clustering tree), and its level is
    one above the deeper input.
    """
    generator = ids if ids is not None else ClusterIdGenerator(
        max(a.cluster_id, b.cluster_id) + 1
    )
    return AtypicalCluster(
        cluster_id=generator.next_id(),
        spatial=a.spatial.merge(b.spatial),
        temporal=a.temporal.merge(b.temporal),
        level=max(a.level, b.level) + 1,
        members=(a.cluster_id, b.cluster_id),
    )


def merge_many(
    clusters: Iterable[AtypicalCluster],
    ids: Optional[ClusterIdGenerator] = None,
) -> AtypicalCluster:
    """Fold a non-empty collection of clusters into one macro-cluster.

    Associativity (Property 3) guarantees the resulting features do not
    depend on the fold order; the provenance lists every input id.
    """
    cluster_list = list(clusters)
    if not cluster_list:
        raise ValueError("merge_many needs at least one cluster")
    if len(cluster_list) == 1:
        return cluster_list[0]
    generator = ids if ids is not None else ClusterIdGenerator(
        max(c.cluster_id for c in cluster_list) + 1
    )
    # one k-way segment-sum kernel instead of k-1 pairwise merges
    spatial = type(cluster_list[0].spatial).merge_all(
        c.spatial for c in cluster_list
    )
    temporal = type(cluster_list[0].temporal).merge_all(
        c.temporal for c in cluster_list
    )
    return AtypicalCluster(
        cluster_id=generator.next_id(),
        spatial=spatial,
        temporal=temporal,
        level=max(c.level for c in cluster_list) + 1,
        members=tuple(c.cluster_id for c in cluster_list),
    )
