"""The atypical cluster model (Definition 4 and Sec. III-C).

An :class:`AtypicalCluster` is the succinct summary of one or more atypical
events: a cluster id, a spatial feature and a temporal feature. Micro-
clusters summarize a single event (Algorithm 1); macro-clusters integrate
several micro-clusters (Algorithms 2-3) and remember which clusters they
merged so that the clustering trees of the atypical forest can be rebuilt.

Invariant: ``sum(SF) == sum(TF) == severity(C)`` — both features aggregate
the same underlying record severities, only grouped differently. The test
suite checks this invariant on every construction path.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.core.features import SpatialFeature, TemporalFeature

__all__ = ["AtypicalCluster", "ClusterIdGenerator"]

_SEVERITY_TOLERANCE = 1e-6


class ClusterIdGenerator:
    """Thread-safe source of fresh cluster ids.

    Algorithm 2 requires "a new ID is generated for the macro-cluster";
    ids only need to be unique within a session, so a counter suffices.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next_id(self) -> int:
        """Return the next unique cluster id (thread-safe, never reused)."""
        with self._lock:
            return next(self._counter)


_DEFAULT_IDS = ClusterIdGenerator()


@dataclass(frozen=True)
class AtypicalCluster:
    """An atypical cluster ``C = <ID, SF, TF>``.

    Attributes
    ----------
    cluster_id:
        Unique id within the analysis session.
    spatial:
        ``SF``: severity per sensor.
    temporal:
        ``TF``: severity per time window.
    level:
        Aggregation level of the cluster: 0 for micro-clusters, one more
        than the deepest child for macro-clusters. Purely informational.
    members:
        Ids of the clusters merged into this one (empty for micro-clusters).
    """

    cluster_id: int
    spatial: SpatialFeature
    temporal: TemporalFeature
    level: int = 0
    members: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.spatial) == 0 or len(self.temporal) == 0:
            raise ValueError("atypical cluster features must be non-empty")
        sf_total = self.spatial.total()
        tf_total = self.temporal.total()
        if abs(sf_total - tf_total) > _SEVERITY_TOLERANCE * max(1.0, sf_total):
            raise ValueError(
                "spatial and temporal features disagree on total severity: "
                f"{sf_total} vs {tf_total}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def micro(
        cls,
        spatial: SpatialFeature,
        temporal: TemporalFeature,
        ids: Optional[ClusterIdGenerator] = None,
    ) -> "AtypicalCluster":
        """Build a micro-cluster from freshly aggregated features."""
        generator = ids if ids is not None else _DEFAULT_IDS
        return cls(generator.next_id(), spatial, temporal, level=0)

    # ------------------------------------------------------------------
    @property
    def is_micro(self) -> bool:
        """True when the cluster has no children (a day-level leaf, Def. 4)."""
        return not self.members

    @property
    def sensor_ids(self) -> frozenset[int]:
        """The sensor set ``S`` of the cluster."""
        return self.spatial.keys()

    @property
    def windows(self) -> frozenset[int]:
        """The time-window set ``T`` of the cluster."""
        return self.temporal.keys()

    def severity(self) -> float:
        """``severity(C) = sum_SF mu_i = sum_TF nu_j`` (Def. 5)."""
        return self.spatial.total()

    def start_window(self) -> int:
        """First atypical window — 'when does the event start' (Example 1)."""
        return self.temporal.min_key()

    def end_window(self) -> int:
        """Last time-of-day window touched by the cluster (max temporal key)."""
        return self.temporal.max_key()

    def most_serious_sensor(self) -> Tuple[int, float]:
        """Sensor with the highest aggregated severity (Example 4)."""
        return self.spatial.argmax()

    def peak_window(self) -> Tuple[int, float]:
        """Window with the highest aggregated severity."""
        return self.temporal.argmax()

    def intersects_sensors(self, sensor_ids: Iterable[int]) -> bool:
        """True if any of ``sensor_ids`` belongs to the cluster.

        Used by the red-zone filter: a micro-cluster is kept if it
        intersects any red zone (Sec. IV, Example 7).
        """
        own = self.spatial
        return any(s in own for s in sensor_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AtypicalCluster(id={self.cluster_id}, level={self.level}, "
            f"{len(self.spatial)} sensors, {len(self.temporal)} windows, "
            f"severity={self.severity():.1f})"
        )
