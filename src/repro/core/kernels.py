"""Array kernels behind the similarity/integration fast path.

Two access patterns dominate macro-cluster construction (Algorithm 3):

* **one-vs-many** — a cluster popped from the integration queue is scored
  against its whole candidate set. :func:`batch_overlap` concatenates the
  candidates' key/severity arrays once and resolves all Eq. 3/4 overlap
  numerators with a single ``searchsorted`` + two ``bincount`` calls.
* **all-pairs** — the naive Algorithm 3 baseline and level-wide forest
  materialization need every pairwise overlap. :func:`pairwise_overlap_matrix`
  packs all features into one CSR matrix ``X`` (rows = clusters, columns =
  the key universe, values = severities) and obtains every numerator from
  the single sparse product ``X @ B.T`` where ``B`` is the binary pattern
  of ``X``.

Both kernels accumulate severities in ascending-key order, the same order
the scalar :meth:`~repro.core.features.SeverityFeature.overlap` uses, so
all three paths agree bit for bit on the named balance functions (the test
suite checks 1e-12 agreement and the integration tests check that the
resulting macro-cluster sets are identical).

SciPy is optional: when ``scipy.sparse`` is unavailable the all-pairs
kernel falls back to one :func:`batch_overlap` call per row.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _sparse = None

from repro.core.features import SeverityFeature
from repro.obs import runtime as _obs

__all__ = [
    "batch_overlap",
    "batch_overlap_pair",
    "pack_csr",
    "pairwise_overlap_matrix",
    "sorted_intersects",
]

# Shifts the second key universe of the fused kernel into a disjoint range.
# Keys are sensor ids / window indexes (int32-ranged in practice, enforced
# by the serializer), so they sit far below 2^62 and the shift cannot
# collide or overflow int64.
_FUSE_OFFSET = np.int64(1) << 62


def sorted_intersects(a_keys: np.ndarray, b_keys: np.ndarray) -> bool:
    """True when two sorted key arrays share at least one key."""
    if a_keys.size == 0 or b_keys.size == 0:
        return False
    if a_keys.size > b_keys.size:
        a_keys, b_keys = b_keys, a_keys
    pos = np.searchsorted(b_keys, a_keys)
    np.minimum(pos, b_keys.size - 1, out=pos)
    return bool(np.any(b_keys[pos] == a_keys))


def batch_overlap(
    feature: SeverityFeature, others: Sequence[SeverityFeature]
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 3/4 overlap numerators of one feature against many.

    Returns ``(own, theirs)`` where ``own[i] = feature.overlap(others[i])``
    and ``theirs[i] = others[i].overlap(feature)``.
    """
    n = len(others)
    if _obs.enabled():
        _obs.counter("kernels.batch_calls").inc()
        _obs.histogram("kernels.batch_size").observe(n)
    own = np.zeros(n, dtype=np.float64)
    theirs = np.zeros(n, dtype=np.float64)
    keys = feature.key_array
    if n == 0 or keys.size == 0:
        return own, theirs
    lens = np.fromiter((len(o) for o in others), dtype=np.int64, count=n)
    if int(lens.sum()) == 0:
        return own, theirs
    cat_keys = np.concatenate([o.key_array for o in others])
    cat_vals = np.concatenate([o.value_array for o in others])
    rows = np.repeat(np.arange(n), lens)
    pos = np.searchsorted(keys, cat_keys)
    np.minimum(pos, keys.size - 1, out=pos)
    mask = keys[pos] == cat_keys
    if not mask.any():
        return own, theirs
    rows_hit = rows[mask]
    # bincount accumulates sequentially in traversal order, which is
    # ascending-key within each row — the scalar overlap() convention
    theirs = np.bincount(rows_hit, weights=cat_vals[mask], minlength=n)
    own = np.bincount(
        rows_hit, weights=feature.value_array[pos[mask]], minlength=n
    )
    return own, theirs


def batch_overlap_pair(
    first: SeverityFeature,
    second: SeverityFeature,
    others_first: Sequence[SeverityFeature],
    others_second: Sequence[SeverityFeature],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused one-vs-many overlap over two key universes at once.

    Equivalent to ``batch_overlap(first, others_first)`` followed by
    ``batch_overlap(second, others_second)`` — in the integrator that is
    the spatial and temporal halves of Eq. 2 — but pays the fixed numpy
    call overhead once: the second universe's keys are shifted into a
    disjoint range and each candidate contributes two rows of the same
    ``searchsorted`` + ``bincount`` pass. Per-row accumulation order is
    unchanged (ascending keys), so results stay bit-identical to the
    unfused kernels.

    Returns ``(own_first, theirs_first, own_second, theirs_second)``.
    """
    n = len(others_first)
    if len(others_second) != n:
        raise ValueError("candidate sequences must have equal length")
    if _obs.enabled():
        _obs.counter("kernels.batch_calls").inc()
        _obs.histogram("kernels.batch_size").observe(n)
    zeros = np.zeros(n, dtype=np.float64)
    if n == 0:
        return zeros, zeros.copy(), zeros.copy(), zeros.copy()
    keys_a = first.key_array
    keys_b = second.key_array
    if keys_a.size == 0 and keys_b.size == 0:
        return zeros, zeros.copy(), zeros.copy(), zeros.copy()
    ref_keys = np.concatenate((keys_a, keys_b + _FUSE_OFFSET))
    ref_vals = np.concatenate((first.value_array, second.value_array))

    key_blocks = [o.key_array for o in others_first]
    key_blocks += [o.key_array for o in others_second]
    val_blocks = [o.value_array for o in others_first]
    val_blocks += [o.value_array for o in others_second]
    lens = np.fromiter(
        (block.size for block in key_blocks), dtype=np.int64, count=2 * n
    )
    cat_keys = np.concatenate(key_blocks)
    if cat_keys.size == 0:
        return zeros, zeros.copy(), zeros.copy(), zeros.copy()
    first_block = int(lens[:n].sum())
    cat_keys[first_block:] += _FUSE_OFFSET  # one shift for the whole block
    cat_vals = np.concatenate(val_blocks)
    rows = np.repeat(np.arange(2 * n), lens)
    pos = np.searchsorted(ref_keys, cat_keys)
    np.minimum(pos, ref_keys.size - 1, out=pos)
    mask = ref_keys[pos] == cat_keys
    if not mask.any():
        return zeros, zeros.copy(), zeros.copy(), zeros.copy()
    rows_hit = rows[mask]
    theirs = np.bincount(rows_hit, weights=cat_vals[mask], minlength=2 * n)
    own = np.bincount(rows_hit, weights=ref_vals[pos[mask]], minlength=2 * n)
    return own[:n], theirs[:n], own[n:], theirs[n:]


def pack_csr(
    features: Sequence[SeverityFeature],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Pack many features into one CSR layout.

    Returns ``(indptr, cols, data, totals, num_cols)``: row ``i`` of the
    matrix holds feature ``i``'s severities; columns enumerate the union of
    all keys in ascending order (``np.unique`` remap). Within each row the
    column indices are ascending because feature key arrays are sorted.
    """
    n = len(features)
    lens = np.fromiter((len(f) for f in features), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    if n and int(lens.sum()):
        all_keys = np.concatenate([f.key_array for f in features])
        data = np.concatenate([f.value_array for f in features])
    else:
        all_keys = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=np.float64)
    universe, cols = np.unique(all_keys, return_inverse=True)
    totals = np.fromiter((f.total() for f in features), dtype=np.float64, count=n)
    return indptr, cols.astype(np.int64, copy=False), data, totals, universe.size


def pairwise_overlap_matrix(features: Sequence[SeverityFeature]) -> np.ndarray:
    """Dense matrix ``N`` with ``N[i, j] = features[i].overlap(features[j])``.

    One sparse product when SciPy is available: ``N = X @ B.T`` with ``X``
    the packed severity CSR and ``B`` its binary pattern — row ``i`` dotted
    with pattern row ``j`` sums exactly ``i``'s severities on the shared
    keys. Falls back to a per-row :func:`batch_overlap` sweep otherwise.
    """
    n = len(features)
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    if _obs.enabled():
        _obs.counter("kernels.matrix_calls").inc()
        _obs.histogram("kernels.matrix_size").observe(n)
        if _sparse is None:
            _obs.counter("kernels.scipy_fallbacks").inc()
    if _sparse is not None:
        indptr, cols, data, _totals, num_cols = pack_csr(features)
        shape = (n, max(num_cols, 1))
        x = _sparse.csr_matrix((data, cols, indptr), shape=shape)
        pattern = _sparse.csr_matrix(
            (np.ones_like(data), cols, indptr), shape=shape
        )
        return np.asarray((x @ pattern.T).todense(), dtype=np.float64)
    out = np.zeros((n, n), dtype=np.float64)
    for i, feature in enumerate(features):
        out[i], _ = batch_overlap(feature, features)
    return out
