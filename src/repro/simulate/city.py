"""Synthetic city layout: freeway corridors in a planar grid.

The PeMS traces cover 38 highways around Los Angeles and Ventura. The
synthetic city reproduces the structural essentials: east-west and
north-south freeway corridors crossing a rectangular metro area, each
corridor carrying two directed highways (e.g. ``Fwy 10E`` / ``Fwy 10W``),
with mild geometric jitter so districts and corridors do not align
perfectly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.spatial.geometry import Point
from repro.spatial.network import Highway

__all__ = ["CityLayout", "build_highways"]

#: Historic LA freeway numbers used to name synthetic corridors.
_FREEWAY_NUMBERS = (10, 405, 101, 110, 5, 605, 210, 710, 60, 105, 118, 2)


@dataclass(frozen=True)
class CityLayout:
    """Geometry of the synthetic metro area (distances in miles)."""

    width_miles: float = 18.0
    height_miles: float = 14.0
    ew_corridors: int = 6
    ns_corridors: int = 1
    jitter_miles: float = 0.15

    def __post_init__(self) -> None:
        if self.width_miles <= 0 or self.height_miles <= 0:
            raise ValueError("city dimensions must be positive")
        if self.ew_corridors < 1 and self.ns_corridors < 1:
            raise ValueError("the city needs at least one corridor")

    @property
    def num_corridors(self) -> int:
        return self.ew_corridors + self.ns_corridors

    @property
    def num_highways(self) -> int:
        return 2 * self.num_corridors


def build_highways(layout: CityLayout, seed: int = 0) -> List[Highway]:
    """Build the directed highways of the city, deterministically by seed.

    Corridors are evenly spaced across the city with jittered waypoints;
    each yields two highways, one per direction, whose polylines are
    reversed copies of each other (loop detectors of opposite directions
    sit at the same physical locations, as on real freeways).
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC1]))
    highways: List[Highway] = []
    highway_id = 0
    corridor = 0

    def corridor_name(index: int) -> str:
        if index < len(_FREEWAY_NUMBERS):
            return str(_FREEWAY_NUMBERS[index])
        return str(900 + index)

    for i in range(layout.ew_corridors):
        y = layout.height_miles * (i + 1) / (layout.ew_corridors + 1)
        points = _jittered_line(
            rng,
            start=Point(0.0, y),
            end=Point(layout.width_miles, y),
            jitter=layout.jitter_miles,
            axis="x",
        )
        name = corridor_name(corridor)
        highways.append(Highway(highway_id, f"Fwy {name}E", tuple(points)))
        highways.append(
            Highway(highway_id + 1, f"Fwy {name}W", tuple(reversed(points)))
        )
        highway_id += 2
        corridor += 1

    for j in range(layout.ns_corridors):
        x = layout.width_miles * (j + 1) / (layout.ns_corridors + 1)
        points = _jittered_line(
            rng,
            start=Point(x, 0.0),
            end=Point(x, layout.height_miles),
            jitter=layout.jitter_miles,
            axis="y",
        )
        name = corridor_name(corridor)
        highways.append(Highway(highway_id, f"Fwy {name}N", tuple(points)))
        highways.append(
            Highway(highway_id + 1, f"Fwy {name}S", tuple(reversed(points)))
        )
        highway_id += 2
        corridor += 1

    return highways


def _jittered_line(
    rng: np.random.Generator,
    start: Point,
    end: Point,
    jitter: float,
    axis: str,
    waypoints: int = 4,
) -> List[Point]:
    """A polyline from ``start`` to ``end`` with jittered interior points."""
    points = [start]
    for k in range(1, waypoints + 1):
        frac = k / (waypoints + 1)
        x = start.x + frac * (end.x - start.x)
        y = start.y + frac * (end.y - start.y)
        offset = float(rng.normal(0.0, jitter / 2.0))
        offset = float(np.clip(offset, -jitter, jitter))
        if axis == "x":
            y += offset
        else:
            x += offset
        points.append(Point(x, y))
    points.append(end)
    return points
