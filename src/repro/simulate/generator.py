"""Trace generator: the PeMS-replacement workload (see DESIGN.md).

Produces monthly :class:`~repro.storage.dataset.CPSDataset` files with the
structural properties the paper's algorithms exploit:

* a few **dominant** corridors with long unfragmented rush-hour events
  (the severity monsters that stay significant even at high ``delta_s``),
* several **strong secondary** hotspots whose daily activity fragments
  into pulses below the daily significance bar (these are what beforehand
  pruning misses),
* **weak** hotspots, **minor** hotspots and random **incidents** that form
  the long tail of trivial clusters diluting precision,
* weekday/weekend activity patterns and weather modulation.

Everything is deterministic in the configuration seed; any single day can
be regenerated independently (per-day child seeds), so tests never need to
materialize a full year.
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.simulate.city import CityLayout, build_highways
from repro.simulate.congestion import (
    HotspotSpec,
    IncidentProcess,
    IncidentReport,
    apply_hotspot,
    apply_incidents,
    finalize_day,
)
from repro.simulate.weather import WeatherModel
from repro.spatial.network import SensorNetwork, deploy_sensors
from repro.spatial.regions import DistrictGrid
from repro.storage.catalog import DatasetCatalog
from repro.storage.codec import ReadingChunk
from repro.storage.dataset import CPSDatasetWriter, DatasetMeta
from repro.temporal.hierarchy import Calendar, PEMS_MONTH_LENGTHS
from repro.temporal.windows import WindowSpec

__all__ = ["SimulationConfig", "TrafficSimulator"]

_log = logging.getLogger(__name__)

_AM_PEAK_MINUTE = 7 * 60 + 35
_PM_PEAK_MINUTE = 17 * 60 + 10


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of the synthetic trace, serializable for catalogs."""

    seed: int = 7
    layout: CityLayout = field(default_factory=CityLayout)
    sensor_spacing_miles: float = 0.5
    arterial_spacing_miles: float = 1.2
    window_minutes: int = 5
    month_lengths: tuple[int, ...] = PEMS_MONTH_LENGTHS
    district_cols: int = 5
    district_rows: int = 7
    # hotspot population
    minor_hotspots: int = 24
    incident_rate_per_day: float = 4.0
    # free-flow speed model
    free_flow_mph: float = 64.0
    free_flow_spread: float = 4.0

    # ------------------------------------------------------------------
    @classmethod
    def small(cls, seed: int = 7) -> "SimulationConfig":
        """A laptop-test profile: ~90 sensors, fast to generate."""
        return cls(
            seed=seed,
            layout=CityLayout(
                width_miles=8.0, height_miles=6.0, ew_corridors=2, ns_corridors=1
            ),
            minor_hotspots=4,
            incident_rate_per_day=0.5,
            district_cols=3,
            district_rows=2,
        )

    @classmethod
    def benchmark(cls, seed: int = 7) -> "SimulationConfig":
        """The default evaluation profile (~270 sensors, 12 months)."""
        return cls(seed=seed)

    # ------------------------------------------------------------------
    def window_spec(self) -> WindowSpec:
        return WindowSpec(self.window_minutes)

    def calendar(self) -> Calendar:
        names = tuple(f"month {i + 1}" for i in range(len(self.month_lengths)))
        return Calendar(month_lengths=self.month_lengths, month_names=names)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["layout"] = asdict(self.layout)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationConfig":
        payload = dict(data)
        payload["layout"] = CityLayout(**payload["layout"])  # type: ignore[arg-type]
        payload["month_lengths"] = tuple(payload["month_lengths"])  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]


class TrafficSimulator:
    """Deterministic synthetic CPS trace for the whole experiment year."""

    def __init__(self, config: SimulationConfig = SimulationConfig()):
        self._config = config
        self._spec = config.window_spec()
        self._calendar = config.calendar()
        self._highways = build_highways(config.layout, config.seed)
        self._arterial_ids = self._classify_arterials()
        overrides = {
            hid: config.arterial_spacing_miles for hid in self._arterial_ids
        }
        self._network = deploy_sensors(
            self._highways, config.sensor_spacing_miles, overrides
        )
        self._weather = WeatherModel(self._calendar.num_days, config.seed)
        self._hotspots = self._build_hotspots()
        self._incidents = IncidentProcess(rate_per_day=config.incident_rate_per_day)
        self._highway_sensor_lists = [
            self._network.highway_sensors(h.highway_id) for h in self._highways
        ]

    # ------------------------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def network(self) -> SensorNetwork:
        return self._network

    @property
    def calendar(self) -> Calendar:
        return self._calendar

    @property
    def window_spec(self) -> WindowSpec:
        return self._spec

    @property
    def weather(self) -> WeatherModel:
        return self._weather

    @property
    def hotspots(self) -> Sequence[HotspotSpec]:
        return tuple(self._hotspots)

    def districts(self) -> DistrictGrid:
        return DistrictGrid(
            self._network, self._config.district_cols, self._config.district_rows
        )

    # ------------------------------------------------------------------
    # Hotspot population
    # ------------------------------------------------------------------
    def _classify_arterials(self) -> frozenset[int]:
        """Highway ids of the arterial (minors-only, sparse) corridors.

        Every second east-west corridor after the dominant one is an
        arterial: quiet roads whose districts stay below the red-zone bar,
        giving the guided filter something to prune.
        """
        ew = [
            h.highway_id
            for h in self._highways
            if h.name.endswith("E") or h.name.endswith("W")
        ]
        corridors = [ew[i : i + 2] for i in range(0, len(ew), 2)]
        arterials: set[int] = set()
        for index, pair in enumerate(corridors):
            if index >= 1 and index % 2 == 0:  # corridors 2, 4, ...
                arterials.update(pair)
        return frozenset(arterials)

    def _build_hotspots(self) -> List[HotspotSpec]:
        """Assign the tiered hotspot population (see DESIGN.md calibration).

        Every corridor follows the classic commute pattern of the paper's
        Example 2: the even-id direction congests in the morning, the odd-id
        direction in the evening, so opposite directions never overlap in
        time even though their sensors share physical locations. Recurring
        hotspots are placed at block midpoints (between corridor crossings)
        and their spatial reach is hard-capped, so events of different
        hotspots stay more than ``delta_d`` apart and never chain into one
        record-level event (Def. 1).

        Tiers:

        * ``dominant`` — corridor 0, both directions; continuous 5-hour
          monsters spanning the corridor, significant at every ``delta_s``.
        * ``cstrong`` — continuous ~4-hour events, stable day to day;
          significant at default ``delta_s`` and found by beforehand
          pruning.
        * ``vstrong`` — pulse-fragmented events with high day-to-day
          variance; significant at low/default ``delta_s`` but their pieces
          fall below the daily bar, so beforehand pruning misses them.
        * ``frag`` — smaller fragmented events, significant only at the
          lowest ``delta_s``; also missed by beforehand pruning.
        * ``minor`` — short blips on every highway, never significant.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence([self._config.seed, 0x50])
        )
        specs: List[HotspotSpec] = []
        next_id = 0

        ew_ids = [
            h.highway_id
            for h in self._highways
            if h.name.endswith("E") or h.name.endswith("W")
        ]
        ns_ids = [h.highway_id for h in self._highways if h.highway_id not in ew_ids]
        dominant_ids = ew_ids[:2] if len(ew_ids) >= 2 else ew_ids
        slot_highways = [
            h
            for h in ew_ids
            if h not in dominant_ids and h not in self._arterial_ids
        ]

        def peak_for(highway_id: int) -> int:
            base = _AM_PEAK_MINUTE if highway_id % 2 == 0 else _PM_PEAK_MINUTE
            return base + int(rng.integers(-8, 9))

        for highway_id in dominant_ids:
            sensors = self._network.highway_sensors(highway_id)
            n = len(sensors)
            specs.append(
                HotspotSpec(
                    hotspot_id=next_id,
                    highway_id=highway_id,
                    center_ordinal=int(n * float(rng.uniform(0.45, 0.55))),
                    peak_minute=peak_for(highway_id),
                    extent_sensors=10.0,
                    pulses=1,
                    pulse_minutes=310.0,
                    gap_minutes=30.0,
                    core_intensity=5.0,
                    weekday_prob=0.92,
                    weekend_prob=0.45,
                    day_scale_sigma=0.10,
                )
            )
            next_id += 1

        # two recurring-hotspot slots per remaining EW highway, tiers
        # assigned round-robin
        tier_cycle = ("cstrong", "vstrong", "frag")
        tier_index = 0
        for highway_id in slot_highways:
            for center in self._midblock_centers(highway_id, ns_ids, rng):
                tier = tier_cycle[tier_index % len(tier_cycle)]
                tier_index += 1
                peak = peak_for(highway_id)
                if tier == "cstrong":
                    spec = HotspotSpec(
                        hotspot_id=next_id,
                        highway_id=highway_id,
                        center_ordinal=center,
                        peak_minute=peak,
                        extent_sensors=2.2,
                        pulses=1,
                        pulse_minutes=300.0,
                        gap_minutes=30.0,
                        core_intensity=4.9,
                        weekday_prob=0.86,
                        weekend_prob=0.30,
                        day_scale_sigma=0.10,
                        reach_cap_sensors=3,
                    )
                elif tier == "vstrong":
                    spec = HotspotSpec(
                        hotspot_id=next_id,
                        highway_id=highway_id,
                        center_ordinal=center,
                        peak_minute=peak,
                        extent_sensors=2.4,
                        pulses=7,
                        pulse_minutes=38.0,
                        gap_minutes=16.0,
                        core_intensity=5.0,
                        weekday_prob=0.86,
                        weekend_prob=0.25,
                        day_scale_sigma=0.30,
                        reach_cap_sensors=3,
                    )
                else:
                    spec = HotspotSpec(
                        hotspot_id=next_id,
                        highway_id=highway_id,
                        center_ordinal=center,
                        peak_minute=peak,
                        extent_sensors=1.8,
                        pulses=4,
                        pulse_minutes=40.0,
                        gap_minutes=16.0,
                        core_intensity=4.8,
                        weekday_prob=0.85,
                        weekend_prob=0.10,
                        day_scale_sigma=0.15,
                        reach_cap_sensors=3,
                        episode_weeks_on=3,
                        episode_weeks_off=2,
                        episode_phase=tier_index,
                    )
                specs.append(spec)
                next_id += 1

        # minor hotspots: many short pulses at random spots — the junk
        # population that the red zones prune (their chains also dilute
        # the precision of the integrate-all baseline). Placement avoids
        # the recurring-tier centers so the junk mostly lands in quiet
        # districts, mirroring how trivial congestion spreads over a city.
        tier_centers = {(s.highway_id, s.center_ordinal) for s in specs}
        arterial_list = [
            h for h in self._highways if h.highway_id in self._arterial_ids
        ] or list(self._highways)
        placed = 0
        while placed < self._config.minor_hotspots:
            # 70 % of minors live on quiet arterials, the rest anywhere
            if rng.random() < 0.7:
                highway = arterial_list[int(rng.integers(0, len(arterial_list)))]
            else:
                highway = self._highways[int(rng.integers(0, len(self._highways)))]
            sensors = self._network.highway_sensors(highway.highway_id)
            n = len(sensors)
            ordinal = int(rng.integers(2, max(3, n - 2)))
            if any(
                hw == highway.highway_id and abs(ordinal - c) < 10
                for hw, c in tier_centers
            ):
                continue
            specs.append(
                HotspotSpec(
                    hotspot_id=next_id,
                    highway_id=highway.highway_id,
                    center_ordinal=ordinal,
                    peak_minute=int(rng.integers(9 * 60, 17 * 60)),
                    extent_sensors=0.9,
                    pulses=5,
                    pulse_minutes=10.0,
                    gap_minutes=20.0,
                    core_intensity=2.4,
                    weekday_prob=0.7,
                    weekend_prob=0.3,
                    day_scale_sigma=0.15,
                    start_jitter_minutes=45.0,
                    reach_cap_sensors=2,
                )
            )
            next_id += 1
            placed += 1
        return specs

    def _midblock_centers(
        self,
        highway_id: int,
        crossing_ids: Sequence[int],
        rng: np.random.Generator,
    ) -> List[int]:
        """Well-separated hotspot centers on ``highway_id``.

        Candidates are the midpoints of the highway blocks between its
        crossings with the given perpendicular highways; each midpoint is
        then snapped (within four sensors) toward the center of its
        district, which keeps a recurring cluster's severity concentrated
        in one pre-defined region — the property the red-zone filter
        exploits (Sec. IV).
        """
        sensors = self._network.highway_sensors(highway_id)
        n = len(sensors)
        crossings: List[int] = []
        for other in crossing_ids:
            ordinal, _ = self._interchange_ordinals(highway_id, other)
            crossings.append(ordinal)
        boundaries = sorted({0, n - 1, *crossings})
        midpoints = [
            (boundaries[i] + boundaries[i + 1]) // 2
            for i in range(len(boundaries) - 1)
            if boundaries[i + 1] - boundaries[i] >= 8
        ]
        if not midpoints:
            midpoints = [n // 2]
        snapped = [
            self._snap_to_district_center(highway_id, m, crossings) for m in midpoints
        ]
        if len(snapped) == 1:
            return snapped
        return [snapped[0], snapped[-1]]

    def _snap_to_district_center(
        self, highway_id: int, ordinal: int, crossings: Sequence[int]
    ) -> int:
        """The ordinal near ``ordinal`` closest to a district center.

        Candidates that would bring a capped-support hotspot within
        ``delta_d`` of a crossing are rejected, so snapping never undoes
        the mid-block clearance.
        """
        sensors = self._network.highway_sensors(highway_id)
        districts = self.districts()
        best = ordinal
        best_score = float("inf")
        for candidate in range(max(0, ordinal - 4), min(len(sensors), ordinal + 5)):
            if any(abs(candidate - crossing) <= 7 for crossing in crossings):
                continue
            sensor_id = sensors[candidate]
            district = districts[districts.district_of(sensor_id)]
            score = self._network.location(sensor_id).distance_to(district.bbox.center)
            if score < best_score:
                best_score = score
                best = candidate
        return best

    def _interchange_ordinals(self, highway_a: int, highway_b: int) -> tuple[int, int]:
        """Ordinals of the closest sensor pair between two highways."""
        sensors_a = self._network.highway_sensors(highway_a)
        sensors_b = self._network.highway_sensors(highway_b)
        positions = np.asarray(self._network.positions)
        pos_a = positions[list(sensors_a)]
        pos_b = positions[list(sensors_b)]
        diff = pos_a[:, None, :] - pos_b[None, :, :]
        dist2 = np.einsum("abi,abi->ab", diff, diff)
        flat = int(np.argmin(dist2))
        return flat // len(sensors_b), flat % len(sensors_b)

    # ------------------------------------------------------------------
    # Day simulation
    # ------------------------------------------------------------------
    def day_rng(self, day: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self._config.seed, 0xDA, day])
        )

    def simulate_day_matrix(self, day: int) -> np.ndarray:
        """Congested minutes per ``(sensor, window-in-day)`` for one day."""
        matrix, _ = self.simulate_day_detail(day)
        return matrix

    def simulate_day_detail(self, day: int) -> tuple[np.ndarray, List[IncidentReport]]:
        """The day's congestion matrix plus its incident ground truth.

        The incident log is the "accident report" context dimension of
        Sec. V-D; :mod:`repro.analysis.dimensions` joins it with clusters
        by time and location.
        """
        rng = self.day_rng(day)
        weather = self._weather.day(day).state
        is_weekend = self._calendar.is_weekend(day)
        matrix = np.zeros(
            (len(self._network), self._spec.windows_per_day), dtype=np.float64
        )
        for spec in self._hotspots:
            apply_hotspot(
                matrix,
                self._highway_sensor_lists[spec.highway_id],
                spec,
                rng,
                is_weekend,
                weather.intensity,
                weather.activity,
                self._config.window_minutes,
                day=day,
            )
        incidents = apply_incidents(
            matrix,
            self._highway_sensor_lists,
            self._incidents,
            rng,
            weather.intensity,
            self._config.window_minutes,
        )
        finalize_day(matrix, self._config.window_minutes)
        return matrix, incidents

    def incident_log(self, day: int) -> List[IncidentReport]:
        """Ground-truth incident reports of ``day`` (regenerated from the
        day seed, so no state needs to be kept)."""
        return self.simulate_day_detail(day)[1]

    def simulate_day(self, day: int) -> ReadingChunk:
        """All raw readings of one day (normal and atypical)."""
        matrix = self.simulate_day_matrix(day)
        rng = self.day_rng(day)  # independent stream position is irrelevant
        num_sensors, wpd = matrix.shape
        sensor_ids = np.repeat(
            np.arange(num_sensors, dtype=np.int32), wpd
        )
        windows = np.tile(
            np.arange(day * wpd, (day + 1) * wpd, dtype=np.int32), num_sensors
        )
        congested = matrix.reshape(-1).astype(np.float32)
        free_flow = (
            self._config.free_flow_mph
            + rng.normal(0.0, self._config.free_flow_spread, size=num_sensors)
        )
        speeds = np.repeat(free_flow, wpd) - congested * (
            45.0 / self._config.window_minutes
        )
        speeds = speeds + rng.normal(0.0, 2.0, size=speeds.shape)
        np.clip(speeds, 3.0, 90.0, out=speeds)
        return ReadingChunk(
            sensor_ids=sensor_ids,
            windows=windows,
            speeds=speeds.astype(np.float32),
            congested=congested,
        )

    def atypical_fraction(self, day: int) -> float:
        """Share of atypical readings on ``day`` (calibration helper)."""
        matrix = self.simulate_day_matrix(day)
        return float((matrix > 0).mean())

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def write_month(self, directory: Path | str, month: int) -> str:
        """Write one monthly dataset file; returns its file name."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        days = self._calendar.month_day_range(month)
        name = f"D{month + 1}"
        file_name = f"{name}.cps"
        meta = DatasetMeta(
            name=name,
            num_sensors=len(self._network),
            first_day=days.start,
            num_days=len(days),
            window_minutes=self._config.window_minutes,
        )
        with CPSDatasetWriter(directory / file_name, meta) as writer:
            for day in days:
                writer.append_day(self.simulate_day(day))
        return file_name

    def materialize_catalog(
        self,
        directory: Path | str,
        months: Optional[Sequence[int]] = None,
    ) -> DatasetCatalog:
        """Write monthly datasets plus the catalog index and sim config."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        month_list = (
            list(months) if months is not None else list(range(self._calendar.num_months))
        )
        with obs.span("simulate.materialize") as sp:
            files = []
            for month in month_list:
                files.append(self.write_month(directory, month))
                _log.info(
                    "month written",
                    extra={"month": month, "file": files[-1]},
                )
            sp.set(months=len(month_list))
        (directory / "simulation.json").write_text(
            json.dumps(self._config.to_dict(), indent=2)
        )
        return DatasetCatalog.build(directory, files)

    @classmethod
    def from_catalog_dir(cls, directory: Path | str) -> "TrafficSimulator":
        """Rebuild the simulator (network, districts...) from a catalog dir."""
        config_path = Path(directory) / "simulation.json"
        config = SimulationConfig.from_dict(json.loads(config_path.read_text()))
        return cls(config)
