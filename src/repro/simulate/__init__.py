"""Synthetic CPS trace generation (the PeMS-replacement substrate)."""

from repro.simulate.city import CityLayout, build_highways
from repro.simulate.congestion import (
    MIN_CONGESTED_MINUTES,
    HotspotSpec,
    IncidentProcess,
    apply_hotspot,
    apply_incidents,
    finalize_day,
)
from repro.simulate.generator import SimulationConfig, TrafficSimulator
from repro.simulate.weather import DayWeather, WeatherModel, WeatherState

__all__ = [
    "CityLayout",
    "build_highways",
    "HotspotSpec",
    "IncidentProcess",
    "MIN_CONGESTED_MINUTES",
    "apply_hotspot",
    "apply_incidents",
    "finalize_day",
    "SimulationConfig",
    "TrafficSimulator",
    "DayWeather",
    "WeatherModel",
    "WeatherState",
]
